"""Consortium models: the CSC (Delta) and CAS partnerships.

The paper devotes two exhibits to consortia as the program's
technology-transfer mechanism: the Concurrent Supercomputing Consortium
that acquired the Delta, and the Computational Aerosciences consortium
giving aerospace industry a seat in NASA's CAS project.  Member rosters
here follow the slides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.util.errors import ProgramModelError

SECTORS = ("government", "industry", "academia")


@dataclass(frozen=True)
class Member:
    """A consortium participant."""

    name: str
    sector: str

    def __post_init__(self) -> None:
        if self.sector not in SECTORS:
            raise ProgramModelError(
                f"unknown sector {self.sector!r}; allowed: {SECTORS}"
            )


@dataclass
class Consortium:
    """A named partnership with purposes and a member roster."""

    name: str
    purposes: List[str]
    members: List[Member] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen = set()
        for m in self.members:
            if m.name in seen:
                raise ProgramModelError(f"duplicate member {m.name!r}")
            seen.add(m.name)

    @property
    def n_members(self) -> int:
        return len(self.members)

    def by_sector(self, sector: str) -> List[Member]:
        if sector not in SECTORS:
            raise ProgramModelError(f"unknown sector {sector!r}")
        return [m for m in self.members if m.sector == sector]

    def sector_counts(self) -> Dict[str, int]:
        return {s: len(self.by_sector(s)) for s in SECTORS}

    def spans_all_sectors(self) -> bool:
        """The paper's selling point: government + industry + academia."""
        return all(self.by_sector(s) for s in SECTORS)


def delta_csc() -> Consortium:
    """The Concurrent Supercomputing Consortium (exhibits T4-4/T4-5).

    "Partners include over 14 government, industry and academia
    organizations"; the network figure names the core set.
    """
    return Consortium(
        name="Concurrent Supercomputing Consortium",
        purposes=[
            "Acquire and utilize the Intel Touchstone Delta supercomputer",
            "Operate the world's fastest installed supercomputer "
            "(32 GFLOPS peak, 13 GFLOPS LINPACK of order 25 000)",
            "Provide a shared massively parallel testbed for Grand "
            "Challenge application teams",
        ],
        members=[
            Member("California Institute of Technology", "academia"),
            Member("Jet Propulsion Laboratory", "government"),
            Member("Defense Advanced Research Projects Agency", "government"),
            Member("National Aeronautics and Space Administration", "government"),
            Member("National Science Foundation", "government"),
            Member("Department of Energy", "government"),
            Member("Intel Corporation", "industry"),
            Member("Center for Research on Parallel Computation (Rice)", "academia"),
            Member("Argonne National Laboratory", "government"),
            Member("Los Alamos National Laboratory", "government"),
            Member("Sandia National Laboratories", "government"),
            Member("Purdue University", "academia"),
            Member("University of Southern California", "academia"),
            Member("Pacific Northwest Laboratory", "government"),
            Member("Cray Research user exchange", "industry"),
        ],
    )


def cas_consortium() -> Consortium:
    """The Computational Aerosciences consortium (exhibits T4-5/T4-6),
    with the private-sector participant roster the paper lists."""
    industry = [
        "Boeing",
        "General Electric",
        "Grumman",
        "McDonnell Douglas",
        "Northrop",
        "Lockheed",
        "United Technologies",
        "TRW",
        "Rockwell",
        "General Motors",
        "General Dynamics",
        "Motorola",
    ]
    academia = [
        "Syracuse University",
        "Mississippi State University",
        "Universities Space Research Association",
        "University of California, Davis",
    ]
    return Consortium(
        name="Computational Aerosciences Consortium",
        purposes=[
            "Allow aerospace industry to influence the requirements, "
            "standards, and direction of NASA's CAS project",
            "Enable industry participation in developing generic CAS "
            "applications and systems software",
            "Facilitate transfer of CAS technology to aerospace users",
            "Provide industry access to high performance computing resources",
            "Allow industry to commercialize appropriate products",
        ],
        members=(
            [Member("NASA", "government")]
            + [Member(name, "industry") for name in industry]
            + [Member(name, "academia") for name in academia]
        ),
    )
