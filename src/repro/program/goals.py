"""Exhibit T4-1: the Federal HPCC Program goals and approach, verbatim.

The paper's opening slides are text: the three program objectives, the
Presidential commitment quotes (the 1991 Caltech commencement speech and
the High Performance Computing Act of 1991, P.L. 102-194), and the
four-line approach.  They are encoded as data so the goal exhibit
regenerates alongside the quantitative ones, and so tests can pin the
program-model modules back to the stated objectives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.util.errors import ProgramModelError

#: The three goals on the "Federal Program Goal and Objectives" slide.
PROGRAM_GOALS: List[str] = [
    "Extend U.S. leadership in high performance computing and computer "
    "communications",
    "Disseminate the technologies to speed innovation and to serve "
    "national goals",
    "Spur gains in industrial competitiveness by making high performance "
    "computing integral to design and production",
]

#: The "Presidential Commitment" slide.
HPC_ACT_CITATION = "High Performance Computing Act of 1991 (P.L. 102-194)"

HPC_ACT_QUOTE = (
    "The development of high performance computing and communications "
    "technology offers the potential to transform radically the way in "
    "which all Americans will work, learn and communicate in the future. "
    "It holds the promise of changing society as much as the other great "
    "inventions of the 20th century, including the telephone, air travel "
    "and radio and TV."
)

CALTECH_SPEECH_QUOTE = (
    "...we must invest now in a brighter future. That's why our "
    "administration fully supports high-performance computing, and math "
    "and science education."
)

#: The "Approach" slide.
APPROACH: List[str] = [
    "Establish high performance computing testbeds",
    "Constitute application software teams composed of discipline and "
    "computational scientists to utilize and evaluate testbeds",
    "Promote collaboration, exchange of ideas and sharing of software "
    "among HPCC software developers",
    "Promote technology transfer",
]


@dataclass(frozen=True)
class ApproachMapping:
    """Which library subsystem makes each approach line executable."""

    approach: str
    subsystem: str


#: The approach, cross-referenced to the modules that implement it.
APPROACH_IMPLEMENTATION: List[ApproachMapping] = [
    ApproachMapping(APPROACH[0], "repro.machine presets + repro.core.Testbed"),
    ApproachMapping(APPROACH[1], "repro.core workloads + evaluation campaigns"),
    ApproachMapping(APPROACH[2], "repro.program consortium models"),
    ApproachMapping(APPROACH[3], "repro.program.diffusion (Bass model)"),
]


def validate_goals() -> None:
    """Structural checks used by tests and the goal exhibit."""
    if len(PROGRAM_GOALS) != 3:
        raise ProgramModelError("the goals slide lists exactly three goals")
    if len(APPROACH) != len(APPROACH_IMPLEMENTATION):
        raise ProgramModelError("every approach line needs an implementation")
    for mapping in APPROACH_IMPLEMENTATION:
        if mapping.approach not in APPROACH:
            raise ProgramModelError(
                f"mapping references unknown approach line: {mapping.approach!r}"
            )


def render() -> str:
    """The goal exhibit as text."""
    validate_goals()
    lines = ["FEDERAL PROGRAM GOAL AND OBJECTIVES", "=" * 36]
    for goal in PROGRAM_GOALS:
        lines.append(f"  o {goal}")
    lines.append("")
    lines.append(f'{HPC_ACT_CITATION}: "{HPC_ACT_QUOTE}"')
    lines.append("")
    lines.append("APPROACH (and where this library implements it)")
    lines.append("-" * 47)
    for mapping in APPROACH_IMPLEMENTATION:
        lines.append(f"  o {mapping.approach}")
        lines.append(f"      -> {mapping.subsystem}")
    return "\n".join(lines)
