"""Technology-transfer diffusion model.

The paper's approach slides claim consortium participation accelerates
technology transfer ("technology transfer is through direct
participation").  We make that claim quantitative with the standard Bass
diffusion model: cumulative adopters A(t) in a population of M evolve as

    A(t+1) = A(t) + (p + q * A(t)/M) * (M - A(t))

where ``p`` is the innovation (external influence) coefficient and ``q``
the imitation (word-of-mouth) coefficient.  Direct participation in a
consortium is modelled two ways, matching the slide's argument:

* members are *seed adopters* at t=0, and
* membership raises the external coefficient ``p`` (members see the
  technology demonstrated on their own workloads).

The ablation benchmark (T4-6) compares adoption trajectories with and
without the consortium mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.program.consortium import Consortium
from repro.util.errors import ProgramModelError


@dataclass(frozen=True)
class BassDiffusion:
    """Discrete-time Bass model.

    Attributes
    ----------
    market_size:
        Total potential adopters M.
    p:
        Innovation coefficient per period (external influence).
    q:
        Imitation coefficient per period (internal influence).
    seed_adopters:
        Adopters already on board at t = 0.
    """

    market_size: int
    p: float = 0.01
    q: float = 0.35
    seed_adopters: float = 0.0

    def __post_init__(self) -> None:
        if self.market_size < 1:
            raise ProgramModelError(
                f"market size must be >= 1, got {self.market_size}"
            )
        if not 0 <= self.p <= 1 or not 0 <= self.q <= 1:
            raise ProgramModelError(
                f"coefficients must lie in [0, 1]; got p={self.p}, q={self.q}"
            )
        if not 0 <= self.seed_adopters <= self.market_size:
            raise ProgramModelError(
                f"seed adopters {self.seed_adopters} outside [0, {self.market_size}]"
            )

    def trajectory(self, periods: int) -> np.ndarray:
        """Cumulative adopters A(0..periods), length periods+1."""
        if periods < 0:
            raise ProgramModelError(f"periods must be >= 0, got {periods}")
        out = np.empty(periods + 1)
        a = float(self.seed_adopters)
        m = float(self.market_size)
        out[0] = a
        for t in range(1, periods + 1):
            a = a + (self.p + self.q * a / m) * (m - a)
            out[t] = a
        return out

    def adoption_rate(self, periods: int) -> np.ndarray:
        """New adopters per period (the classic Bass bell)."""
        return np.diff(self.trajectory(periods))

    def time_to_fraction(self, fraction: float, max_periods: int = 10_000) -> int:
        """First period at which A(t) >= fraction * M."""
        if not 0 < fraction <= 1:
            raise ProgramModelError(f"fraction must be in (0, 1], got {fraction}")
        target = fraction * self.market_size
        a = float(self.seed_adopters)
        if a >= target:
            return 0
        m = float(self.market_size)
        for t in range(1, max_periods + 1):
            a = a + (self.p + self.q * a / m) * (m - a)
            if a >= target:
                return t
        raise ProgramModelError(
            f"adoption never reached {fraction:.0%} within {max_periods} periods "
            f"(p={self.p}, q={self.q})"
        )


def transfer_with_consortium(
    consortium: Consortium,
    market_size: int,
    *,
    base_p: float = 0.005,
    q: float = 0.35,
    participation_boost: float = 4.0,
) -> BassDiffusion:
    """Diffusion model with the consortium mechanism engaged.

    Members seed the adopter pool and direct participation multiplies
    the external coefficient by ``participation_boost``.
    """
    if market_size < consortium.n_members:
        raise ProgramModelError(
            f"market of {market_size} smaller than the consortium "
            f"({consortium.n_members} members)"
        )
    if participation_boost < 1.0:
        raise ProgramModelError(
            f"participation boost must be >= 1, got {participation_boost}"
        )
    return BassDiffusion(
        market_size=market_size,
        p=min(1.0, base_p * participation_boost),
        q=q,
        seed_adopters=consortium.n_members,
    )


def transfer_without_consortium(
    market_size: int, *, base_p: float = 0.005, q: float = 0.35
) -> BassDiffusion:
    """Counterfactual: same market, no seeding, no boost."""
    return BassDiffusion(market_size=market_size, p=base_p, q=q, seed_adopters=0.0)


def acceleration(
    consortium: Consortium,
    market_size: int,
    *,
    fraction: float = 0.5,
    **kwargs,
) -> float:
    """Periods saved reaching ``fraction`` adoption thanks to the
    consortium mechanism (the exhibit's quantitative claim)."""
    with_c = transfer_with_consortium(consortium, market_size, **kwargs)
    base_p = kwargs.get("base_p", 0.005)
    q = kwargs.get("q", 0.35)
    without = transfer_without_consortium(market_size, base_p=base_p, q=q)
    return without.time_to_fraction(fraction) - with_c.time_to_fraction(fraction)
