"""The eight agencies of the FY92-93 HPCC crosscut.

The funding exhibit (T4-3) lists exactly these, in descending FY92
budget order; the responsibilities exhibit (T4-2) assigns each a role
per program component.  The paper also notes Department of Education
participation was expected in FY 1993.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.util.errors import ProgramModelError


@dataclass(frozen=True)
class Agency:
    """A participating federal agency."""

    code: str
    name: str
    department: str = ""


DARPA = Agency("DARPA", "Defense Advanced Research Projects Agency", "DOD")
NSF = Agency("NSF", "National Science Foundation")
DOE = Agency("DOE", "Department of Energy")
NASA = Agency("NASA", "National Aeronautics and Space Administration")
NIH = Agency("HHS/NIH", "National Institutes of Health", "HHS")
NOAA = Agency("DOC/NOAA", "National Oceanic and Atmospheric Administration", "DOC")
EPA = Agency("EPA", "Environmental Protection Agency")
NIST = Agency("DOC/NIST", "National Institute of Standards and Technology", "DOC")

#: Funding-table order (descending FY92 budget).
AGENCIES: List[Agency] = [DARPA, NSF, DOE, NASA, NIH, NOAA, EPA, NIST]

_BY_CODE: Dict[str, Agency] = {a.code: a for a in AGENCIES}


def get_agency(code: str) -> Agency:
    """Look up an agency by the code used in the paper's tables."""
    try:
        return _BY_CODE[code]
    except KeyError:
        raise ProgramModelError(
            f"unknown agency {code!r}; expected one of {sorted(_BY_CODE)}"
        ) from None
