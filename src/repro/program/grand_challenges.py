"""The Grand Challenge problem registry.

The HPCC program organised its applications agenda around the "Grand
Challenges" -- the canonical 1991-92 OSTP list.  Each entry here records
the sponsoring agencies (cross-referenced against the responsibilities
matrix) and the **proxy workload** in this library that exercises the
same computational pattern, tying the paper's programmatic content to
the executable kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.program.agencies import get_agency
from repro.util.errors import ProgramModelError


@dataclass(frozen=True)
class GrandChallenge:
    """One Grand Challenge problem area."""

    name: str
    description: str
    agencies: tuple
    #: Key into repro.core.workload.WORKLOADS exercising the same
    #: computational pattern.
    proxy_workload: str
    pattern: str  # dominant parallel pattern


GRAND_CHALLENGES: List[GrandChallenge] = [
    GrandChallenge(
        name="Computational aerosciences",
        description="High-lift and high-speed aerodynamics for aerospace "
                    "design (NASA's CAS project).",
        agencies=("NASA", "DARPA"),
        proxy_workload="cfd",
        pattern="structured-grid halo exchange",
    ),
    GrandChallenge(
        name="Climate and global change",
        description="Coupled ocean-atmosphere circulation over decadal "
                    "scales.",
        agencies=("DOC/NOAA", "DOE", "NASA"),
        proxy_workload="ocean",
        pattern="structured-grid halo exchange (multi-field)",
    ),
    GrandChallenge(
        name="Structure of matter and materials",
        description="Molecular dynamics and electronic structure of new "
                    "materials.",
        agencies=("DOE", "NSF"),
        proxy_workload="md",
        pattern="spatial decomposition + particle migration",
    ),
    GrandChallenge(
        name="Structural biology and drug design",
        description="Macromolecular simulation for NIH/NLM medical "
                    "computation research.",
        agencies=("HHS/NIH", "NSF"),
        proxy_workload="md",
        pattern="spatial decomposition + particle migration",
    ),
    GrandChallenge(
        name="Cosmology and astrophysics",
        description="Galaxy formation and large-scale structure.",
        agencies=("NASA", "NSF"),
        proxy_workload="nbody",
        pattern="all-pairs ring pipeline",
    ),
    GrandChallenge(
        name="Quantum chromodynamics",
        description="Lattice gauge theory on regular 4-D grids.",
        agencies=("DOE", "NSF"),
        proxy_workload="poisson",
        pattern="stencil relaxation",
    ),
    GrandChallenge(
        name="Environmental modeling",
        description="Pollution transport and groundwater remediation "
                    "testbeds.",
        agencies=("EPA", "DOE"),
        proxy_workload="cfd",
        pattern="structured-grid halo exchange",
    ),
    GrandChallenge(
        name="Seismology and oil reservoir modeling",
        description="Wave propagation and porous-media flow for energy "
                    "exploration.",
        agencies=("DOE",),
        proxy_workload="poisson",
        pattern="stencil relaxation / implicit solves",
    ),
    GrandChallenge(
        name="Speech, vision and signal processing",
        description="Real-time transforms over sensor streams.",
        agencies=("DARPA", "NSF"),
        proxy_workload="fft",
        pattern="all-to-all transpose",
    ),
]


def validate_registry() -> None:
    """Cross-checks: agencies exist; proxies exist in the workload
    registry; names unique."""
    from repro.core.workload import WORKLOADS

    seen = set()
    for gc in GRAND_CHALLENGES:
        if gc.name in seen:
            raise ProgramModelError(f"duplicate grand challenge {gc.name!r}")
        seen.add(gc.name)
        if not gc.agencies:
            raise ProgramModelError(f"{gc.name!r} has no sponsoring agency")
        for code in gc.agencies:
            get_agency(code)
        if gc.proxy_workload not in WORKLOADS:
            raise ProgramModelError(
                f"{gc.name!r} proxy {gc.proxy_workload!r} not in WORKLOADS"
            )


def challenges_for_agency(agency_code: str) -> List[GrandChallenge]:
    """Grand Challenges an agency sponsors."""
    get_agency(agency_code)
    return [gc for gc in GRAND_CHALLENGES if agency_code in gc.agencies]


def proxy_coverage() -> Dict[str, int]:
    """How many Grand Challenges each proxy workload stands in for."""
    out: Dict[str, int] = {}
    for gc in GRAND_CHALLENGES:
        out[gc.proxy_workload] = out.get(gc.proxy_workload, 0) + 1
    return out
