"""The teraops trajectory: when does the HPCS goal arrive?

The responsibilities matrix opens with DARPA's charge: "technology
development and coordination for **teraops systems**."  In 1992 that was
a projection exercise: fit the growth of installed peak performance
across machine generations and extrapolate to 1 TFLOPS.

This module fits an exponential (straight line in log space, least
squares) to any machine series and reports the projected crossing year.
On the DARPA series shipped with :mod:`repro.machine.presets`, the
projection lands mid-decade -- historically right: ASCI Red crossed
1 TFLOPS LINPACK in 1996-97.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.machine.machine import Machine
from repro.util.errors import ProgramModelError
from repro.util.units import tflops


@dataclass(frozen=True)
class GrowthFit:
    """Exponential fit peak(year) = a * growth^(year - year0)."""

    year0: int
    a_flops: float
    annual_growth: float

    def peak_at(self, year: float) -> float:
        """Projected peak flop/s in ``year``."""
        return self.a_flops * self.annual_growth ** (year - self.year0)

    def year_reaching(self, target_flops: float) -> float:
        """Fractional year at which the projection crosses ``target``."""
        if target_flops <= 0:
            raise ProgramModelError(
                f"target must be positive, got {target_flops}"
            )
        if self.annual_growth <= 1.0:
            raise ProgramModelError(
                f"growth {self.annual_growth:.3f} <= 1: target never reached"
            )
        return self.year0 + math.log(target_flops / self.a_flops) / math.log(
            self.annual_growth
        )


def fit_peak_growth(points: Sequence[Tuple[int, float]]) -> GrowthFit:
    """Least-squares exponential fit to (year, peak flop/s) points."""
    if len(points) < 2:
        raise ProgramModelError(
            f"need at least two (year, peak) points, got {len(points)}"
        )
    for year, peak in points:
        if peak <= 0:
            raise ProgramModelError(f"peak must be positive, got {peak} ({year})")
    years = [float(y) for y, _ in points]
    logs = [math.log(p) for _, p in points]
    n = len(points)
    ymean = sum(years) / n
    lmean = sum(logs) / n
    sxx = sum((y - ymean) ** 2 for y in years)
    if sxx == 0:
        raise ProgramModelError("all points share one year; cannot fit growth")
    slope = sum((y - ymean) * (l - lmean) for y, l in zip(years, logs)) / sxx
    year0 = int(min(years))
    a = math.exp(lmean + slope * (year0 - ymean))
    return GrowthFit(year0=year0, a_flops=a, annual_growth=math.exp(slope))


def fit_machines(machines: Sequence[Machine]) -> GrowthFit:
    """Fit the trajectory of a machine series' peak rates."""
    return fit_peak_growth([(m.year, m.peak_flops) for m in machines])


def teraflops_year(machines: Sequence[Machine]) -> float:
    """Projected year the series crosses 1 TFLOPS peak."""
    return fit_machines(machines).year_reaching(tflops(1.0))


def trajectory_table(
    machines: Sequence[Machine], horizon: int = 1997
) -> List[Tuple[int, float, float]]:
    """(year, projected peak GFLOPS, installed peak GFLOPS or 0) rows
    from the first machine's year through ``horizon``."""
    fit = fit_machines(machines)
    installed = {m.year: m.peak_flops for m in machines}
    rows = []
    for year in range(fit.year0, horizon + 1):
        rows.append(
            (
                year,
                fit.peak_at(year) / 1e9,
                installed.get(year, 0.0) / 1e9,
            )
        )
    return rows
