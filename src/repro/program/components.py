"""The four components of the Federal HPCC Program.

Every HPCC budget and responsibility in the paper is organised under
these four lines (the acronyms appear on the funding exhibit):

* HPCS -- High Performance Computing Systems (the teraops hardware push)
* ASTA -- Advanced Software Technology and Algorithms
* NREN -- National Research and Education Network
* BRHR -- Basic Research and Human Resources
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.util.errors import ProgramModelError


@dataclass(frozen=True)
class Component:
    """One of the program's four technology lines."""

    code: str
    title: str
    goal: str


HPCS = Component(
    code="HPCS",
    title="High Performance Computing Systems",
    goal="Develop the underlying technology for scalable teraops "
         "computing systems and provide early experimental systems.",
)
ASTA = Component(
    code="ASTA",
    title="Advanced Software Technology and Algorithms",
    goal="Develop the parallel algorithms, software tools, and Grand "
         "Challenge applications that make the systems usable.",
)
NREN = Component(
    code="NREN",
    title="National Research and Education Network",
    goal="Upgrade and extend the research internet toward gigabit "
         "service connecting laboratories, universities, and industry.",
)
BRHR = Component(
    code="BRHR",
    title="Basic Research and Human Resources",
    goal="Fund the basic research, education, training, and "
         "infrastructure that sustain the field.",
)

#: Canonical ordering used by every exhibit.
COMPONENTS: List[Component] = [HPCS, ASTA, NREN, BRHR]

_BY_CODE: Dict[str, Component] = {c.code: c for c in COMPONENTS}


def get_component(code: str) -> Component:
    """Look up a component by its acronym."""
    try:
        return _BY_CODE[code.upper()]
    except KeyError:
        raise ProgramModelError(
            f"unknown component {code!r}; expected one of "
            f"{[c.code for c in COMPONENTS]}"
        ) from None
