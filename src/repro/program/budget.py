"""Exhibit T4-3: Federal HPCC Program funding, FY 1992-93.

The dollar figures (millions) are exactly the paper's table; the model
validates that agency lines sum to the printed totals (654.8 and 802.9)
and derives the analytics a program office would: growth rates, agency
shares, and an estimated split across the four components.

The per-component split is **not** in the paper (its pie chart carries
no numbers), so the shares here are modelled, flagged as estimates, and
kept separate from the exact agency table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.program.agencies import AGENCIES, get_agency
from repro.program.components import COMPONENTS
from repro.util.errors import ProgramModelError
from repro.util.tables import render_table

#: Paper table, $M: agency code -> {fiscal year -> budget}.
FUNDING_MUSD: Dict[str, Dict[int, float]] = {
    "DARPA":    {1992: 232.2, 1993: 275.0},
    "NSF":      {1992: 200.9, 1993: 261.9},
    "DOE":      {1992: 92.3,  1993: 109.1},
    "NASA":     {1992: 71.2,  1993: 89.1},
    "HHS/NIH":  {1992: 41.3,  1993: 44.9},
    "DOC/NOAA": {1992: 9.8,   1993: 10.8},
    "EPA":      {1992: 5.0,   1993: 8.0},
    "DOC/NIST": {1992: 2.1,   1993: 4.1},
}

#: Printed totals the table must reproduce.
PRINTED_TOTALS_MUSD: Dict[int, float] = {1992: 654.8, 1993: 802.9}

FISCAL_YEARS = (1992, 1993)

#: Modelled component shares (estimate -- see module docstring).
COMPONENT_SHARE_ESTIMATE: Dict[str, float] = {
    "HPCS": 0.30,
    "ASTA": 0.40,
    "NREN": 0.14,
    "BRHR": 0.16,
}


def _check_year(fy: int) -> None:
    if fy not in FISCAL_YEARS:
        raise ProgramModelError(
            f"fiscal year {fy} not in the paper's table; have {FISCAL_YEARS}"
        )


def agency_budget(agency_code: str, fy: int) -> float:
    """One cell of the table, $M."""
    get_agency(agency_code)
    _check_year(fy)
    return FUNDING_MUSD[agency_code][fy]


def total_budget(fy: int) -> float:
    """Column sum, $M (equals the printed total; validated below)."""
    _check_year(fy)
    return round(sum(rows[fy] for rows in FUNDING_MUSD.values()), 10)


def validate_totals(tolerance: float = 0.05) -> None:
    """The table's internal consistency check: lines sum to the printed
    totals within rounding."""
    for fy in FISCAL_YEARS:
        computed = total_budget(fy)
        printed = PRINTED_TOTALS_MUSD[fy]
        if abs(computed - printed) > tolerance:
            raise ProgramModelError(
                f"FY{fy} lines sum to {computed}, table prints {printed}"
            )


def growth_rate(agency_code: str = None) -> float:
    """FY93/FY92 - 1, for one agency or the whole program."""
    if agency_code is None:
        return total_budget(1993) / total_budget(1992) - 1.0
    return agency_budget(agency_code, 1993) / agency_budget(agency_code, 1992) - 1.0


def agency_share(agency_code: str, fy: int) -> float:
    """Agency fraction of the fiscal-year total."""
    return agency_budget(agency_code, fy) / total_budget(fy)


def largest_agency(fy: int) -> str:
    """Biggest line of the table (DARPA in both years)."""
    _check_year(fy)
    return max(FUNDING_MUSD, key=lambda code: FUNDING_MUSD[code][fy])


def component_budget_estimate(component_code: str, fy: int) -> float:
    """Estimated $M for one component (modelled share of the total)."""
    _check_year(fy)
    try:
        share = COMPONENT_SHARE_ESTIMATE[component_code.upper()]
    except KeyError:
        raise ProgramModelError(
            f"unknown component {component_code!r}"
        ) from None
    return share * total_budget(fy)


@dataclass(frozen=True)
class BudgetLine:
    """One row of the rendered exhibit."""

    agency: str
    fy1992: float
    fy1993: float

    @property
    def growth(self) -> float:
        return self.fy1993 / self.fy1992 - 1.0


def budget_lines() -> List[BudgetLine]:
    """Rows in the paper's (descending FY92) order."""
    return [
        BudgetLine(a.code, FUNDING_MUSD[a.code][1992], FUNDING_MUSD[a.code][1993])
        for a in AGENCIES
    ]


def render(include_growth: bool = True) -> str:
    """The funding exhibit as text, with the totals row."""
    validate_totals()
    if include_growth:
        headers = ["Agency", "FY 1992", "FY 1993", "Growth %"]
        rows = [
            [l.agency, l.fy1992, l.fy1993, 100.0 * l.growth] for l in budget_lines()
        ]
        rows.append(
            ["Total", total_budget(1992), total_budget(1993), 100.0 * growth_rate()]
        )
    else:
        headers = ["Agency", "FY 1992", "FY 1993"]
        rows = [[l.agency, l.fy1992, l.fy1993] for l in budget_lines()]
        rows.append(["Total", total_budget(1992), total_budget(1993)])
    return render_table(
        headers,
        rows,
        title="Federal HPCC Program Funding FY 92-93 (dollars in millions)",
    )


def render_component_estimate(fy: int) -> str:
    """The modelled component split as text (clearly labelled estimate)."""
    rows = [
        [c.code, component_budget_estimate(c.code, fy),
         100.0 * COMPONENT_SHARE_ESTIMATE[c.code]]
        for c in COMPONENTS
    ]
    return render_table(
        ["Component", f"FY {fy} est. $M", "Share %"],
        rows,
        title=f"Estimated component split, FY {fy} (modelled shares)",
    )
