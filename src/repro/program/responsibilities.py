"""Exhibit T4-2: the agency x component responsibilities matrix.

Entries are transcribed from the paper's slide (normalising its OCR
artifacts); each is a short role statement.  An empty cell means the
slide assigns that agency no role in that component.

The queryable form supports the two directions the exhibit is read in:
what does agency X do, and who covers component Y.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.program.agencies import AGENCIES, get_agency
from repro.program.components import COMPONENTS, get_component
from repro.util.errors import ProgramModelError
from repro.util.tables import render_matrix

#: (agency code, component code) -> responsibility entries.
RESPONSIBILITIES: Dict[Tuple[str, str], List[str]] = {
    # --- DARPA: lead technology developer ---------------------------------
    ("DARPA", "HPCS"): [
        "Technology development and coordination for teraops systems",
    ],
    ("DARPA", "ASTA"): [
        "Technology development for parallel algorithms and software tools",
    ],
    ("DARPA", "NREN"): [
        "Technology development and coordination for gigabit networks",
        "Gigabit research",
    ],
    ("DARPA", "BRHR"): [
        "University programs",
    ],
    # --- NSF: research base and network operator ---------------------------
    ("NSF", "HPCS"): [
        "Basic architecture research",
        "Prototype experimental systems",
        "Research in systems instrumentation and performance measurement",
    ],
    ("NSF", "ASTA"): [
        "Research in software tools and databases",
        "Grand Challenges",
        "Computer access",
    ],
    ("NSF", "NREN"): [
        "Facilities coordination and deployment",
        "Gigabit applications research",
    ],
    ("NSF", "BRHR"): [
        "Programs in basic research",
        "Education, training and curricula",
        "Infrastructure",
    ],
    # --- DOE: energy grand challenges and facilities ------------------------
    ("DOE", "HPCS"): [
        "Systems evaluation",
    ],
    ("DOE", "ASTA"): [
        "Energy grand challenge and computation research",
        "Software tools",
        "Software coordination",
    ],
    ("DOE", "NREN"): [
        "Access to energy research facilities and databases",
    ],
    ("DOE", "BRHR"): [
        "Basic research and education programs",
        "Research institutes and university block grants",
    ],
    # --- NASA: aerosciences testbeds ---------------------------------------
    ("NASA", "HPCS"): [
        "Aeronautics and space application testbeds",
    ],
    ("NASA", "ASTA"): [
        "Computational research in aerosciences",
        "Computational research in earth and space sciences",
    ],
    ("NASA", "NREN"): [
        "Access to aeronautics and spaceflight research centers",
    ],
    ("NASA", "BRHR"): [
        "University programs",
        "Basic research",
    ],
    # --- NIH: medical computation ------------------------------------------
    ("HHS/NIH", "ASTA"): [
        "Medical application testbeds for NIH/NLM medical computation research",
    ],
    ("HHS/NIH", "NREN"): [
        "Access for academic medical centers",
        "Technology transfer to states",
    ],
    ("HHS/NIH", "BRHR"): [
        "Internships for parallel algorithm development",
        "Training and career development",
    ],
    # --- NOAA: ocean and atmosphere -----------------------------------------
    ("DOC/NOAA", "ASTA"): [
        "Ocean and atmospheric computation research",
        "Software tools",
    ],
    ("DOC/NOAA", "NREN"): [
        "Ocean and atmospheric mission facilities",
        "Access to environmental databases",
    ],
    # --- EPA: environmental applications -------------------------------------
    ("EPA", "ASTA"): [
        "Computational techniques",
        "Research in environmental computations, databases, and application testbeds",
    ],
    ("EPA", "NREN"): [
        "Environmental mission connectivity by the states",
        "Development of intelligent gateways",
    ],
    # --- NIST: standards and interfaces ---------------------------------------
    ("DOC/NIST", "HPCS"): [
        "Research in interfaces and standards",
    ],
    ("DOC/NIST", "ASTA"): [
        "Research in software indexing and exchange",
        "Scalable parallel algorithms",
    ],
    ("DOC/NIST", "NREN"): [
        "Coordinate performance measurement and standards",
        "Programs in protocols and security",
    ],
}


def responsibilities_of(agency_code: str) -> Dict[str, List[str]]:
    """Component -> entries for one agency (validates the code)."""
    get_agency(agency_code)
    return {
        comp.code: RESPONSIBILITIES.get((agency_code, comp.code), [])
        for comp in COMPONENTS
    }


def agencies_covering(component_code: str) -> List[str]:
    """Agency codes with at least one entry in the component."""
    comp = get_component(component_code)
    return [
        agency.code
        for agency in AGENCIES
        if RESPONSIBILITIES.get((agency.code, comp.code))
    ]


def coverage_matrix() -> List[List[int]]:
    """Entry counts, agencies (rows, table order) x components (cols)."""
    return [
        [
            len(RESPONSIBILITIES.get((agency.code, comp.code), []))
            for comp in COMPONENTS
        ]
        for agency in AGENCIES
    ]


def validate_matrix() -> None:
    """Structural invariants of the exhibit.

    Raises :class:`ProgramModelError` on violation; used by tests and
    the benchmark before rendering.
    """
    for (agency_code, comp_code), entries in RESPONSIBILITIES.items():
        get_agency(agency_code)
        get_component(comp_code)
        if not entries:
            raise ProgramModelError(
                f"empty responsibility list for ({agency_code}, {comp_code}); "
                "omit the key instead"
            )
    # Every agency participates somewhere; every component is covered.
    for agency in AGENCIES:
        if not any(RESPONSIBILITIES.get((agency.code, c.code)) for c in COMPONENTS):
            raise ProgramModelError(f"{agency.code} has no responsibilities")
    for comp in COMPONENTS:
        if not agencies_covering(comp.code):
            raise ProgramModelError(f"{comp.code} has no covering agency")


def render() -> str:
    """The exhibit as a text matrix of entry counts (x = none)."""
    cells = [
        [str(n) if n else "-" for n in row] for row in coverage_matrix()
    ]
    return render_matrix(
        [a.code for a in AGENCIES],
        [c.code for c in COMPONENTS],
        cells,
        title="Federal HPCC Program Responsibilities (entry counts)",
        corner="Agency",
    )
