"""Module-level sweep workloads and the named workload registry.

These are the stock points the ``repro sweep`` CLI, the job server
(``repro serve``), and the throughput benchmarks fan out.  Each
workload takes ``(config, seed)`` per the
:func:`repro.sweep.runner.run_sweep` contract and returns a plain dict
of floats/ints so results cross process and wire boundaries cheaply.

The registry maps string names to :class:`WorkloadEntry` records
(workload callable + config dataclass + summary), so any front-end --
CLI flag, HTTP payload, config file -- can resolve a workload without
importing its module explicitly.  Workload callables must stay
module-level (picklable) and configs must stay frozen dataclasses of
JSON-representable fields: that is what makes them cacheable
(:func:`repro.sweep.cache.cache_key`) and schedulable on process-pool
backends.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class Lu2dPoint:
    """One lu2d sweep configuration (picklable and hashable)."""

    prows: int
    pcols: int
    n: int
    nb: int = 2
    machine: str = "delta"
    overlap: bool = False
    eager_threshold_bytes: float = float("inf")
    delivery: str = "alphabeta"


def lu2d_point(config: Lu2dPoint, seed: int) -> dict:
    """Factor one block-cyclic LU instance; report timing and traffic."""
    import numpy as np

    from repro.linalg.blocklu import make_test_matrix
    from repro.linalg.decomp import ProcessGrid2D
    from repro.linalg.lu2d import lu2d, serial_lu_nopivot
    from repro.machine.presets import get_machine

    machine = get_machine(config.machine)
    a = make_test_matrix(config.n, seed=seed)
    t0 = time.perf_counter()
    res = lu2d(
        machine,
        ProcessGrid2D(config.prows, config.pcols),
        a,
        nb=config.nb,
        seed=seed,
        overlap=config.overlap,
        eager_threshold_bytes=config.eager_threshold_bytes,
        delivery=config.delivery,
    )
    wall = time.perf_counter() - t0
    # Exactness is part of the result: a sweep point that drifted from
    # the serial factorisation is a bug, not a data point.
    exact = bool(np.array_equal(res.lu, serial_lu_nopivot(a)))
    sim = res.sim
    return {
        "ranks": config.prows * config.pcols,
        "n": config.n,
        "virtual_time_s": sim.time,
        "events": sim.events,
        "messages": sim.total_messages,
        "bytes": sim.total_bytes,
        "wall_s": wall,
        "setup_wall_s": sim.setup_wall_s,
        "execute_wall_s": sim.execute_wall_s,
        "events_per_sec": sim.events / wall if wall > 0 else 0.0,
        "exact": exact,
    }


@dataclass(frozen=True)
class CollectivesPoint:
    """One collectives-suite sweep configuration."""

    ranks: int
    rounds: int = 3
    algorithm: str = "recursive_doubling"
    machine: str = "delta"


def _collectives_program(comm, rounds: int, algorithm: str):
    """Allreduce + barrier rounds: the dense log-p collective cascade."""
    acc = float(comm.rank)
    for _ in range(rounds):
        acc = yield from comm.allreduce(acc % 1e6, algorithm=algorithm)
        yield from comm.barrier()
    return acc


def collectives_point(config: CollectivesPoint, seed: int) -> dict:
    """Run the collectives suite; report timing and traffic."""
    from repro.machine.presets import get_machine
    from repro.simmpi import run_program

    machine = get_machine(config.machine)
    t0 = time.perf_counter()
    res = run_program(
        machine,
        config.ranks,
        _collectives_program,
        config.rounds,
        config.algorithm,
        seed=seed,
    )
    wall = time.perf_counter() - t0
    return {
        "ranks": config.ranks,
        "virtual_time_s": res.time,
        "events": res.events,
        "messages": res.total_messages,
        "bytes": res.total_bytes,
        "wall_s": wall,
        "setup_wall_s": res.setup_wall_s,
        "execute_wall_s": res.execute_wall_s,
        "events_per_sec": res.events / wall if wall > 0 else 0.0,
        "reduction": res.returns[0],
    }


@dataclass(frozen=True)
class HaloPoint:
    """One halo-exchange epoch on a ``rows x cols`` process torus."""

    rows: int
    cols: int
    steps: int = 2
    machine: str = "paragon"


def _halo_program(comm, spec, steps: int):
    """Ocean-style ghost exchange: one declared stencil phase per step."""
    h = float(comm.rank)
    for _ in range(steps):
        hn = yield from comm.exchange(spec, [h, h + 1.0, h + 2.0, h + 3.0])
        h = h + hn[0] - hn[1] + hn[2] - hn[3]
    return h


def halo_point(config: HaloPoint, seed: int) -> dict:
    """Run a halo epoch; report timing and traffic."""
    from repro.machine.presets import get_machine
    from repro.simmpi import run_program
    from repro.simmpi.stencil import grid_halo

    machine = get_machine(config.machine)
    spec = grid_halo(config.rows, config.cols)
    t0 = time.perf_counter()
    res = run_program(
        machine,
        config.rows * config.cols,
        _halo_program,
        spec,
        config.steps,
        seed=seed,
    )
    wall = time.perf_counter() - t0
    return {
        "ranks": config.rows * config.cols,
        "virtual_time_s": res.time,
        "events": res.events,
        "messages": res.total_messages,
        "bytes": res.total_bytes,
        "wall_s": wall,
        "setup_wall_s": res.setup_wall_s,
        "execute_wall_s": res.execute_wall_s,
        "events_per_sec": res.events / wall if wall > 0 else 0.0,
        "corner": res.returns[0],
    }


@dataclass(frozen=True)
class WorkloadEntry:
    """A named, front-end-resolvable sweep workload."""

    name: str
    fn: Callable[[Any, int], Any]
    config_type: type
    summary: str = ""


_REGISTRY: Dict[str, WorkloadEntry] = {}


def register_workload(
    name: str,
    fn: Callable[[Any, int], Any],
    config_type: type,
    summary: str = "",
) -> WorkloadEntry:
    """Register ``fn`` under ``name``; returns the registry entry.

    Re-registering a name replaces the entry (tests swap in fakes); the
    config type must be a dataclass so configs can be built from JSON
    dicts and content-addressed canonically.
    """
    if not dataclasses.is_dataclass(config_type):
        raise ConfigurationError(
            f"workload {name!r} config type {config_type!r} is not a dataclass"
        )
    entry = WorkloadEntry(name=name, fn=fn, config_type=config_type, summary=summary)
    _REGISTRY[name] = entry
    return entry


def get_workload(name: str) -> WorkloadEntry:
    """Resolve a registered workload by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; available: {workload_names()}"
        ) from None


def workload_names() -> List[str]:
    """The registered workload names, sorted."""
    return sorted(_REGISTRY)


_FIELD_MAPS: Dict[type, Dict[str, Any]] = {}


def _field_map(config_type: type) -> Dict[str, Any]:
    """``{name: Field}`` for a config dataclass, computed once per type.

    ``dataclasses.fields`` rebuilds the tuple on every call; batched
    submissions validate thousands of configs of a handful of types, so
    the map is memoised on the (immutable) class.
    """
    fields = _FIELD_MAPS.get(config_type)
    if fields is None:
        fields = _FIELD_MAPS[config_type] = {
            f.name: f for f in dataclasses.fields(config_type)
        }
    return fields


def config_from_dict(config_type: type, payload: Mapping[str, Any]) -> Any:
    """Build a workload config dataclass from a JSON-style dict.

    Unknown and missing required fields raise
    :class:`~repro.util.errors.ConfigurationError` naming them;
    integer values are coerced to float where the field is annotated
    ``float`` so JSON payloads produce the same canonical cache token
    as natively constructed configs.
    """
    if not isinstance(payload, Mapping):
        raise ConfigurationError(
            f"config for {config_type.__name__} must be an object, "
            f"got {type(payload).__name__}"
        )
    fields = _field_map(config_type)
    unknown = sorted(set(payload) - set(fields))
    if unknown:
        raise ConfigurationError(
            f"unknown {config_type.__name__} field(s): {', '.join(unknown)}; "
            f"known: {sorted(fields)}"
        )
    missing = sorted(
        name
        for name, f in fields.items()
        if name not in payload
        and f.default is dataclasses.MISSING
        and f.default_factory is dataclasses.MISSING
    )
    if missing:
        raise ConfigurationError(
            f"missing required {config_type.__name__} field(s): {', '.join(missing)}"
        )
    kwargs = {}
    for name, value in payload.items():
        # Annotations are strings here (PEP 563 via __future__ import).
        if (
            str(fields[name].type) == "float"
            and isinstance(value, int)
            and not isinstance(value, bool)
        ):
            value = float(value)
        kwargs[name] = value
    return config_type(**kwargs)


register_workload(
    "lu2d",
    lu2d_point,
    Lu2dPoint,
    summary="block-cyclic LU factorisation on a 2-D process grid",
)
register_workload(
    "collectives",
    collectives_point,
    CollectivesPoint,
    summary="allreduce+barrier rounds over the collective algorithms",
)
register_workload(
    "halo",
    halo_point,
    HaloPoint,
    summary="declared stencil halo-exchange epoch on a process torus",
)
