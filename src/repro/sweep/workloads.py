"""Module-level sweep workloads (picklable, so they run under workers).

These are the stock points the ``repro sweep`` CLI and the throughput
benchmarks fan out.  Each takes ``(config, seed)`` per the
:func:`repro.sweep.runner.run_sweep` contract and returns a plain dict
of floats/ints so results cross process boundaries cheaply.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass(frozen=True)
class Lu2dPoint:
    """One lu2d sweep configuration (picklable and hashable)."""

    prows: int
    pcols: int
    n: int
    nb: int = 2
    machine: str = "delta"
    overlap: bool = False
    eager_threshold_bytes: float = float("inf")
    delivery: str = "alphabeta"


def lu2d_point(config: Lu2dPoint, seed: int) -> dict:
    """Factor one block-cyclic LU instance; report timing and traffic."""
    import numpy as np

    from repro.linalg.blocklu import make_test_matrix
    from repro.linalg.decomp import ProcessGrid2D
    from repro.linalg.lu2d import lu2d, serial_lu_nopivot
    from repro.machine.presets import get_machine

    machine = get_machine(config.machine)
    a = make_test_matrix(config.n, seed=seed)
    t0 = time.perf_counter()
    res = lu2d(
        machine,
        ProcessGrid2D(config.prows, config.pcols),
        a,
        nb=config.nb,
        seed=seed,
        overlap=config.overlap,
        eager_threshold_bytes=config.eager_threshold_bytes,
        delivery=config.delivery,
    )
    wall = time.perf_counter() - t0
    # Exactness is part of the result: a sweep point that drifted from
    # the serial factorisation is a bug, not a data point.
    exact = bool(np.array_equal(res.lu, serial_lu_nopivot(a)))
    sim = res.sim
    return {
        "ranks": config.prows * config.pcols,
        "n": config.n,
        "virtual_time_s": sim.time,
        "events": sim.events,
        "messages": sim.total_messages,
        "bytes": sim.total_bytes,
        "wall_s": wall,
        "events_per_sec": sim.events / wall if wall > 0 else 0.0,
        "exact": exact,
    }
