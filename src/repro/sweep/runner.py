"""The sweep runner: ordered, seeded, worker-count-independent.

Determinism contract
--------------------
``run_sweep(configs, workload, seed=s)`` returns
``[workload(configs[i], seed_i) for i]`` where ``seed_i`` is the i-th
child of ``numpy.random.SeedSequence(s)`` -- derived from the master
seed and the config's *position* only.  Worker processes change where
each point executes, never what it computes:

* seeds are spawned up front on the parent, indexed by position;
* results are collected by position (``Pool.map`` order), not by
  completion order;
* the workload receives an integer seed, so any engine or RNG it
  builds is self-contained per point.

Consequently ``workers=1`` (in-process, no pickling needed) and any
``workers=N`` produce identical result lists, asserted in tests.

Workloads running under ``workers > 1`` must be picklable module-level
callables with picklable configs/results (the usual multiprocessing
rules); the serial path has no such restriction.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from repro.sweep.cache import RunCache, cache_key, describe_config
from repro.util.errors import ConfigurationError, SweepPointError

#: Distinguishes "not in the cache" from a legitimately cached None.
_MISS = object()


def sweep_seeds(seed: int, n: int) -> List[int]:
    """The per-config integer seeds ``run_sweep`` hands the workload.

    Child ``SeedSequence.spawn`` streams collapsed to one 63-bit
    integer each: statistically independent across configs, stable
    across processes and platforms, and small enough to pass to any
    ``Engine(seed=...)`` or ``default_rng`` call.
    """
    if n < 0:
        raise ConfigurationError(f"cannot derive {n} sweep seeds")
    children = np.random.SeedSequence(seed).spawn(n)
    return [int(c.generate_state(1, dtype=np.uint64)[0] >> 1) for c in children]


def call_sweep_point(
    workload: Callable[[Any, int], Any], config: Any, seed: int, index: int = 0
) -> Any:
    """Run one sweep point; failures become :class:`SweepPointError`.

    A raw worker exception names neither the point's position nor its
    config, which is all a caller fanning out hundreds of points has to
    go on.  The wrapper pins both (the original exception stays chained
    as ``__cause__`` and summarised in the message, since causes do not
    survive the process-pool pickle boundary).  The job server's
    backends reuse this shim so per-job failure reports match
    ``run_sweep``'s.
    """
    try:
        return workload(config, seed)
    except SweepPointError:
        raise
    except Exception as exc:
        token = describe_config(config)
        raise SweepPointError(
            f"sweep point {index} ({token}) failed: {type(exc).__name__}: {exc}",
            index=index,
            config_token=token,
        ) from exc


def _invoke(task: tuple) -> Any:
    """Worker-side shim: unpack one (workload, config, seed, index) task."""
    workload, config, seed, index = task
    return call_sweep_point(workload, config, seed, index)


def run_sweep(
    configs: Sequence[Any],
    workload: Callable[[Any, int], Any],
    *,
    workers: Optional[int] = None,
    seed: int = 0,
    cache: Optional["RunCache"] = None,
) -> List[Any]:
    """Run ``workload(config, seed_i)`` for every config; ordered results.

    Parameters
    ----------
    configs:
        The sweep points, in output order.
    workload:
        ``workload(config, seed) -> result``.  Must be a picklable
        module-level callable when ``workers > 1``.
    workers:
        Process count.  ``None`` uses ``os.cpu_count()``; ``1`` (or a
        single config) runs serially in-process.  Worker count never
        changes the returned results, only the wall time.
    seed:
        Master seed for :func:`sweep_seeds`.
    cache:
        Optional :class:`~repro.sweep.cache.RunCache`.  Points whose
        ``(workload, config, seed_i)`` content key is already stored
        are served from disk; only the misses are simulated (with the
        seeds their *original positions* would have received, so a
        partially cached sweep returns the same results as an uncached
        one) and then stored back.  Hit/miss counts accumulate on the
        cache object.
    """
    configs = list(configs)
    n = len(configs)
    seeds = sweep_seeds(seed, n)

    if cache is not None:
        keys = [cache_key(workload, config, s) for config, s in zip(configs, seeds)]
        results: List[Any] = [cache.get(key, _MISS) for key in keys]
        miss_idx = [i for i, r in enumerate(results) if r is _MISS]
        if miss_idx:
            fresh = _run_all(
                [configs[i] for i in miss_idx],
                workload,
                [seeds[i] for i in miss_idx],
                workers,
                indices=miss_idx,
            )
            for i, result in zip(miss_idx, fresh):
                results[i] = result
                cache.put(keys[i], result)
        return results

    return _run_all(configs, workload, seeds, workers)


def _run_all(
    configs: Sequence[Any],
    workload: Callable[[Any, int], Any],
    seeds: Sequence[int],
    workers: Optional[int],
    indices: Optional[Sequence[int]] = None,
) -> List[Any]:
    """Execute every (config, seed) pair; ordered results.

    ``indices`` carries each point's *original* sweep position (a
    partially cached sweep runs only the misses) so failure reports
    name the position the caller sees.
    """
    n = len(configs)
    if indices is None:
        indices = range(n)
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    workers = min(workers, n) if n else 1
    if workers <= 1:
        return [
            call_sweep_point(workload, config, s, i)
            for config, s, i in zip(configs, seeds, indices)
        ]
    tasks = [
        (workload, config, s, i) for config, s, i in zip(configs, seeds, indices)
    ]
    # chunksize=1: sweep points are coarse (whole simulations), so
    # balance beats batching.  Pool.map preserves task order.
    with multiprocessing.Pool(processes=workers) as pool:
        return pool.map(_invoke, tasks, chunksize=1)
