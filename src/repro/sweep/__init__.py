"""Deterministic parallel parameter sweeps over simulated runs.

The paper's exhibits are sweeps -- LINPACK over machine sizes,
consortium links over bandwidths, collectives over algorithms -- and
each point is an independent simulation, so the sweep layer is
embarrassingly parallel.  :func:`run_sweep` fans a list of configs out
over worker processes while keeping the one property ablation tooling
cannot live without: **the results are a pure function of (configs,
workload, seed)** -- independent of worker count, scheduling order, and
whether multiprocessing was used at all.
"""

from repro.sweep.cache import SCHEMA_VERSION, RunCache, cache_key, workload_id
from repro.sweep.runner import run_sweep, sweep_seeds
from repro.sweep.workloads import Lu2dPoint, lu2d_point

__all__ = [
    "run_sweep",
    "sweep_seeds",
    "Lu2dPoint",
    "lu2d_point",
    "RunCache",
    "cache_key",
    "workload_id",
    "SCHEMA_VERSION",
]
