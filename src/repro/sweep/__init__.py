"""Deterministic parallel parameter sweeps over simulated runs.

The paper's exhibits are sweeps -- LINPACK over machine sizes,
consortium links over bandwidths, collectives over algorithms -- and
each point is an independent simulation, so the sweep layer is
embarrassingly parallel.  :func:`run_sweep` fans a list of configs out
over worker processes while keeping the one property ablation tooling
cannot live without: **the results are a pure function of (configs,
workload, seed)** -- independent of worker count, scheduling order, and
whether multiprocessing was used at all.

Workloads are resolvable by name through the registry
(:func:`register_workload` / :func:`get_workload`), which is what lets
the ``repro sweep`` CLI and the ``repro serve`` job server accept
workload specs as plain strings + JSON configs.
"""

from repro.sweep.cache import (
    SCHEMA_VERSION,
    RunCache,
    batch_cache_keys,
    cache_key,
    describe_config,
    parse_age,
    workload_id,
)
from repro.sweep.runner import call_sweep_point, run_sweep, sweep_seeds
from repro.sweep.workloads import (
    CollectivesPoint,
    HaloPoint,
    Lu2dPoint,
    WorkloadEntry,
    collectives_point,
    config_from_dict,
    get_workload,
    halo_point,
    lu2d_point,
    register_workload,
    workload_names,
)
from repro.util.errors import SweepPointError

__all__ = [
    "run_sweep",
    "sweep_seeds",
    "call_sweep_point",
    "SweepPointError",
    "Lu2dPoint",
    "lu2d_point",
    "CollectivesPoint",
    "collectives_point",
    "HaloPoint",
    "halo_point",
    "WorkloadEntry",
    "register_workload",
    "get_workload",
    "workload_names",
    "config_from_dict",
    "RunCache",
    "batch_cache_keys",
    "cache_key",
    "describe_config",
    "parse_age",
    "workload_id",
    "SCHEMA_VERSION",
]
