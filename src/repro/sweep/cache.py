"""Content-addressed cache of sweep run results.

A sweep point is fully determined by ``(workload, config, seed)``: the
workload is a deterministic function, the config is a value object, and
the seed pins every RNG stream the simulation spawns.  So a stable hash
of those three identifies the *result* -- the same key on a later run
(or in an overlapping sweep) can be served from disk instead of
resimulated.

Keys are SHA-256 over a canonical JSON encoding of:

* a schema version (bump :data:`SCHEMA_VERSION` whenever the record
  layout or key recipe changes -- old entries then simply miss);
* the workload's identity (``module.qualname``, the importable name
  that also makes it picklable for the process pool);
* a canonical token of the config (dataclasses by field dict,
  containers recursively, primitives as-is, anything else by ``repr``);
* the integer seed.

Records are one JSON file per key under ``<root>/<key[:2]>/<key>.json``
(two-level fan-out keeps directories small), written atomically via
temp-file rename so a crashed run never leaves a truncated record.
Corrupt or unreadable entries are treated as misses and rewritten.

The cache deliberately does **not** hash the code version: the schema
version plus the deterministic engine (bit-identical results are an
invariant the test suite enforces across refactors) make results
stable, and `repro sweep --no-cache` or deleting ``.repro-cache/`` is
the escape hatch after a model-changing commit.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
import tempfile
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.util.errors import ConfigurationError

#: Bump to invalidate every existing cache entry (key recipe or record
#: layout changes).
SCHEMA_VERSION = 1


def _config_token(obj: Any) -> Any:
    """A JSON-stable token for a sweep config.

    Dataclasses flatten to ``{class_qualname, fields...}`` so two
    different config types with equal field dicts cannot collide;
    containers recurse; primitives pass through; everything else falls
    back to ``repr`` (stable for the value objects used in sweeps).
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        token: Dict[str, Any] = {
            "__class__": f"{type(obj).__module__}.{type(obj).__qualname__}"
        }
        for field in dataclasses.fields(obj):
            token[field.name] = _config_token(getattr(obj, field.name))
        return token
    if isinstance(obj, dict):
        return {str(k): _config_token(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_config_token(v) for v in obj]
    if isinstance(obj, float):
        # repr() round-trips floats exactly and renders inf/nan, which
        # plain JSON cannot.
        return f"float:{obj!r}"
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    return f"repr:{obj!r}"


def describe_config(config: Any, limit: int = 160) -> str:
    """A compact, canonical one-line rendering of a sweep config.

    The same token the cache key hashes, serialised and truncated --
    used by :class:`~repro.util.errors.SweepPointError` and job-server
    failure reports to name the failing point.
    """
    text = json.dumps(_config_token(config), sort_keys=True, separators=(",", ":"))
    if len(text) > limit:
        text = text[: limit - 3] + "..."
    return text


_AGE_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([smhdw]?)\s*$", re.IGNORECASE)

_AGE_UNITS = {"": 1.0, "s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}


def parse_age(text: str) -> float:
    """Parse a ``--older-than`` age like ``90``, ``30m``, ``12h``, ``7d``
    into seconds (bare numbers are seconds)."""
    match = _AGE_RE.match(str(text))
    if not match:
        raise ConfigurationError(
            f"bad age {text!r}: expected NUMBER[s|m|h|d|w], e.g. 3600, 30m, 7d"
        )
    value, unit = match.groups()
    return float(value) * _AGE_UNITS[unit.lower()]


def workload_id(workload: Callable) -> str:
    """The importable identity of a workload callable."""
    module = getattr(workload, "__module__", None) or "<unknown>"
    qualname = getattr(workload, "__qualname__", None) or getattr(
        workload, "__name__", repr(workload)
    )
    return f"{module}.{qualname}"


def cache_key(workload: Callable, config: Any, seed: int) -> str:
    """Content hash identifying one sweep point's result."""
    payload = json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "workload": workload_id(workload),
            "config": _config_token(config),
            "seed": seed,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def batch_cache_keys(
    workload: Callable, configs: Sequence[Any], seeds: Sequence[int]
) -> List[str]:
    """All of one batch's cache keys in a single pass.

    Bit-identical to ``[cache_key(workload, c, s) for c, s in zip(...)]``
    (asserted in tests) but amortised for the serving hot path: the
    workload identity and the fixed parts of the canonical payload are
    rendered once per batch, each distinct config is tokenised once (a
    batched resubmission typically repeats a handful of configs across
    many seeds), and only the per-point splice + SHA-256 remain per key.

    Relies on ``sort_keys`` ordering of the canonical payload --
    ``config < schema < seed < workload`` -- which is pinned by the
    equivalence test so the recipe cannot silently drift.
    """
    if len(configs) != len(seeds):
        raise ConfigurationError(
            f"batch_cache_keys needs one seed per config, "
            f"got {len(configs)} configs and {len(seeds)} seeds"
        )
    mid = f',"schema":{SCHEMA_VERSION},"seed":'
    tail = f',"workload":{json.dumps(workload_id(workload))}}}'
    token_memo: Dict[Any, str] = {}
    keys: List[str] = []
    for config, seed in zip(configs, seeds):
        try:
            token = token_memo.get(config)
            memoizable = True
        except TypeError:  # unhashable config: tokenise every time
            token, memoizable = None, False
        if token is None:
            token = json.dumps(
                _config_token(config), sort_keys=True, separators=(",", ":")
            )
            if memoizable:
                token_memo[config] = token
        payload = f'{{"config":{token}{mid}{seed}{tail}'
        keys.append(hashlib.sha256(payload.encode("utf-8")).hexdigest())
    return keys


class RunCache:
    """Directory-backed result cache with hit/miss accounting.

    ``get``/``put`` never raise on cache trouble: a corrupt entry is a
    miss, an unwritable or non-JSON result is silently not cached --
    the sweep's correctness never depends on the cache.
    """

    def __init__(self, root: str = ".repro-cache"):
        self.root = root
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get(self, key: str, default: Any = None) -> Optional[Any]:
        """The cached result for ``key``, or ``default`` (counted as a
        miss).  Pass a sentinel default when cached ``None`` results
        must be distinguishable from misses."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
            if record.get("schema") != SCHEMA_VERSION or record.get("key") != key:
                raise ValueError("stale or foreign cache record")
            result = record["result"]
        except (OSError, ValueError, KeyError):
            self.misses += 1
            return default
        self.hits += 1
        return result

    def put(self, key: str, result: Any) -> None:
        """Store ``result`` (must be JSON-serialisable; silently skipped
        otherwise) atomically under ``key``."""
        record = {"schema": SCHEMA_VERSION, "key": key, "result": result}
        try:
            encoded = json.dumps(record)
        except (TypeError, ValueError):
            return
        path = self._path(key)
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(encoded)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}

    def entries(self) -> Iterator[Tuple[str, int, float]]:
        """Yield ``(path, size_bytes, mtime)`` for every stored record.

        In-progress ``.tmp`` files are skipped; a missing root yields
        nothing.  Entries that vanish mid-walk (a concurrent prune) are
        silently dropped.
        """
        try:
            shards = sorted(os.listdir(self.root))
        except OSError:
            return
        for shard in shards:
            directory = os.path.join(self.root, shard)
            try:
                names = sorted(os.listdir(directory))
            except OSError:
                continue
            for name in names:
                if not name.endswith(".json"):
                    continue
                path = os.path.join(directory, name)
                try:
                    info = os.stat(path)
                except OSError:
                    continue
                yield path, info.st_size, info.st_mtime

    def disk_stats(self) -> Dict[str, Any]:
        """Summarise what is on disk: entry count, bytes, schema mix.

        ``stale_entries`` counts records whose stored schema differs
        from the current :data:`SCHEMA_VERSION` (they would miss on
        read and are prime pruning candidates).
        """
        entries = 0
        total_bytes = 0
        by_schema: Dict[str, int] = {}
        for path, size, _ in self.entries():
            entries += 1
            total_bytes += size
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    schema = json.load(fh).get("schema")
            except (OSError, ValueError):
                schema = "corrupt"
            key = str(schema)
            by_schema[key] = by_schema.get(key, 0) + 1
        stale = sum(
            count
            for schema, count in by_schema.items()
            if schema != str(SCHEMA_VERSION)
        )
        return {
            "dir": self.root,
            "entries": entries,
            "bytes": total_bytes,
            "schema_version": SCHEMA_VERSION,
            "by_schema": by_schema,
            "stale_entries": stale,
        }

    def prune(self, older_than_s: float = 0.0, now: Optional[float] = None) -> Dict[str, Any]:
        """Delete records not touched in the last ``older_than_s``
        seconds (``0`` empties the cache); returns removal counts.

        Emptied shard directories are removed too, so a fully pruned
        cache leaves only its root behind.
        """
        if now is None:
            now = time.time()
        cutoff = now - older_than_s
        removed = kept = 0
        bytes_freed = 0
        for path, size, mtime in self.entries():
            if mtime <= cutoff:
                try:
                    os.unlink(path)
                except OSError:
                    kept += 1
                    continue
                removed += 1
                bytes_freed += size
            else:
                kept += 1
        try:
            for shard in os.listdir(self.root):
                directory = os.path.join(self.root, shard)
                try:
                    os.rmdir(directory)  # only succeeds when empty
                except OSError:
                    pass
        except OSError:
            pass
        return {
            "dir": self.root,
            "removed": removed,
            "kept": kept,
            "bytes_freed": bytes_freed,
        }
