"""Distributed triangular solves and the full LINPACK driver.

The LINPACK benchmark is factor **plus solve**; this module adds the
solve phase to the column-cyclic factorisation of
:mod:`repro.linalg.blocklu` using the classic *fan-in* column-sweep:

Each rank accumulates, into a private vector ``z``, the contributions of
the columns it owns.  Computing solution entry ``k`` then takes one
scalar reduction to the owner of column ``k`` -- so the solve costs
``2n`` scalar reductions, which is why triangular solves were notorious
latency sinks on 1992 machines (clearly visible in the simulator's
comm/compute split: the solve's comm share dwarfs the factorisation's).

``linpack_program`` chains factor, forward and back substitution, and a
residual check into one rank program: an end-to-end executable LINPACK
at small order, verified against ``numpy.linalg.solve``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from repro.linalg.blocklu import lu_flops, make_test_matrix
from repro.simmpi.engine import Engine, SimResult
from repro.util.errors import DecompositionError


def _apply_pivots_vector(b: np.ndarray, piv: np.ndarray) -> np.ndarray:
    """Apply recorded row interchanges to a right-hand side."""
    b = np.array(b, dtype=float, copy=True)
    for k, pivot in enumerate(piv):
        if pivot != k:
            b[[k, pivot]] = b[[pivot, k]]
    return b


def forward_sweep(comm, local: np.ndarray, mine: np.ndarray, bp: np.ndarray) -> Generator:
    """Fan-in forward substitution: solve L y = bp (unit lower L packed
    in ``local``'s owned columns).  Every rank returns the full y."""
    n = len(bp)
    p = comm.size
    z = np.zeros(n)
    y_mine = {}
    for k in range(n):
        owner = k % p
        total = yield from comm.reduce(float(z[k]), root=owner)
        if comm.rank == owner:
            yk = bp[k] - total
            y_mine[k] = yk
            lk = local[:, k // p]
            if k + 1 < n:
                z[k + 1:] += lk[k + 1:] * yk
                yield from comm.compute(flops=2.0 * (n - k - 1))
    pieces = yield from comm.allgather(y_mine)
    y = np.zeros(n)
    for piece in pieces:
        for k, val in piece.items():
            y[k] = val
    return y


def backward_sweep(comm, local: np.ndarray, mine: np.ndarray, y: np.ndarray) -> Generator:
    """Fan-in back substitution: solve U x = y.  Returns the full x."""
    n = len(y)
    p = comm.size
    z = np.zeros(n)
    x_mine = {}
    for k in range(n - 1, -1, -1):
        owner = k % p
        total = yield from comm.reduce(float(z[k]), root=owner)
        if comm.rank == owner:
            uk = local[:, k // p]
            xk = (y[k] - total) / uk[k]
            x_mine[k] = xk
            if k > 0:
                z[:k] += uk[:k] * xk
                yield from comm.compute(flops=2.0 * k)
    pieces = yield from comm.allgather(x_mine)
    x = np.zeros(n)
    for piece in pieces:
        for k, val in piece.items():
            x[k] = val
    return x


def linpack_program(comm, a_full: np.ndarray, b_full: np.ndarray) -> Generator:
    """Rank program: factor + solve + residual, the LINPACK kernel.

    Returns ``(x, residual)`` on every rank (x is fully replicated by
    the sweeps' allgathers).
    """
    from repro.linalg.blocklu import lu_program

    n = a_full.shape[0]
    mine, local, piv = yield from lu_program(comm, a_full)
    bp = _apply_pivots_vector(b_full, piv)
    y = yield from forward_sweep(comm, local, mine, bp)
    x = yield from backward_sweep(comm, local, mine, y)

    # Residual ||A x - b||_inf via locally-owned columns + allreduce.
    partial = a_full[:, mine] @ x[mine]
    yield from comm.compute(flops=2.0 * n * len(mine))
    ax = yield from comm.allreduce(partial)
    residual = float(np.abs(ax - b_full).max())
    return (x, residual)


@dataclass
class LinpackRun:
    """Outcome of an executable end-to-end LINPACK run."""

    x: np.ndarray
    residual: float
    n: int
    sim: SimResult

    @property
    def virtual_time(self) -> float:
        return self.sim.time

    @property
    def gflops(self) -> float:
        """Rate credited with the official 2n^3/3 + 3n^2/2 count."""
        if self.sim.time <= 0:
            return float("inf")
        return lu_flops(self.n) / self.sim.time / 1e9


def linpack_benchmark(
    machine,
    n_ranks: int,
    n: int,
    *,
    seed: int = 0,
    b: Optional[np.ndarray] = None,
) -> LinpackRun:
    """Run the executable LINPACK (factor + solve) on a simulated machine."""
    if n < 1:
        raise DecompositionError(f"order must be >= 1, got {n}")
    a = make_test_matrix(n, seed=seed)
    if b is None:
        # The benchmark convention: b = A @ ones, so x_true = ones.
        b = a @ np.ones(n)
    elif len(b) != n:
        raise DecompositionError(f"rhs length {len(b)} != order {n}")
    engine = Engine(machine, n_ranks, seed=seed)
    sim = engine.run(linpack_program, a, np.asarray(b, dtype=float))
    x, residual = sim.returns[0]
    return LinpackRun(x=x, residual=residual, n=n, sim=sim)
