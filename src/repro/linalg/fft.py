"""Parallel one-dimensional FFT via the transpose (four-step) method.

Factor N = N1 * N2 and index the input as x[n2*N1 + n1].  Then

    X[k1*N2 + k2] = FFT_N1( twiddle(n1,k2) * FFT_N2( x[n2*N1 + n1] ) )

i.e. N1 short FFTs of length N2, a pointwise twiddle, a transpose, and
N2 short FFTs of length N1.  On a distributed machine the transpose is
an all-to-all -- the communication pattern that made FFTs the classic
bisection-bandwidth stress test on mesh machines like the Delta.

Ranks own block rows of the (N1, N2) matrix for the first phase and
block columns (as rows of the transpose) for the second.  Local FFTs
use NumPy; the engine charges 5 N log2 N / P flops across the phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.simmpi.engine import Engine, SimResult
from repro.util.errors import DecompositionError


@dataclass
class DistributedFFT:
    """Reassembled spectrum with simulation accounting."""

    spectrum: np.ndarray
    sim: SimResult

    @property
    def virtual_time(self) -> float:
        return self.sim.time


def fft_flops(n: int) -> float:
    """Standard 5 N log2 N operation count for a complex FFT."""
    if n <= 1:
        return 0.0
    return 5.0 * n * np.log2(n)


def _validate(n1: int, n2: int, p: int) -> None:
    if n1 % p or n2 % p:
        raise DecompositionError(
            f"transpose FFT requires p | N1 and p | N2; got N1={n1}, N2={n2}, p={p}"
        )


def fft_program(comm, x_full: np.ndarray, n1: int, n2: int) -> Generator:
    """Rank program: four-step FFT.  Returns (owned k1 range, rows)."""
    p = comm.size
    _validate(n1, n2, p)
    n = n1 * n2
    rows_per = n1 // p
    r0 = comm.rank * rows_per

    # Phase 1: rows n1 in [r0, r0+rows_per); row n1 holds x[n1::N1].
    a = np.empty((rows_per, n2), dtype=complex)
    for i in range(rows_per):
        a[i, :] = x_full[(r0 + i)::n1]
    a = np.fft.fft(a, axis=1)
    yield from comm.compute(flops=rows_per * fft_flops(n2))

    # Twiddle: multiply row n1, column k2 by exp(-2*pi*i*n1*k2/N).
    n1_idx = np.arange(r0, r0 + rows_per)[:, None]
    k2_idx = np.arange(n2)[None, :]
    a *= np.exp(-2j * np.pi * n1_idx * k2_idx / n)
    yield from comm.compute(flops=6.0 * rows_per * n2)

    # Transpose: rank j must end up owning k2 columns [j*cols, ...) as
    # rows.  Slice our row block into p column chunks and exchange.
    cols_per = n2 // p
    chunks = [np.ascontiguousarray(a[:, j * cols_per:(j + 1) * cols_per]) for j in range(p)]
    received = yield from comm.alltoall(chunks)
    # received[i] is ranks i's rows of our column block: stack to get
    # (n1, cols_per), then transpose to (cols_per, n1).
    b = np.vstack(received).T.copy()

    # Phase 2: FFT along the n1 direction for each owned k2.
    b = np.fft.fft(b, axis=1)
    yield from comm.compute(flops=cols_per * fft_flops(n1))

    # b[row, k1] where row = local k2 index.  Output element X[k1*N2+k2].
    c0 = comm.rank * cols_per
    return ((c0, c0 + cols_per), b)


def distributed_fft(
    machine,
    n_ranks: int,
    x: np.ndarray,
    *,
    n1: int = None,
    seed: int = 0,
) -> DistributedFFT:
    """Compute ``np.fft.fft(x)`` on a simulated machine.

    ``n1`` picks the matrix factorisation (default: near-square power
    split); both factors must be divisible by ``n_ranks``.
    """
    x = np.asarray(x, dtype=complex)
    n = len(x)
    if n1 is None:
        n1 = 1
        while n1 * n1 < n:
            n1 *= 2
        if n % n1:
            raise DecompositionError(
                f"cannot auto-factor N={n}; pass n1= explicitly"
            )
    if n % n1:
        raise DecompositionError(f"n1={n1} does not divide N={n}")
    n2 = n // n1
    _validate(n1, n2, n_ranks)

    engine = Engine(machine, n_ranks, seed=seed)
    sim = engine.run(fft_program, x, n1, n2)

    spectrum = np.empty(n, dtype=complex)
    for (c0, c1), rows in sim.returns:
        for local, k2 in enumerate(range(c0, c1)):
            spectrum[k2::n2] = rows[local, :]
    return DistributedFFT(spectrum=spectrum, sim=sim)
