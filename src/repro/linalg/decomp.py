"""Data decompositions for distributed arrays.

The three classic layouts the parallel-algorithms (ASTA) literature of
the period ran on:

* **block** -- contiguous chunks, sizes differing by at most one;
* **cyclic** -- element ``i`` on rank ``i mod p`` (perfect load balance
  for triangular work like LU);
* **block-cyclic** -- blocks of size ``b`` dealt round-robin, the
  compromise ScaLAPACK standardised.

Plus :class:`ProcessGrid2D`, the 2-D rank arrangement used by SUMMA and
the HPL model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.util.errors import DecompositionError


def block_ranges(n: int, p: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into ``p`` contiguous [start, stop) chunks.

    The first ``n % p`` chunks get the extra element, so sizes differ by
    at most one.  Works for p > n (empty trailing chunks).
    """
    if n < 0:
        raise DecompositionError(f"n must be >= 0, got {n}")
    if p < 1:
        raise DecompositionError(f"p must be >= 1, got {p}")
    base, extra = divmod(n, p)
    ranges = []
    start = 0
    for r in range(p):
        size = base + (1 if r < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def block_range(n: int, p: int, rank: int) -> Tuple[int, int]:
    """The [start, stop) chunk owned by ``rank`` under block layout."""
    if not 0 <= rank < p:
        raise DecompositionError(f"rank {rank} out of range for p={p}")
    return block_ranges(n, p)[rank]


def block_owner(n: int, p: int, index: int) -> int:
    """Rank owning ``index`` under block layout."""
    if not 0 <= index < n:
        raise DecompositionError(f"index {index} out of range for n={n}")
    for rank, (start, stop) in enumerate(block_ranges(n, p)):
        if start <= index < stop:
            return rank
    raise DecompositionError(f"index {index} unowned (n={n}, p={p})")  # pragma: no cover


def cyclic_indices(n: int, p: int, rank: int) -> np.ndarray:
    """Global indices owned by ``rank`` under element-cyclic layout."""
    if not 0 <= rank < p:
        raise DecompositionError(f"rank {rank} out of range for p={p}")
    if n < 0:
        raise DecompositionError(f"n must be >= 0, got {n}")
    return np.arange(rank, n, p)


def cyclic_owner(index: int, p: int) -> int:
    """Rank owning ``index`` under element-cyclic layout."""
    if index < 0:
        raise DecompositionError(f"index must be >= 0, got {index}")
    return index % p


def cyclic_local_index(index: int, p: int) -> int:
    """Local position of global ``index`` on its cyclic owner."""
    if index < 0:
        raise DecompositionError(f"index must be >= 0, got {index}")
    return index // p


def block_cyclic_indices(n: int, p: int, rank: int, block: int) -> np.ndarray:
    """Global indices owned by ``rank`` under block-cyclic layout with
    block size ``block``."""
    if block < 1:
        raise DecompositionError(f"block size must be >= 1, got {block}")
    if not 0 <= rank < p:
        raise DecompositionError(f"rank {rank} out of range for p={p}")
    idx = np.arange(n)
    return idx[(idx // block) % p == rank]


def block_cyclic_owner(index: int, p: int, block: int) -> int:
    """Rank owning ``index`` under block-cyclic layout."""
    if block < 1:
        raise DecompositionError(f"block size must be >= 1, got {block}")
    if index < 0:
        raise DecompositionError(f"index must be >= 0, got {index}")
    return (index // block) % p


@dataclass(frozen=True)
class ProcessGrid2D:
    """A ``prows x pcols`` arrangement of ranks, row-major.

    Rank ``r`` sits at ``(r // pcols, r % pcols)``.  Provides the member
    lists used to build row/column :class:`~repro.simmpi.group.GroupComm`
    sub-communicators.
    """

    prows: int
    pcols: int

    def __post_init__(self) -> None:
        if self.prows < 1 or self.pcols < 1:
            raise DecompositionError(
                f"grid must be >= 1x1, got {self.prows}x{self.pcols}"
            )

    @property
    def size(self) -> int:
        return self.prows * self.pcols

    def coords(self, rank: int) -> Tuple[int, int]:
        """(row, col) of a rank."""
        if not 0 <= rank < self.size:
            raise DecompositionError(f"rank {rank} outside {self.prows}x{self.pcols} grid")
        return divmod(rank, self.pcols)

    def rank_at(self, prow: int, pcol: int) -> int:
        if not (0 <= prow < self.prows and 0 <= pcol < self.pcols):
            raise DecompositionError(
                f"({prow},{pcol}) outside {self.prows}x{self.pcols} grid"
            )
        return prow * self.pcols + pcol

    def row_members(self, prow: int) -> List[int]:
        """Ranks forming grid row ``prow``."""
        return [self.rank_at(prow, j) for j in range(self.pcols)]

    def col_members(self, pcol: int) -> List[int]:
        """Ranks forming grid column ``pcol``."""
        return [self.rank_at(i, pcol) for i in range(self.prows)]


def near_square_grid(p: int) -> ProcessGrid2D:
    """Most-square factorisation of ``p`` (prows <= pcols)."""
    if p < 1:
        raise DecompositionError(f"p must be >= 1, got {p}")
    for r in range(int(p**0.5), 0, -1):
        if p % r == 0:
            return ProcessGrid2D(r, p // r)
    raise DecompositionError(f"unreachable for p={p}")  # pragma: no cover
