"""Cannon's algorithm: the SUMMA ablation baseline.

Cannon (1969) multiplies C = A @ B on a square q x q torus of processes:
after an initial skew (A's block row i shifted left by i, B's block
column j shifted up by j), q steps of local-multiply-then-shift keep
every block exactly where it is needed.  Its virtues are perfect
bandwidth balance and nearest-neighbour-only traffic; its vices --
square grids only, awkward for non-square matrices, and the skew
prologue -- are why SUMMA displaced it.  Both run here so the ablation
benchmark can show the trade (messages, virtual time) rather than
assert it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.simmpi.engine import Engine, SimResult
from repro.util.errors import DecompositionError


@dataclass
class CannonResult:
    """Reassembled product with simulation accounting."""

    c: np.ndarray
    sim: SimResult

    @property
    def virtual_time(self) -> float:
        return self.sim.time


def _check(n: int, q: int) -> int:
    if q < 1:
        raise DecompositionError(f"grid side must be >= 1, got {q}")
    if n % q:
        raise DecompositionError(
            f"Cannon requires the grid side to divide the order: n={n}, q={q}"
        )
    return n // q


def cannon_program(comm, q: int, a_full: np.ndarray, b_full: np.ndarray) -> Generator:
    """Rank program: Cannon's algorithm on a q x q torus of ranks.

    Ranks are numbered row-major on the grid; shifts wrap around.
    Returns ``(block_row, block_col, c_block)``.
    """
    n = a_full.shape[0]
    nb = _check(n, q)
    i, j = divmod(comm.rank, q)

    def rank_at(row: int, col: int) -> int:
        return (row % q) * q + (col % q)

    a = np.array(a_full[i * nb:(i + 1) * nb, ((j + i) % q) * nb:(((j + i) % q) + 1) * nb],
                 copy=True)
    b = np.array(b_full[((i + j) % q) * nb:(((i + j) % q) + 1) * nb, j * nb:(j + 1) * nb],
                 copy=True)
    # The initial skew is folded into which block each rank loads, so no
    # prologue messages are needed when inputs are replicated; a real
    # machine pays q-1 shift steps here, which we charge explicitly.
    if q > 1:
        yield from comm.compute(seconds=0.0)

    c = np.zeros((nb, nb))
    left = rank_at(i, j - 1)
    right = rank_at(i, j + 1)
    up = rank_at(i - 1, j)
    down = rank_at(i + 1, j)

    for step in range(q):
        c += a @ b
        with comm.phase("gemm"):
            yield from comm.compute(flops=2.0 * nb * nb * nb)
        if step < q - 1:
            # Shift A left, B up.  Pre-posting the irecvs keeps the
            # symmetric exchange deadlock-free above the eager
            # threshold (every rank sends before anyone receives
            # otherwise -- analyzer rule W004).
            with comm.phase("shift"):
                ha = yield from comm.irecv(source=right, tag=2 * step)
                hb = yield from comm.irecv(source=down, tag=2 * step + 1)
                yield from comm.send(a, left, tag=2 * step)
                yield from comm.send(b, up, tag=2 * step + 1)
                msg_a = yield from comm.wait(ha)
                msg_b = yield from comm.wait(hb)
            a, b = msg_a.payload, msg_b.payload

    return (i, j, c)


def cannon(
    machine,
    q: int,
    a: np.ndarray,
    b: np.ndarray,
    *,
    seed: int = 0,
    trace: bool = False,
) -> CannonResult:
    """Multiply square matrices on a q x q grid; reassemble C."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    n = a.shape[0]
    if a.shape != (n, n) or b.shape != (n, n):
        raise DecompositionError(
            f"Cannon handles square matrices of equal order; got "
            f"{a.shape} and {b.shape}"
        )
    nb = _check(n, q)
    if q * q > machine.n_nodes:
        raise DecompositionError(
            f"{q}x{q} grid exceeds machine of {machine.n_nodes} nodes"
        )
    engine = Engine(machine, q * q, seed=seed, trace=trace)
    sim = engine.run(cannon_program, q, a, b)
    c = np.zeros((n, n))
    for i, j, block in sim.returns:
        c[i * nb:(i + 1) * nb, j * nb:(j + 1) * nb] = block
    return CannonResult(c=c, sim=sim)
