"""2-D block-cyclic LU: the ScaLAPACK-style factorisation.

The 1-D column-cyclic code (:mod:`repro.linalg.blocklu`) is the
historical parallel LINPACK; its scalability limit is that every
elimination step broadcasts a full column to *all* p ranks.  The 2-D
distribution that superseded it confines each step's traffic to one
process row and one process column: multipliers travel along grid rows,
the pivot row along grid columns, so per-step message volume drops from
O(n) x p ranks to O(n/pr + n/pc) -- the change that made LU scale to
the Delta's 512 nodes and beyond.

This implementation factors **without pivoting** (use it on the
diagonally-dominant test matrices from ``make_test_matrix``, or any
matrix known to need no row exchanges; the pivoted path is the 1-D
code).  The result is bit-identical to the serial no-pivot reference,
asserted in tests, and the 1-D-vs-2-D message economy is measured in
the A-5 ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.linalg.decomp import ProcessGrid2D, block_cyclic_indices
from repro.simmpi import collectives as _coll
from repro.simmpi.engine import Engine, SimResult
from repro.util.errors import DecompositionError


def serial_lu_nopivot(a: np.ndarray) -> np.ndarray:
    """Right-looking LU without pivoting (reference for the 2-D code).

    Returns the packed factor (unit-lower L below the diagonal, U on
    and above).  Raises on a zero diagonal entry.
    """
    a = np.array(a, dtype=float, copy=True)
    n, m = a.shape
    if n != m:
        raise DecompositionError(f"matrix must be square, got {a.shape}")
    for k in range(n - 1):
        if a[k, k] == 0.0:
            raise DecompositionError(
                f"zero diagonal at step {k}: this factorisation needs pivoting"
            )
        a[k + 1:, k] /= a[k, k]
        a[k + 1:, k + 1:] -= np.outer(a[k + 1:, k], a[k, k + 1:])
    return a


def lu2d_program(
    comm, grid: ProcessGrid2D, a_full: np.ndarray, nb: int, overlap: bool = False
) -> Generator:
    """Rank program: unblocked updates over a block-cyclic 2-D layout.

    With ``overlap`` the row/column broadcasts use the non-blocking
    binomial tree ("tree_nb"): identical messages and bit-identical
    numerics, but internal tree nodes do not serialise their children
    behind rendezvous handshakes.

    Returns ``(rows_mine, cols_mine, local)``.
    """
    algo = "tree_nb" if overlap else "tree"
    n = a_full.shape[0]
    pr, pc = grid.prows, grid.pcols
    my_r, my_c = grid.coords(comm.rank)
    row_comm = comm.group(grid.row_members(my_r))   # peers across columns
    col_comm = comm.group(grid.col_members(my_c))   # peers down rows

    rows_mine = block_cyclic_indices(n, pr, my_r, nb)
    cols_mine = block_cyclic_indices(n, pc, my_c, nb)
    local = np.array(a_full[np.ix_(rows_mine, cols_mine)], dtype=float, copy=True)
    # Global index -> local position maps.
    row_pos = {int(g): i for i, g in enumerate(rows_mine)}
    col_pos = {int(g): j for j, g in enumerate(cols_mine)}

    n_rows = len(rows_mine)
    # Per-step lookups, precomputed for the whole factorisation.
    # Owners follow the block-cyclic formula (k // nb) % p (what
    # block_cyclic_owner computes, vectorised); rows_mine/cols_mine are
    # sorted, so "global index > k" is a suffix and searchsorted gives
    # its start -- plain slices (views) then replace boolean fancy
    # indexing, bit-identical values at a fraction of the cost.
    steps = np.arange(n)
    owner_c_of = ((steps // nb) % pc).tolist()
    owner_r_of = ((steps // nb) % pr).tolist()
    row_start = np.searchsorted(rows_mine, steps, side="right").tolist()
    col_start = np.searchsorted(cols_mine, steps, side="right").tolist()

    # Phase labels are pure tracing metadata; guarded push/pop (the
    # collectives' own idiom) keeps the untraced hot loop free of
    # context-manager overhead.  The only raise below pops explicitly.
    tracing = comm._tracing
    phases = comm._phases
    # Untraced runs bind the broadcast algorithm once and call it
    # directly: roots are valid by construction, so the dispatcher's
    # per-call validation and tracing branch are pure overhead on the
    # innermost communication of the factorisation.  Traced runs go
    # through comm.bcast unchanged to keep the "bcast" span labels.
    # Macro-enabled runs must also take the dispatcher: both tree and
    # tree_nb panel broadcasts are macro-eligible, and only the
    # dispatch layer parks the group on a single CollectiveReq instead
    # of replaying the message cascade per broadcast.
    if comm._macro:
        def bcast_impl(g, v, r, _a=algo):
            return _coll.bcast(g, v, r, _a)

        def tree_impl(g, v, r):
            return _coll.bcast(g, v, r, "tree")
    else:
        bcast_impl = _coll._BCAST_ALGORITHMS[algo]
        tree_impl = _coll._BCAST_ALGORITHMS["tree"]

    for k in range(n - 1):
        owner_c = owner_c_of[k]  # grid column holding col k
        owner_r = owner_r_of[k]  # grid row holding row k
        i0 = row_start[k]
        j0 = col_start[k]

        # --- multipliers: computed in grid column owner_c, sent across rows.
        if my_c == owner_c:
            if tracing:
                phases.append("panel")
            lk = col_pos[k]
            akk = local[row_pos[k], lk] if k in row_pos else None
            if tracing:
                akk = yield from col_comm.bcast(akk, root=owner_r)
            else:
                akk = yield from tree_impl(col_comm, akk, owner_r)
            if akk == 0.0:
                if tracing:
                    phases.pop()
                raise DecompositionError(
                    f"zero diagonal at step {k}: needs pivoting"
                )
            local[i0:, lk] /= akk
            yield comm._fill_compute(float(n_rows - i0))
            mult_packet = local[i0:, lk].copy()
            if tracing:
                phases.pop()
        else:
            mult_packet = None
        if tracing:
            phases.append("mult-bcast")
            multipliers = yield from row_comm.bcast(mult_packet, root=owner_c, algorithm=algo)
            phases.pop()
        else:
            multipliers = yield from bcast_impl(row_comm, mult_packet, owner_c)

        # --- pivot-row segment: from grid row owner_r, sent down columns.
        if my_r == owner_r:
            urow_packet = local[row_pos[k], j0:].copy()
        else:
            urow_packet = None
        if tracing:
            phases.append("urow-bcast")
            urow = yield from col_comm.bcast(urow_packet, root=owner_r, algorithm=algo)
            phases.pop()
        else:
            urow = yield from bcast_impl(col_comm, urow_packet, owner_r)

        # --- trailing update on the local intersection.
        if multipliers.size and urow.size:
            # Broadcast product == np.outer for 1-D operands (same
            # ufunc, same element pairing) minus the wrapper's ravels.
            local[i0:, j0:] -= multipliers[:, None] * urow
            if tracing:
                phases.append("update")
            yield comm._fill_compute(2.0 * multipliers.size * urow.size)
            if tracing:
                phases.pop()

    return (rows_mine, cols_mine, local)


@dataclass
class LU2DResult:
    """Reassembled factor with simulation accounting."""

    lu: np.ndarray
    sim: SimResult

    @property
    def virtual_time(self) -> float:
        return self.sim.time


def lu2d(
    machine,
    grid: ProcessGrid2D,
    a: np.ndarray,
    *,
    nb: int = 2,
    seed: int = 0,
    overlap: bool = False,
    eager_threshold_bytes: float = float("inf"),
    delivery="alphabeta",
    trace: bool = False,
    macro_ops: bool = True,
    columnar: bool = True,
) -> LU2DResult:
    """Factor ``a`` on a process grid; reassemble the packed factor.

    ``overlap``, ``eager_threshold_bytes`` and ``delivery`` tune the
    simulated communication (non-blocking broadcasts, rendezvous
    threshold, wire-contention model) without changing the numerics.
    ``trace`` records message logs and activity spans for
    :mod:`repro.obs` analysis.  ``macro_ops=False`` forces collectives
    through the per-message event cascade (the benchmark baselines pin
    event counts on that path); ``columnar=False`` routes whole-machine
    state updates through scalar per-rank loops instead of the
    vectorised columns (the A/B axis of the equivalence suite).
    """
    a = np.asarray(a, dtype=float)
    n = a.shape[0]
    if a.shape != (n, n):
        raise DecompositionError(f"matrix must be square, got {a.shape}")
    if nb < 1:
        raise DecompositionError(f"block size must be >= 1, got {nb}")
    if grid.size > machine.n_nodes:
        raise DecompositionError(
            f"grid of {grid.size} ranks exceeds machine of {machine.n_nodes} nodes"
        )
    engine = Engine(
        machine,
        grid.size,
        seed=seed,
        trace=trace,
        eager_threshold_bytes=eager_threshold_bytes,
        delivery=delivery,
        macro_ops=macro_ops,
        columnar=columnar,
    )
    sim = engine.run(lu2d_program, grid, a, nb, overlap)
    lu = np.zeros((n, n))
    for rows_mine, cols_mine, local in sim.returns:
        lu[np.ix_(rows_mine, cols_mine)] = local
    return LU2DResult(lu=lu, sim=sim)
