"""Distributed conjugate gradient for SPD systems.

Row-block layout: each rank owns a contiguous block of rows of A and of
every vector.  One iteration needs:

* a local mat-vec on the owned rows (needs the full search direction,
  refreshed by an allgather),
* two global dot products (allreduce).

This inner-product-bound structure is exactly why CG latency costs were
a standing complaint on 1992 MPPs -- visible directly in the simulator's
comm/compute split, and the reason the iterative-methods community
developed communication-avoiding variants later.

Numerics are real: the distributed iteration produces the same iterates
as the serial reference, validated against ``np.linalg.solve``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from repro.linalg.decomp import block_range
from repro.simmpi.engine import Engine, SimResult
from repro.util.errors import ConvergenceError, DecompositionError
from repro.util.rng import resolve_rng


@dataclass
class CGResult:
    """Solution with iteration and simulation accounting."""

    x: np.ndarray
    iterations: int
    residual: float
    sim: Optional[SimResult] = None

    @property
    def virtual_time(self) -> float:
        return self.sim.time if self.sim else 0.0


def serial_cg(
    a: np.ndarray,
    b: np.ndarray,
    *,
    tol: float = 1e-10,
    max_iter: Optional[int] = None,
) -> CGResult:
    """Reference conjugate gradient (no preconditioning)."""
    n = len(b)
    max_iter = 2 * n if max_iter is None else max_iter
    x = np.zeros(n)
    r = b.astype(float).copy()
    p = r.copy()
    rs = float(r @ r)
    bnorm = float(np.linalg.norm(b)) or 1.0
    for it in range(1, max_iter + 1):
        ap = a @ p
        alpha = rs / float(p @ ap)
        x += alpha * p
        r -= alpha * ap
        rs_new = float(r @ r)
        if np.sqrt(rs_new) / bnorm < tol:
            return CGResult(x=x, iterations=it, residual=np.sqrt(rs_new) / bnorm)
        p = r + (rs_new / rs) * p
        rs = rs_new
    raise ConvergenceError(
        f"CG did not reach tol={tol} in {max_iter} iterations "
        f"(residual {np.sqrt(rs) / bnorm:.3e})"
    )


def cg_program(
    comm,
    a_full: np.ndarray,
    b_full: np.ndarray,
    tol: float,
    max_iter: int,
    overlap: bool = False,
) -> Generator:
    """Rank program: block-row CG over the simulator.

    ``overlap`` switches the search-direction allgather to the
    non-blocking ring ("ring_nb"): identical data movement (so
    identical iterates), but each step posts its receive before
    sending, which also makes it safe above the rendezvous threshold.

    Returns ``(row_range, x_local, iterations, residual)``; raising
    inside a rank program propagates out of the engine, so convergence
    failure surfaces exactly as in the serial code.
    """
    algo = "ring_nb" if overlap else "ring"
    n = len(b_full)
    lo, hi = block_range(n, comm.size, comm.rank)
    a_loc = np.array(a_full[lo:hi, :], copy=True)
    b_loc = np.array(b_full[lo:hi], dtype=float, copy=True)

    x_loc = np.zeros(hi - lo)
    r_loc = b_loc.copy()
    p_loc = r_loc.copy()

    rs = yield from comm.allreduce(float(r_loc @ r_loc))
    bnorm2 = yield from comm.allreduce(float(b_loc @ b_loc))
    bnorm = np.sqrt(bnorm2) or 1.0

    for it in range(1, max_iter + 1):
        # Refresh the full search direction, then local mat-vec.
        with comm.phase("direction"):
            parts = yield from comm.allgather(p_loc, algorithm=algo)
        p_full = np.concatenate(parts)
        ap_loc = a_loc @ p_full
        with comm.phase("matvec"):
            yield from comm.compute(flops=2.0 * a_loc.shape[0] * a_loc.shape[1])

        with comm.phase("dots"):
            pap = yield from comm.allreduce(float(p_loc @ ap_loc))
        alpha = rs / pap
        x_loc += alpha * p_loc
        r_loc -= alpha * ap_loc
        with comm.phase("axpy"):
            yield from comm.compute(flops=6.0 * (hi - lo))

        with comm.phase("dots"):
            rs_new = yield from comm.allreduce(float(r_loc @ r_loc))
        if np.sqrt(rs_new) / bnorm < tol:
            return ((lo, hi), x_loc, it, np.sqrt(rs_new) / bnorm)
        p_loc = r_loc + (rs_new / rs) * p_loc
        rs = rs_new

    raise ConvergenceError(
        f"distributed CG did not reach tol={tol} in {max_iter} iterations"
    )


def distributed_cg(
    machine,
    n_ranks: int,
    a: np.ndarray,
    b: np.ndarray,
    *,
    tol: float = 1e-10,
    max_iter: Optional[int] = None,
    seed: int = 0,
    overlap: bool = False,
    eager_threshold_bytes: float = float("inf"),
    delivery="alphabeta",
    trace: bool = False,
) -> CGResult:
    """Solve A x = b on a simulated machine; reassemble x.

    ``overlap``, ``eager_threshold_bytes`` and ``delivery`` tune the
    simulated communication without changing the numerics; ``trace``
    records spans for :mod:`repro.obs` analysis.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    n = len(b)
    if a.shape != (n, n):
        raise DecompositionError(f"A shape {a.shape} does not match b of length {n}")
    max_iter = 2 * n if max_iter is None else max_iter
    engine = Engine(
        machine,
        n_ranks,
        seed=seed,
        trace=trace,
        eager_threshold_bytes=eager_threshold_bytes,
        delivery=delivery,
    )
    sim = engine.run(cg_program, a, b, tol, max_iter, overlap)
    x = np.zeros(n)
    iterations = 0
    residual = 0.0
    for (lo, hi), x_loc, it, res in sim.returns:
        x[lo:hi] = x_loc
        iterations, residual = it, res
    return CGResult(x=x, iterations=iterations, residual=residual, sim=sim)


def make_spd_matrix(n: int, seed: int = 0, *, condition_boost: float = 1.0) -> np.ndarray:
    """Random symmetric positive-definite test matrix."""
    rng = resolve_rng(seed)
    m = rng.standard_normal((n, n))
    a = m @ m.T / n
    a[np.diag_indices(n)] += condition_boost
    return a
