"""Scalable parallel linear algebra: the ASTA algorithm layer.

Executable distributed algorithms (run on :mod:`repro.simmpi`, verified
against serial NumPy references) plus the analytic HPL model used for
machine-scale LINPACK projections.
"""

from repro.linalg.blocklu import (
    DistributedLU,
    apply_pivots,
    distributed_lu,
    lu_flops,
    lu_program,
    lu_solve,
    make_test_matrix,
    residual_norm,
    serial_lu,
    split_lu,
)
from repro.linalg.cg import (
    CGResult,
    cg_program,
    distributed_cg,
    make_spd_matrix,
    serial_cg,
)
from repro.linalg.decomp import (
    ProcessGrid2D,
    block_cyclic_indices,
    block_cyclic_owner,
    block_owner,
    block_range,
    block_ranges,
    cyclic_indices,
    cyclic_local_index,
    cyclic_owner,
    near_square_grid,
)
from repro.linalg.fft import DistributedFFT, distributed_fft, fft_flops, fft_program
from repro.linalg.hpl_model import (
    DELTA_KAPPA,
    DELTA_LU_EFFICIENCY,
    HPLModel,
    HPLPoint,
    delta_linpack,
)
from repro.linalg.cannon import CannonResult, cannon, cannon_program
from repro.linalg.lu2d import LU2DResult, lu2d, lu2d_program, serial_lu_nopivot
from repro.linalg.summa import DistributedMatmul, matmul_flops, summa, summa_program
from repro.linalg.tsqr import TSQRResult, implicit_q, normalize_r, tsqr, tsqr_program
from repro.linalg.trisolve import (
    LinpackRun,
    backward_sweep,
    forward_sweep,
    linpack_benchmark,
    linpack_program,
)

__all__ = [
    "DistributedLU",
    "apply_pivots",
    "distributed_lu",
    "lu_flops",
    "lu_program",
    "lu_solve",
    "make_test_matrix",
    "residual_norm",
    "serial_lu",
    "split_lu",
    "CGResult",
    "cg_program",
    "distributed_cg",
    "make_spd_matrix",
    "serial_cg",
    "ProcessGrid2D",
    "block_cyclic_indices",
    "block_cyclic_owner",
    "block_owner",
    "block_range",
    "block_ranges",
    "cyclic_indices",
    "cyclic_local_index",
    "cyclic_owner",
    "near_square_grid",
    "DistributedFFT",
    "distributed_fft",
    "fft_flops",
    "fft_program",
    "DELTA_KAPPA",
    "DELTA_LU_EFFICIENCY",
    "HPLModel",
    "HPLPoint",
    "delta_linpack",
    "DistributedMatmul",
    "matmul_flops",
    "summa",
    "summa_program",
    "LU2DResult",
    "lu2d",
    "lu2d_program",
    "serial_lu_nopivot",
    "CannonResult",
    "cannon",
    "cannon_program",
    "TSQRResult",
    "implicit_q",
    "normalize_r",
    "tsqr",
    "tsqr_program",
    "LinpackRun",
    "backward_sweep",
    "forward_sweep",
    "linpack_benchmark",
    "linpack_program",
]
