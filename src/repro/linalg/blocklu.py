"""LU factorisation with partial pivoting -- the LINPACK benchmark code.

Two implementations:

* :func:`serial_lu` -- the reference, pure NumPy, numerically identical
  to the textbook right-looking algorithm;
* :func:`lu_program` -- the distributed version that actually runs on
  the message-passing simulator with a 1-D column-cyclic layout, the
  layout the original parallel LINPACK codes used on the Delta (cyclic
  columns keep every node busy as the active submatrix shrinks).

Per elimination step ``k`` the owner of column ``k`` finds the pivot and
broadcasts (pivot row, multipliers) to all ranks, which apply the row
swap and rank-1 update to their own columns.  Compute time is charged
per update; communication cost emerges from the engine.

The large-machine performance questions (what does a 512-node run at
n=25 000 achieve?) are answered by the analytic model in
:mod:`repro.linalg.hpl_model`; this module validates the algorithm the
model abstracts, bit-for-bit against the serial reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Tuple

import numpy as np

from repro.linalg.decomp import cyclic_indices
from repro.simmpi.engine import Engine, SimResult
from repro.util.errors import DecompositionError
from repro.util.rng import resolve_rng


def serial_lu(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Right-looking LU with partial pivoting.

    Returns ``(lu, piv)`` where ``lu`` packs unit-lower L below the
    diagonal and U on/above it, and ``piv[k]`` is the row swapped with
    row ``k`` at step ``k`` (LINPACK-style pivot vector).
    """
    a = np.array(a, dtype=float, copy=True)
    n, m = a.shape
    if n != m:
        raise DecompositionError(f"matrix must be square, got {a.shape}")
    piv = np.arange(n)
    for k in range(n - 1):
        pivot = k + int(np.argmax(np.abs(a[k:, k])))
        piv[k] = pivot
        if pivot != k:
            a[[k, pivot], :] = a[[pivot, k], :]
        if a[k, k] != 0.0:
            a[k + 1:, k] /= a[k, k]
            a[k + 1:, k + 1:] -= np.outer(a[k + 1:, k], a[k, k + 1:])
    return a, piv


def apply_pivots(a: np.ndarray, piv: np.ndarray) -> np.ndarray:
    """Apply the recorded row interchanges to ``a`` (gives P @ a)."""
    a = np.array(a, dtype=float, copy=True)
    for k, pivot in enumerate(piv):
        if pivot != k:
            a[[k, pivot], :] = a[[pivot, k], :]
    return a


def split_lu(lu: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Unpack the combined factor into (unit-lower L, upper U)."""
    lower = np.tril(lu, -1) + np.eye(lu.shape[0])
    upper = np.triu(lu)
    return lower, upper


def lu_solve(lu: np.ndarray, piv: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve A x = b given the packed factorisation of A."""
    b = np.array(b, dtype=float, copy=True)
    n = lu.shape[0]
    for k, pivot in enumerate(piv):
        if pivot != k:
            b[[k, pivot]] = b[[pivot, k]]
    # Forward substitution with unit lower triangle.
    for k in range(n):
        b[k + 1:] -= lu[k + 1:, k] * b[k]
    # Back substitution.
    for k in range(n - 1, -1, -1):
        b[k] /= lu[k, k]
        b[:k] -= lu[:k, k] * b[k]
    return b


def lu_flops(n: int) -> float:
    """Operation count the LINPACK benchmark credits: 2n^3/3 + 3n^2/2
    (factor plus one solve)."""
    return 2.0 * n**3 / 3.0 + 1.5 * n**2


# ---------------------------------------------------------------------------
# distributed column-cyclic LU
# ---------------------------------------------------------------------------

@dataclass
class DistributedLU:
    """Result of a simulated distributed factorisation."""

    lu: np.ndarray
    piv: np.ndarray
    sim: SimResult

    @property
    def virtual_time(self) -> float:
        return self.sim.time

    def gflops(self, n: int = None) -> float:
        """Achieved rate credited with the LINPACK operation count."""
        n = self.lu.shape[0] if n is None else n
        if self.sim.time <= 0:
            return float("inf")
        return lu_flops(n) / self.sim.time / 1e9


def lu_program(comm, a_full: np.ndarray) -> Generator:
    """Rank program: column-cyclic LU over the simulator.

    Every rank receives the full initial matrix (tests construct it from
    a shared seed; a production code would scatter) and keeps only its
    cyclic columns.  Returns ``(owned_global_columns, local_block, piv)``.
    """
    n = a_full.shape[0]
    p = comm.size
    mine = cyclic_indices(n, p, comm.rank)
    local = np.array(a_full[:, mine], dtype=float, copy=True)
    # Identity start so the untouched last entry is the LINPACK
    # convention piv[n-1] = n-1.
    piv = np.arange(n)

    for k in range(n - 1):
        owner = k % p
        if comm.rank == owner:
            lk = k // p  # local column index of global column k
            col = local[:, lk]
            pivot = k + int(np.argmax(np.abs(col[k:])))
            if pivot != k:
                local[[k, pivot], :] = local[[pivot, k], :]
            denom = col[k]
            multipliers = (col[k + 1:] / denom) if denom != 0.0 else np.zeros(n - k - 1)
            local[k + 1:, lk] = multipliers
            # Pivot search + scaling cost.
            yield from comm.compute(flops=2.0 * (n - k))
            packet = (pivot, multipliers)
        else:
            packet = None
        pivot, multipliers = yield from comm.bcast(packet, root=owner)
        piv[k] = pivot

        if comm.rank != owner and pivot != k:
            local[[k, pivot], :] = local[[pivot, k], :]

        # Rank-1 update of owned columns right of k.
        update_mask = mine > k
        ncols = int(update_mask.sum())
        if ncols:
            cols = local[:, update_mask]
            cols[k + 1:, :] -= np.outer(multipliers, cols[k, :])
            local[:, update_mask] = cols
            yield from comm.compute(flops=2.0 * (n - k - 1) * ncols)

    return (mine, local, piv)


def distributed_lu(
    machine,
    n_ranks: int,
    a: np.ndarray,
    *,
    seed: int = 0,
) -> DistributedLU:
    """Factor ``a`` on a simulated machine; reassemble the global result.

    The returned combined factor and pivot vector are checked (in tests)
    to be bit-identical to :func:`serial_lu`.
    """
    n = a.shape[0]
    engine = Engine(machine, n_ranks, seed=seed)
    sim = engine.run(lu_program, np.asarray(a, dtype=float))
    lu = np.zeros((n, n))
    piv = None
    for mine, local, piv_r in sim.returns:
        lu[:, mine] = local
        piv = piv_r  # identical on every rank
    if n >= 1:
        piv[n - 1] = n - 1
    return DistributedLU(lu=lu, piv=piv, sim=sim)


def make_test_matrix(n: int, seed: int = 0) -> np.ndarray:
    """Well-conditioned dense test matrix (diagonally bumped uniform)."""
    rng = resolve_rng(seed)
    a = rng.uniform(-1.0, 1.0, size=(n, n))
    a[np.diag_indices(n)] += n / 4.0
    return a


def residual_norm(a: np.ndarray, lu: np.ndarray, piv: np.ndarray) -> float:
    """Relative factorisation residual ||P A - L U|| / ||A||."""
    lower, upper = split_lu(lu)
    pa = apply_pivots(a, piv)
    num = np.linalg.norm(pa - lower @ upper)
    den = np.linalg.norm(a)
    return float(num / den) if den else float(num)
