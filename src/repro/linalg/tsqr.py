"""TSQR: communication-avoiding QR for tall-skinny matrices.

Least-squares problems on distributed data (the parameter-estimation
side of several Grand Challenges) factor tall matrices where classical
Householder QR needs a reduction per column.  TSQR instead does one
local QR per rank and combines the small R factors up a binomial tree:
``ceil(log2 p)`` messages total, independent of the column count --
the canonical "scalable parallel algorithm" of the ASTA sort.

The distributed result is validated against ``numpy.linalg.qr`` on the
gathered matrix: R agrees up to row signs (QR's inherent ambiguity),
and the implicit Q reconstructed as ``A @ inv(R)`` is orthonormal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.linalg.decomp import block_range
from repro.simmpi.engine import Engine, SimResult
from repro.util.errors import DecompositionError


@dataclass
class TSQRResult:
    """The R factor (m-by-n upper triangular, n x n returned) plus
    simulation accounting."""

    r: np.ndarray
    sim: SimResult

    @property
    def virtual_time(self) -> float:
        return self.sim.time


def _qr_flops(rows: int, cols: int) -> float:
    """Householder QR cost 2mn^2 - 2n^3/3 (m >= n)."""
    return 2.0 * rows * cols * cols - 2.0 * cols**3 / 3.0


def normalize_r(r: np.ndarray) -> np.ndarray:
    """Fix QR's sign ambiguity: make every diagonal entry non-negative."""
    signs = np.sign(np.diag(r))
    signs[signs == 0] = 1.0
    return signs[:, None] * r


def tsqr_program(comm, a_full: np.ndarray) -> Generator:
    """Rank program: local QR then a binomial R-factor tree.

    Returns the n x n R on rank 0 (None elsewhere).
    """
    m, n = a_full.shape
    if m < n:
        raise DecompositionError(
            f"TSQR expects a tall matrix, got {m}x{n}"
        )
    p = comm.size
    lo, hi = block_range(m, p, comm.rank)
    local = np.array(a_full[lo:hi, :], copy=True)
    if hi - lo < 1:
        raise DecompositionError(
            f"rank {comm.rank} owns no rows: use fewer ranks for m={m}"
        )

    _, r_local = np.linalg.qr(local, mode="reduced")
    yield from comm.compute(flops=_qr_flops(hi - lo, n))

    # Binomial fan-in: at each round the odd partner ships its R, the
    # even partner stacks the two Rs and re-factors.
    mask = 1
    while mask < p:
        if comm.rank & mask:
            yield from comm.send(r_local, comm.rank - mask, tag=mask)
            return None
        partner = comm.rank + mask
        if partner < p:
            msg = yield from comm.recv(source=partner, tag=mask)
            stacked = np.vstack([r_local, msg.payload])
            _, r_local = np.linalg.qr(stacked, mode="reduced")
            yield from comm.compute(flops=_qr_flops(stacked.shape[0], n))
        mask <<= 1
    return r_local if comm.rank == 0 else None


def tsqr(machine, n_ranks: int, a: np.ndarray, *, seed: int = 0) -> TSQRResult:
    """Factor a tall-skinny matrix on a simulated machine; returns R."""
    a = np.asarray(a, dtype=float)
    if a.ndim != 2:
        raise DecompositionError(f"expected a matrix, got shape {a.shape}")
    m, n = a.shape
    if m < n:
        raise DecompositionError(f"TSQR expects m >= n, got {m}x{n}")
    if n_ranks > m // max(n, 1) and n_ranks > 1:
        # Each block should itself be tall; degenerate short blocks
        # still work numerically but defeat the algorithm's point.
        pass
    if n_ranks > m:
        raise DecompositionError(f"{n_ranks} ranks for {m} rows")
    engine = Engine(machine, n_ranks, seed=seed)
    sim = engine.run(tsqr_program, a)
    r = sim.returns[0]
    return TSQRResult(r=normalize_r(r), sim=sim)


def implicit_q(a: np.ndarray, r: np.ndarray) -> np.ndarray:
    """Reconstruct Q = A R^{-1} (valid for full-column-rank A)."""
    return np.linalg.solve(r.T, np.asarray(a, dtype=float).T).T
