"""SUMMA: Scalable Universal Matrix Multiplication Algorithm.

C = A @ B on a 2-D process grid.  Each rank owns a block of A, B, and C
(block-row by block-column).  The algorithm proceeds in panel steps: the
owners of panel ``k`` broadcast their A-column-panel along grid rows and
their B-row-panel along grid columns; every rank then accumulates a
local GEMM.  Row/column broadcasts run on
:class:`~repro.simmpi.group.GroupComm` sub-communicators, so the
communication cost emerges from the machine model.

This is the algorithm that displaced Cannon's method precisely because
it needs only broadcasts (no skewed initial alignment) -- the kind of
"scalable parallel algorithm" the ASTA component of the HPCC program
funded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.linalg.decomp import ProcessGrid2D, block_range, block_ranges
from repro.simmpi.engine import Engine, SimResult
from repro.util.errors import DecompositionError


@dataclass
class DistributedMatmul:
    """Reassembled product with simulation accounting."""

    c: np.ndarray
    sim: SimResult

    @property
    def virtual_time(self) -> float:
        return self.sim.time


def summa_program(
    comm,
    grid: ProcessGrid2D,
    a_full: np.ndarray,
    b_full: np.ndarray,
    panel: int,
    overlap: bool = False,
) -> Generator:
    """Rank program: SUMMA over the simulator.

    Each rank slices its own blocks from the replicated inputs (tests
    build them from a shared seed) and returns its C block with its
    global row/column ranges.  ``overlap`` switches the panel
    broadcasts to the non-blocking tree (same data, pipelined
    handshakes under rendezvous).
    """
    algo = "tree_nb" if overlap else "tree"
    m, k_dim = a_full.shape
    k2, n = b_full.shape
    if k_dim != k2:
        raise DecompositionError(
            f"inner dimensions disagree: A is {a_full.shape}, B is {b_full.shape}"
        )
    prow, pcol = grid.coords(comm.rank)
    row_comm = comm.group(grid.row_members(prow))
    col_comm = comm.group(grid.col_members(pcol))

    r0, r1 = block_range(m, grid.prows, prow)
    c0, c1 = block_range(n, grid.pcols, pcol)
    # K dimension is split by grid columns for A panels and by grid rows
    # for B panels.
    ak0, ak1 = block_range(k_dim, grid.pcols, pcol)
    bk0, bk1 = block_range(k_dim, grid.prows, prow)

    a_local = np.array(a_full[r0:r1, ak0:ak1], copy=True)
    b_local = np.array(b_full[bk0:bk1, c0:c1], copy=True)
    c_local = np.zeros((r1 - r0, c1 - c0))

    a_cuts = block_ranges(k_dim, grid.pcols)
    b_cuts = block_ranges(k_dim, grid.prows)

    k = 0
    while k < k_dim:
        kk = min(k + panel, k_dim)
        # Panels are clipped at owner boundaries so a panel always has a
        # single owning grid column (for A) and grid row (for B).
        a_owner = next(i for i, (s, e) in enumerate(a_cuts) if s <= k < e)
        kk = min(kk, a_cuts[a_owner][1])
        b_owner = next(i for i, (s, e) in enumerate(b_cuts) if s <= k < e)
        kk = min(kk, b_cuts[b_owner][1])

        if pcol == a_owner:
            a_panel = a_local[:, k - ak0:kk - ak0]
        else:
            a_panel = None
        with comm.phase("a-panel"):
            a_panel = yield from row_comm.bcast(a_panel, root=a_owner, algorithm=algo)

        if prow == b_owner:
            b_panel = b_local[k - bk0:kk - bk0, :]
        else:
            b_panel = None
        with comm.phase("b-panel"):
            b_panel = yield from col_comm.bcast(b_panel, root=b_owner, algorithm=algo)

        c_local += a_panel @ b_panel
        with comm.phase("gemm"):
            yield from comm.compute(
                flops=2.0 * a_panel.shape[0] * a_panel.shape[1] * b_panel.shape[1]
            )
        k = kk

    return ((r0, r1), (c0, c1), c_local)


def summa(
    machine,
    grid: ProcessGrid2D,
    a: np.ndarray,
    b: np.ndarray,
    *,
    panel: int = 32,
    seed: int = 0,
    overlap: bool = False,
    eager_threshold_bytes: float = float("inf"),
    delivery="alphabeta",
    trace: bool = False,
    macro_ops: bool = True,
    columnar: bool = True,
    certificate=None,
) -> DistributedMatmul:
    """Multiply on a simulated machine and reassemble the result.

    ``overlap``, ``eager_threshold_bytes`` and ``delivery`` tune the
    simulated communication without changing the numerics; ``trace``
    records spans for :mod:`repro.obs` analysis; ``macro_ops=False``
    forces collectives through the per-message event cascade;
    ``columnar=False`` routes whole-machine state updates through
    scalar per-rank loops instead of the vectorised columns.
    ``certificate`` passes a
    :class:`~repro.analyze.certify.MacroCertificate` through to the
    engine; the certificate's recorded ``overlap`` assumption must
    match this call's (``bundled_certificate("summa", p, overlap=...)``
    proves either variant -- both ``"tree"`` and the pipelined
    ``"tree_nb"`` broadcasts evaluate in closed form).
    """
    if grid.size > machine.n_nodes:
        raise DecompositionError(
            f"grid of {grid.size} ranks exceeds machine of {machine.n_nodes} nodes"
        )
    if panel < 1:
        raise DecompositionError(f"panel must be >= 1, got {panel}")
    if certificate is not None:
        assumed = dict(certificate.assume).get("overlap")
        if assumed is not None and assumed != repr(overlap):
            raise DecompositionError(
                f"macro certificate was proved under overlap={assumed}; "
                f"this run requests overlap={overlap!r} -- certify the "
                "matching variant (bundled_certificate('summa', p, "
                "overlap=...))"
            )
    engine = Engine(
        machine,
        grid.size,
        seed=seed,
        trace=trace,
        eager_threshold_bytes=eager_threshold_bytes,
        delivery=delivery,
        macro_ops=macro_ops,
        columnar=columnar,
        certificate=certificate,
    )
    sim = engine.run(
        summa_program,
        grid,
        np.asarray(a, dtype=float),
        np.asarray(b, dtype=float),
        panel,
        overlap,
    )
    m, n = a.shape[0], b.shape[1]
    c = np.zeros((m, n))
    for (r0, r1), (c0, c1), block in sim.returns:
        c[r0:r1, c0:c1] = block
    return DistributedMatmul(c=c, sim=sim)


def matmul_flops(m: int, k: int, n: int) -> float:
    """Classic 2mkn operation count."""
    return 2.0 * m * k * n
