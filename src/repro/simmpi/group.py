"""Sub-communicators over subsets of ranks.

A :class:`GroupComm` presents the same interface as
:class:`~repro.simmpi.comm.Comm` but renumbers a subset of global ranks
``members[i] -> i``.  It is what 2-D algorithms (SUMMA, process grids)
use for row and column collectives.

Construction is purely local -- no communication -- so every member must
derive the identical member list (the usual process-grid situation).
Isolation between different groups, and between group traffic and
parent-communicator traffic, is achieved by salting all group tags with
a hash of the member tuple: two different groups draw from disjoint tag
ranges with overwhelming probability, and group tags are always far
below user tag space.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence

from repro.simmpi import collectives as _coll
from repro.simmpi.comm import Comm
from repro.simmpi.requests import ANY_SOURCE, ANY_TAG
from repro.util.errors import CommunicationError
from repro.util.rng import stable_seed

#: User tags on a group are shifted this far below the group's salt so
#: they can never collide with the group's own collective tag blocks.
_USER_TAG_OFFSET = 1 << 40


class GroupComm:
    """Communicator over ``members`` of a parent :class:`Comm`."""

    __slots__ = (
        "parent", "members", "_member_pos", "rank", "size", "machine",
        "_salt", "_user_tag_base", "_coll_seq", "_tracing", "_phases",
        "_macro",
    )

    def __init__(self, parent: Comm, members: Sequence[int]):
        members = list(members)
        if len(set(members)) != len(members):
            raise CommunicationError(f"duplicate ranks in group: {members}")
        for m in members:
            if not 0 <= m < parent.size:
                raise CommunicationError(
                    f"group member {m} outside parent size {parent.size}"
                )
        if parent.rank not in members:
            raise CommunicationError(
                f"rank {parent.rank} constructing a group it is not a member of"
            )
        self.parent = parent
        self.members = members
        # Global rank -> group rank (message metadata translation runs
        # once per received message; no linear scans there).
        self._member_pos = {m: i for i, m in enumerate(members)}
        self.rank = self._member_pos[parent.rank]
        self.size = len(members)
        self.machine = parent.machine
        # Tag salt shared by construction across members (same tuple).
        self._salt = stable_seed(*members)
        # _user_tag(t) == base - t and _untag(g) == base - g (its own
        # inverse); precomputed so the per-message hot path is one
        # subtraction.
        self._user_tag_base = -(self._salt + _USER_TAG_OFFSET)
        self._coll_seq = 0
        # Phase labelling shares the parent's stack (one stack per rank);
        # groups are built after the engine sets the tracing flag.
        self._tracing = parent._tracing
        self._phases = parent._phases
        # Groups are built after the engine decides macro eligibility.
        self._macro = parent._macro

    # -- tag management -------------------------------------------------------

    def next_tag_block(self) -> int:
        self._coll_seq += 1
        return -(self._salt + self._coll_seq * _coll._TAG_STRIDE)

    def _user_tag(self, tag: int) -> int:
        return self._user_tag_base - tag

    def _untag(self, gtag: int) -> int:
        """Invert :meth:`_user_tag` for messages received in this group."""
        return self._user_tag_base - gtag

    def _to_group(self, msg):
        """Translate a delivered message's metadata to group coordinates.

        Rewrites the message in place: the engine constructs a fresh
        :class:`Message` per delivery and hands it to exactly one
        receive, so the group owns it and saves a constructor call per
        received message.
        """
        if msg is None:
            return None
        msg.source = self._member_pos.get(msg.source, msg.source)
        msg.tag = self._user_tag_base - msg.tag
        return msg

    # -- identity -------------------------------------------------------------

    def is_root(self, root: int = 0) -> bool:
        return self.rank == root

    @property
    def rng(self):
        """The parent rank's random stream (groups do not re-derive);
        delegated lazily so constructing a group never forces it."""
        return self.parent.rng

    def phase(self, name: str):
        """Phase labelling delegates to the parent communicator, so the
        engine sees one label stack per rank regardless of groups."""
        return self.parent.phase(name)

    def current_phase(self):
        return self.parent.current_phase()

    def group(self, members: Sequence[int]) -> "GroupComm":
        """Nested group: ``members`` are ranks *within this group*."""
        return GroupComm(self.parent, [self.members[m] for m in members])

    # -- collective-internal scratch access (see Comm._fill_send) -------------

    def _fill_send(self, payload, dest: int, tag: int):
        req = self.parent._send_req
        req.dest = self.members[dest]
        req.payload = payload
        req.tag = self._user_tag_base - tag
        req.nbytes = None
        return req

    def _fill_isend(self, payload, dest: int, tag: int):
        req = self.parent._isend_req
        req.dest = self.members[dest]
        req.payload = payload
        req.tag = self._user_tag_base - tag
        req.nbytes = None
        return req

    def _fill_recv(self, source: int, tag: int):
        req = self.parent._recv_req
        req.source = self.members[source]
        req.tag = self._user_tag_base - tag
        return req

    def _fill_wait(self, handle: int):
        req = self.parent._wait_req
        req.handle = handle
        return req

    # -- primitives (rank/tag translated onto the parent) ---------------------

    def send(
        self, payload: Any, dest: int, tag: int = 0, nbytes: Optional[float] = None
    ) -> Generator:
        if not 0 <= dest < self.size:
            raise CommunicationError(f"group send dest {dest} out of range")
        # Fill the parent's scratch request directly rather than
        # delegating to parent.send: group traffic is the per-message
        # hot path (2-D algorithms do all their point-to-point through
        # row/column groups), and the extra generator frame per resume
        # is measurable.  Members were validated at construction, so
        # the parent-range check is already covered.
        req = self.parent._send_req
        req.dest = self.members[dest]
        req.payload = payload
        req.tag = self._user_tag_base - tag
        req.nbytes = nbytes
        yield req
        req.payload = None  # do not pin the buffer past the send

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise CommunicationError(f"group recv source {source} out of range")
        req = self.parent._recv_req
        req.source = ANY_SOURCE if source == ANY_SOURCE else self.members[source]
        req.tag = ANY_TAG if tag == ANY_TAG else self._user_tag_base - tag
        msg = yield req
        return self._to_group(msg)

    def isend(
        self, payload: Any, dest: int, tag: int = 0, nbytes: Optional[float] = None
    ) -> Generator:
        if not 0 <= dest < self.size:
            raise CommunicationError(f"group isend dest {dest} out of range")
        req = self.parent._isend_req
        req.dest = self.members[dest]
        req.payload = payload
        req.tag = self._user_tag_base - tag
        req.nbytes = nbytes
        handle = yield req
        req.payload = None  # do not pin the buffer past the post
        return handle

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise CommunicationError(f"group irecv source {source} out of range")
        req = self.parent._irecv_req
        req.source = ANY_SOURCE if source == ANY_SOURCE else self.members[source]
        req.tag = ANY_TAG if tag == ANY_TAG else self._user_tag_base - tag
        handle = yield req
        return handle

    def wait(self, handle: int) -> Generator:
        msg = yield from self.parent.wait(handle)
        return self._to_group(msg)

    def waitall(self, handles) -> Generator:
        out = []
        for handle in handles:
            msg = yield from self.wait(handle)
            out.append(msg)
        return out

    def waitany(self, handles) -> Generator:
        index, msg = yield from self.parent.waitany(handles)
        return index, self._to_group(msg)

    def sendrecv(
        self,
        payload: Any,
        dest: int,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
        nbytes: Optional[float] = None,
    ) -> Generator:
        yield from self.send(payload, dest, sendtag, nbytes)
        msg = yield from self.recv(source, recvtag)
        return msg

    def compute(self, flops=None, seconds=None, efficiency=None) -> Generator:
        yield from self.parent.compute(flops=flops, seconds=seconds, efficiency=efficiency)

    # -- collectives (same algorithm library, group-relative ranks) -----------

    def barrier(self) -> Generator:
        return _coll.barrier(self)

    def bcast(self, value: Any, root: int = 0, algorithm: str = "tree") -> Generator:
        return _coll.bcast(self, value, root, algorithm)

    def reduce(self, value: Any, op="sum", root: int = 0) -> Generator:
        return _coll.reduce(self, value, op, root)

    def allreduce(self, value: Any, op="sum", algorithm: str = "reduce_bcast") -> Generator:
        return _coll.allreduce(self, value, op, algorithm)

    def gather(self, value: Any, root: int = 0, algorithm: str = "tree") -> Generator:
        return _coll.gather(self, value, root, algorithm)

    def allgather(self, value: Any, algorithm: str = "ring") -> Generator:
        return _coll.allgather(self, value, algorithm)

    def scatter(self, values, root: int = 0, algorithm: str = "tree") -> Generator:
        return _coll.scatter(self, values, root, algorithm)

    def alltoall(self, values, algorithm: str = "cyclic") -> Generator:
        return _coll.alltoall(self, values, algorithm)

    def scan(self, value: Any, op="sum") -> Generator:
        return _coll.scan(self, value, op)

    def reduce_scatter(self, values, op="sum") -> Generator:
        return _coll.reduce_scatter(self, values, op)
