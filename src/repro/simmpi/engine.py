"""Discrete-event engine executing rank programs on a machine model.

A *rank program* is a generator function ``program(comm, *args)`` that
yields primitive requests (:mod:`repro.simmpi.requests`).  The engine
runs one generator per rank, keeps a virtual clock per rank, and
interprets requests against the machine's cost model:

* ``ComputeReq`` advances the rank's clock by the modelled compute time.
* ``SendReq`` charges the sender the link startup latency (the CPU is
  busy in the message layer), then places the message in flight; it
  becomes available at the destination after the delivery model's
  routed delay.  Small sends are eager/buffered and never block; sends
  above the eager threshold use the rendezvous protocol and block until
  the matching receive is posted.
* ``IsendReq`` is the non-blocking send: eager isends complete at post;
  rendezvous isends park only the *transfer* while the sender keeps
  running, and synchronise through their handle.
* ``RecvReq`` blocks the rank until a matching message's arrival time.
* ``IrecvReq``/``WaitReq``/``WaitanyReq`` split receives (and isends)
  into post and completion, allowing communication/computation overlap
  exactly as MPI's ``MPI_Irecv``/``MPI_Wait``/``MPI_Waitany`` do.

Receive matching follows MPI: posted receives match in post order; per
source-destination pair, delivery is FIFO (wormhole channels do not
reorder), enforced by clamping arrival times to be monotone per pair.
``ANY_SOURCE`` receives resolve deterministically in message post
order, a legal refinement of MPI's nondeterminism.

The engine itself is a thin event loop over three swappable layers:

* :class:`~repro.simmpi.state.RankState` -- per-rank clocks, queues,
  and the unified request-handle table;
* :class:`~repro.simmpi.protocol.Protocol` -- eager and rendezvous
  matching strategies, selected per message by size;
* :class:`~repro.simmpi.delivery.DeliveryModel` -- wire-time charging;
  ``"alphabeta"`` charges messages independently, ``"contention"``
  serialises transfers on shared-link occupancy along
  ``topology.route()`` paths.

Numerics are real: payloads are actual NumPy arrays and the algorithms
running on the engine produce bit-identical results to their serial
references -- virtual time is accounted on the side.

**Run-until-block fast path.**  Most requests resume the same rank at
its current virtual time (a compute burst, an eager send, an irecv
post), so round-tripping each one through the global event heap is
pure overhead.  When a handler's only scheduling action is to resume
the *active* rank, the event is buffered instead of pushed, and the
inner loop keeps driving that rank's generator directly -- but only
while the buffered event would also have been the next heap pop
(strictly earlier than the heap head; on a tie the heap entry's older
sequence number wins, exactly as before).  Events that wake another
rank, and any event that loses that race, go through the heap
unchanged, so the processed event order -- and therefore makespans,
statistics, and traced spans -- is bit-identical with the fast path on
or off (``Engine(fast_path=False)`` forces every event through the
heap; the equivalence is asserted in tests).
"""

from __future__ import annotations

import gc
import heapq
from time import perf_counter

import numpy as np
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.machine.machine import Machine
from repro.simmpi.comm import Comm, CommTable
from repro.simmpi.delivery import AlphaBetaDelivery, DeliveryModel, resolve_delivery
from repro.simmpi.protocol import EagerProtocol, Protocol, RendezvousProtocol
from repro.simmpi.macro import SUPPORTED as _MACRO_SUPPORTED
from repro.simmpi.macro import evaluate as _macro_evaluate
from repro.simmpi.requests import (
    MACRO_FALLBACK,
    CollectiveReq,
    ComputeReq,
    InFlight,
    IrecvReq,
    IsendReq,
    Message,
    RecvReq,
    SendReq,
    WaitanyReq,
    WaitReq,
    copy_payload,
    payload_nbytes,
)
from repro.simmpi.state import (
    MachineState,
    RankState,
    RankStatsView,
    ReceiveSlot,
    SendHandle,
)
from repro.simmpi.trace import (
    COMPUTE,
    IDLE,
    RECV_WAIT,
    SEND_WAIT,
    MessageRecord,
    RankStats,
    Tracer,
)
from repro.simmpi.waitgraph import WaitForGraph, build_wait_graph
from repro.util.errors import (
    CommunicationError,
    ConfigurationError,
    DeadlockError,
    SimulationError,
)
from repro.util.rng import RankStreams


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    #: Per-rank generator return values.
    returns: List[Any]
    #: Virtual makespan: the latest rank finish time, seconds.
    time: float
    #: Per-rank accounting.  Event-path runs hold a real list; a lazy
    #: closed-form run holds a column-backed
    #: :class:`~repro.simmpi.state.LazyRankStats` (same len/index/``==``
    #: behaviour, rows built on access).
    stats: Sequence[RankStats]
    #: Message log (populated only when tracing was enabled).
    tracer: Tracer = field(default_factory=Tracer)
    #: Ranks killed by fault injection (empty in normal runs).
    failed_ranks: List[int] = field(default_factory=list)
    #: Requests processed by the engine (the denominator of events/sec
    #: in the throughput benchmarks).
    events: int = 0
    #: Macro-op invocations that fell back to the per-message event
    #: path (probe found queued/parked member traffic, or the analytic
    #: evaluator bailed).  Certified runs assert this stays zero.
    macro_fallbacks: int = 0
    #: Wall-clock seconds of machine bring-up: everything ``run()`` did
    #: before the first event (certificate validation, stream/comm
    #: tables, columnar state, and -- on the eager path -- every rank's
    #: Comm/rng/generator frame).
    setup_wall_s: float = 0.0
    #: Wall-clock seconds inside the event loop (or the closed-form
    #: replay) plus result finalization.
    execute_wall_s: float = 0.0
    #: Ranks whose Comm/generator frame was actually constructed.  On
    #: the eager path this equals ``n_ranks``; a lazy closed-form run
    #: materializes only rank 0.
    ranks_materialized: int = 0

    @property
    def n_ranks(self) -> int:
        return len(self.stats)

    @property
    def total_messages(self) -> int:
        return sum(s.messages_sent for s in self.stats)

    @property
    def total_bytes(self) -> float:
        return sum(s.bytes_sent for s in self.stats)

    @property
    def total_compute_time(self) -> float:
        return sum(s.compute_time for s in self.stats)

    @property
    def total_comm_time(self) -> float:
        return sum(s.comm_time for s in self.stats)

    def parallel_efficiency(self, serial_time: float) -> float:
        """Speedup over ``serial_time`` divided by rank count."""
        if self.time <= 0:
            return 1.0
        return (serial_time / self.time) / self.n_ranks


class Engine:
    """Runs rank programs over a :class:`~repro.machine.machine.Machine`.

    Parameters
    ----------
    machine:
        Cost model supplier.  Ranks map one-to-one onto machine nodes.
    n_ranks:
        Number of ranks; defaults to every node of the machine.
    rank_map:
        Optional rank -> node placement (default identity).  Placement
        changes hop counts, hence communication time.
    seed:
        Master seed; each rank receives an independent child stream.
    trace:
        Record every message (memory-bounded) for analysis.
    max_events:
        Safety valve: abort with :class:`SimulationError` after this
        many processed requests (default 50 million).
    fail_at:
        Fault injection: rank -> virtual time at which that node dies.
        A dead rank stops executing; its in-flight messages still
        deliver (they were on the wire), but nothing further is sent.
        Survivors blocked on it surface as a :class:`DeadlockError`
        naming the failure; survivors that never needed it complete
        normally and the failure is reported in
        :attr:`SimResult.failed_ranks`.
    eager_threshold_bytes:
        Messages up to this size use the eager/buffered protocol
        (default: everything).  Larger sends use **rendezvous**: the
        sender blocks until the receiver posts a matching receive, then
        the transfer starts.  This reproduces real MPI semantics --
        including the classic symmetric-blocking-send deadlock -- and
        enables the eager-vs-rendezvous ablation.
    delivery:
        Wire-time model: ``"alphabeta"`` (independent per-message
        charging, the default), ``"contention"`` (transfers serialise
        on shared-link occupancy along routed paths), or any
        :class:`~repro.simmpi.delivery.DeliveryModel` instance.  Each
        ``run()`` binds a fresh per-run model (via
        :meth:`DeliveryModel.fresh`) so interleaved runs on one engine
        never share contention state.
    fast_path:
        Enable the run-until-block inner loop (default on).  Purely a
        scheduling shortcut -- results are bit-identical either way;
        the flag exists for A/B equivalence tests and debugging.
    macro_ops:
        Evaluate eligible collectives as single engine-level macro
        events using the closed-form schedules in
        :mod:`repro.simmpi.macro` instead of replaying their
        per-message event cascades (default on).  Like ``fast_path``
        this is purely an execution shortcut: makespans, per-rank
        stats, and return values are bit-identical (asserted in the
        A/B equivalence suite); only :attr:`SimResult.events` shrinks.
        Automatically disabled for the whole run when tracing is on,
        the delivery model is not the plain alpha-beta one (e.g.
        contention), or fault injection is armed -- in those cases
        per-message semantics are observable.  Individual invocations
        additionally fall back to the event path whenever analytic
        exactness cannot be guaranteed (members with queued or parked
        traffic, rendezvous messages inside cyclic patterns,
        unsupported algorithms).  Declared stencil phases
        (:meth:`~repro.simmpi.comm.Comm.exchange`) follow the same
        discipline via :mod:`repro.simmpi.stencil`.
    columnar:
        Route whole-machine updates (macro-op resume, stats
        finalization, makespan reduction) through vectorized operations
        on the columnar :class:`~repro.simmpi.state.MachineState`
        arrays instead of per-rank Python loops (default on).  Storage
        is columnar either way -- the flag only selects between the
        vectorized and the per-rank update routes, which are
        bit-identical (asserted in the A/B equivalence suite); it
        exists for those tests and for debugging.
    certificate:
        A :class:`~repro.analyze.certify.MacroCertificate` for the
        program this engine will run.  The certificate's static proof
        (no point-to-point traffic, every collective macro-eligible)
        lets ``run()`` skip the per-member soundness probe on every
        macro invocation.  Validated against the program's source hash
        and the rank count at ``run()`` time: a stale or mismatched
        certificate raises :class:`ConfigurationError` rather than
        being silently trusted.  Ignored when macro-ops are disabled
        for the run (tracing, contention, faults) -- the event path
        needs no probe.
    lazy:
        Defer per-rank object bring-up (default on).  With ``lazy=True``
        ``run()`` registers only O(1) tables up front -- a
        :class:`~repro.util.rng.RankStreams` view of the seed's spawn
        children and a :class:`~repro.simmpi.comm.CommTable` -- and a
        rank's :class:`RankState`, Comm, rng, and generator frame are
        built the first time that rank is touched (resumed, or targeted
        by a message).  ``lazy=False`` rebuilds everything eagerly at
        bring-up, exactly as the pre-lazy engine did; both paths are
        bit-identical in every observable (makespans, stats, traces,
        event counts -- asserted in the A/B suite) because
        materialization never touches clocks or statistics.
    closed_form:
        Run the whole program as a closed-form *ghost replay* (default
        off): only rank 0's generator is driven, compute requests
        charge every rank's clock in one vectorized operation, and each
        world collective or declared stencil exchange is priced by the
        macro evaluator from synthesized per-rank requests.  Requires a
        validated ``certificate``, ``columnar=True``, and macro-ops
        effectively enabled (untraced, alpha-beta delivery, no faults);
        the program must be rank-symmetric -- every rank yields the
        same request sequence with payloads of identical wire size (the
        certificate's static proof covers the no-p2p part, and payload
        synthesis from rank 0 makes virtual time exact whenever sizes
        are uniform).  Point-to-point requests, group collectives, and
        analytic-evaluation bailouts raise :class:`SimulationError`
        instead of silently degrading.  ``returns`` carries rank 0's
        value only; most ranks never materialize at all, which is what
        makes 10^6-rank machines affordable.
    """

    def __init__(
        self,
        machine: Machine,
        n_ranks: Optional[int] = None,
        *,
        rank_map: Optional[Sequence[int]] = None,
        seed: int = 0,
        trace: bool = False,
        max_events: int = 50_000_000,
        fail_at: Optional[Dict[int, float]] = None,
        eager_threshold_bytes: float = float("inf"),
        delivery: Union[str, DeliveryModel] = "alphabeta",
        fast_path: bool = True,
        macro_ops: bool = True,
        columnar: bool = True,
        certificate: Optional[Any] = None,
        lazy: bool = True,
        closed_form: bool = False,
    ):
        self.machine = machine
        self.n_ranks = machine.n_nodes if n_ranks is None else n_ranks
        if not 1 <= self.n_ranks <= machine.n_nodes:
            raise ConfigurationError(
                f"n_ranks {self.n_ranks} not in [1, {machine.n_nodes}]"
            )
        if rank_map is None:
            self.rank_map = list(range(self.n_ranks))
        else:
            self.rank_map = list(rank_map)
            if len(self.rank_map) != self.n_ranks:
                raise ConfigurationError(
                    f"rank_map has {len(self.rank_map)} entries for {self.n_ranks} ranks"
                )
            if len(set(self.rank_map)) != self.n_ranks:
                raise ConfigurationError("rank_map must place each rank on a distinct node")
            for node in self.rank_map:
                machine.topology.check_node(node)
        self.seed = seed
        self.trace = trace
        self.max_events = max_events
        if eager_threshold_bytes < 0:
            raise ConfigurationError(
                f"eager threshold must be >= 0, got {eager_threshold_bytes}"
            )
        self.eager_threshold_bytes = eager_threshold_bytes
        self.delivery = resolve_delivery(delivery)
        self.fast_path = fast_path
        self.macro_ops = macro_ops
        self.columnar = columnar
        self.certificate = certificate
        self.lazy = lazy
        self.closed_form = closed_form
        if closed_form:
            if certificate is None:
                raise ConfigurationError(
                    "closed_form runs require a MacroCertificate "
                    "(certify_macro() the program first)"
                )
            if not columnar:
                raise ConfigurationError(
                    "closed_form runs require columnar=True (all state "
                    "lives in the MachineState columns)"
                )
            if trace or fail_at or not macro_ops:
                raise ConfigurationError(
                    "closed_form runs require macro-ops: no tracing, no "
                    "fault injection, macro_ops=True"
                )
        self.fail_at = dict(fail_at) if fail_at else {}
        for rank, when in self.fail_at.items():
            if not 0 <= rank < self.n_ranks:
                raise ConfigurationError(
                    f"fail_at rank {rank} outside [0, {self.n_ranks})"
                )
            if when < 0:
                raise ConfigurationError(
                    f"fail_at time must be >= 0, got {when} for rank {rank}"
                )

    def run(self, program: Callable, *args: Any, **kwargs: Any) -> SimResult:
        """Execute ``program(comm, *args, **kwargs)`` on every rank.

        Returns a :class:`SimResult`; rank return values appear in
        ``result.returns`` in rank order.
        """
        return _Run(self).execute(program, args, kwargs)


#: Fault-injection sentinel circulated through the event heap.
_FAIL = object()


class _Run:
    """One execution: the event loop plus the context protocols and
    delivery models operate through."""

    __slots__ = (
        "engine", "machine", "tracer", "delivery", "eager", "rendezvous",
        "protocols", "ranks", "_n", "_eager_max", "_last_arrival",
        "_overhead", "seq", "_heap", "_active", "_fast", "_fast_enabled",
        "comms", "_ab_hops", "_ab", "_tracing", "_flops_denom",
        "_macro_enabled", "_macro_pending", "_world_members",
        "_cert_pure", "_cert_uniform", "_fallbacks",
        "ms", "_columnar", "_clk", "_blk", "_fin", "_fld",
        "_cpu_t", "_comm_t", "_idle_t", "_fin_t",
        "_sent_n", "_sent_b", "_recv_n", "_recv_b",
        "streams", "resumes", "_program", "_args", "_kwargs",
    )

    def __init__(self, engine: Engine):
        self.engine = engine
        self.machine = engine.machine
        self.tracer = Tracer(enabled=engine.trace)
        # Cached copies of per-run constants the hot handlers consult
        # on every event (tracer.enabled never changes mid-run; the
        # machine is homogeneous, so the default flops rate is fixed).
        self._tracing = engine.trace
        node = engine.machine.node
        self._flops_denom = node.peak_flops * node.sustained_fraction
        # A fresh (or self-declared reentrant) model per run: two
        # interleaved run() calls on one Engine must not share link
        # occupancy or memo state.
        self.delivery = engine.delivery.fresh()
        self.delivery.bind(self.machine, engine.rank_map)
        # Exact-type check so the inlined send path only specialises the
        # stock alpha-beta model; subclasses with overridden arrival()
        # take the generic virtual call.
        self._ab = self.delivery if type(self.delivery) is AlphaBetaDelivery else None
        self.eager: Protocol = EagerProtocol()
        self.rendezvous: Protocol = RendezvousProtocol()
        #: Receive-post matching order: eager queue first, then parked
        #: rendezvous senders (the seed engine's semantics).
        self.protocols = (self.eager, self.rendezvous)
        # Columnar hot state: one MachineState holds every rank's
        # clock, lifecycle flags, and stats accumulators as parallel
        # numpy arrays; the RankState objects are thin views over it.
        # The fused handlers below bind the columns once and index them
        # through memoryviews -- same storage the views and the
        # vectorized routes see, but scalar get/set on a memoryview is
        # ~2.5x faster than ndarray indexing, and reads hand back plain
        # Python numbers (no numpy scalars leak into heap tuples).
        # Array-at-a-time operations keep using the ms.* ndarrays.
        ms = MachineState(engine.n_ranks)
        self.ms = ms
        self._columnar = engine.columnar
        self._clk = memoryview(ms.clock)
        self._blk = memoryview(ms.blocked)
        self._fin = memoryview(ms.finished)
        self._fld = memoryview(ms.failed)
        self._cpu_t = memoryview(ms.compute_time)
        self._comm_t = memoryview(ms.comm_time)
        self._idle_t = memoryview(ms.idle_time)
        self._fin_t = memoryview(ms.finish_time)
        self._sent_n = memoryview(ms.messages_sent)
        self._sent_b = memoryview(ms.bytes_sent)
        self._recv_n = memoryview(ms.messages_received)
        self._recv_b = memoryview(ms.bytes_received)
        # Per-rank object state materializes lazily (a rank's slot stays
        # None until the rank is first resumed or targeted); the eager
        # A/B path (Engine(lazy=False)) fills every slot in execute().
        # Either way the columns above exist for all ranks from the
        # start, so whole-machine operations never care.
        self.ranks: List[Optional[RankState]] = [None] * engine.n_ranks
        #: Lazily-built generator frames, parallel to ``ranks``.
        self.resumes: List[Optional[Callable]] = [None] * engine.n_ranks
        #: Interned pair keys: src * n_ranks + dst (no tuple per lookup).
        self._n = engine.n_ranks
        self._eager_max = engine.eager_threshold_bytes
        # FIFO clamp: latest arrival so far per interned (src, dst) key.
        self._last_arrival: Dict[int, float] = {}
        # Sender-side injection overhead per pair key (the model's
        # overhead() takes no time argument, so it is stationary per
        # pair within a run and safe to memoise).
        self._overhead: Dict[int, float] = {}
        self.seq = 0  # global tiebreaker / message post order
        self._heap: List[tuple] = []  # (time, seq, rank, resume_value)
        # Run-until-block state: the rank whose generator the event
        # loop is currently driving, and the buffered resume event for
        # it (None, or the (time, seq, rank, value) tuple schedule()
        # held back from the heap).
        self._active = -1
        self._fast: Optional[tuple] = None
        self._fast_enabled = engine.fast_path
        #: Rank-side communicator table (set in execute); materializes a
        #: Comm per rank on demand and is consulted for the active phase
        #: label when recording spans.
        self.comms: Optional[CommTable] = None
        #: RankStreams view of the seed's spawn children (set in execute).
        self.streams: Optional[RankStreams] = None
        self._program: Optional[Callable] = None
        self._args: tuple = ()
        self._kwargs: dict = {}
        # Hop-count memo for the uncontended alpha-beta reference used
        # to split wire time from contention stall (tracing only).
        self._ab_hops: Dict[int, int] = {}
        # Collective macro-ops: run-level eligibility (tracing, a
        # non-stock delivery model, or armed faults make per-message
        # semantics observable, so the whole run stays on the event
        # path), plus the gather table of partially arrived
        # invocations keyed by (members, seq, kind, algorithm, root).
        self._macro_enabled = (
            engine.macro_ops
            and not engine.trace
            and not engine.fail_at
            and self._ab is not None
        )
        self._macro_pending: Dict[tuple, list] = {}
        # World member tuple, built on first use: O(p) to construct, so
        # bring-up does not pay for it (closed-form runs build it once,
        # pure point-to-point runs never do).
        self._world_members: Optional[tuple] = None
        # Macro-eligibility certificate state (armed in execute() once
        # the certificate is validated against the program): _cert_pure
        # skips the per-member probe in _run_macro, _cert_uniform lets
        # the stencil evaluator trust payload-size uniformity.
        self._cert_pure = False
        self._cert_uniform = False
        self._fallbacks = 0

    # -- tracing helpers ----------------------------------------------------

    def phase(self, rank: int) -> Optional[str]:
        """Current phase label of ``rank`` (tracing only)."""
        return self.comms[rank].current_phase()

    # -- lazy materialization -----------------------------------------------

    def rank_state(self, rank: int) -> RankState:
        """The rank's :class:`RankState`, built on first touch.

        Materialization allocates only the per-rank *object* state
        (handle table, queues); clocks and stats were always live in
        the columns, so building the view late can never change a
        number.
        """
        state = self.ranks[rank]
        if state is None:
            state = self.ranks[rank] = RankState(rank, self.ms)
        return state

    def world_members(self) -> tuple:
        """``(0, 1, ..., n_ranks-1)``, built on first use."""
        members = self._world_members
        if members is None:
            members = self._world_members = tuple(range(self._n))
        return members

    def _materialize_frame(self, rank: int) -> Callable:
        """Build rank ``rank``'s generator frame (and its Comm, through
        the table) and return the bound ``gen.send``."""
        gen = self._program(self.comms[rank], *self._args, **self._kwargs)
        if not hasattr(gen, "send") or not hasattr(gen, "throw"):
            raise SimulationError(
                "rank program must be a generator function "
                "(write communication as 'yield from comm....')"
            )
        resume = self.resumes[rank] = gen.send
        return resume

    def alphabeta_arrival(
        self, src_rank: int, dst_rank: int, nbytes: float, start: float
    ) -> float:
        """Uncontended alpha-beta arrival time: the lower bound any
        delivery model degenerates to on an idle network.  Used when
        tracing to classify wire-time excess as contention stall."""
        key = src_rank * self._n + dst_rank
        hops = self._ab_hops.get(key)
        if hops is None:
            hops = self.machine.topology.hops(
                self.engine.rank_map[src_rank], self.engine.rank_map[dst_rank]
            )
            self._ab_hops[key] = hops
        return start + self.machine.link.message_time(nbytes, hops)

    # -- context interface used by protocols -------------------------------

    def arrival(self, src_rank: int, dst_rank: int, nbytes: float, start: float) -> float:
        """Delivery-model arrival with the per-pair FIFO clamp applied."""
        arrival = self.delivery.arrival(src_rank, dst_rank, nbytes, start)
        key = src_rank * self._n + dst_rank
        last = self._last_arrival
        prev = last.get(key)
        if prev is not None and prev > arrival:
            arrival = prev
        last[key] = arrival
        return arrival

    def overhead(self, src_rank: int, dst_rank: int) -> float:
        """Memoised sender-side injection cost for one pair."""
        key = src_rank * self._n + dst_rank
        memo = self._overhead
        cost = memo.get(key)
        if cost is None:
            cost = memo[key] = self.delivery.overhead(src_rank, dst_rank)
        return cost

    def schedule(self, time: float, rank: int, value: Any) -> None:
        """Queue a resume event.  A resume of the *active* rank is
        buffered for the run-until-block inner loop instead of pushed;
        the loop pushes it after all if an older heap event must run
        first (see ``execute``).  Sequence numbers are assigned
        identically either way, so event order never changes."""
        self.seq += 1
        if rank == self._active and self._fast is None:
            self._fast = (time, self.seq, rank, value)
        else:
            heapq.heappush(self._heap, (time, self.seq, rank, value))

    def post_message(self, msg: InFlight) -> None:
        """Bind an in-flight message to the earliest matching posted
        receive, or queue it."""
        dst = self.ranks[msg.dest]
        if dst is None:  # first touch of a not-yet-resumed receiver
            dst = self.ranks[msg.dest] = RankState(msg.dest, self.ms)
        if dst.rslots:
            source = msg.source
            tag = msg.tag
            for slot in dst.rslots.values():
                if slot.msg is None:
                    s = slot.source
                    if s == -1 or s == source:
                        t = slot.tag
                        if t == -1 or t == tag:
                            slot.msg = msg
                            if slot.waiting:
                                self.complete_receive(dst, slot)
                            return
        dst.pending.append(msg)

    def complete_receive(self, state: RankState, slot: ReceiveSlot) -> None:
        """The blocked rank's slot got its message: deliver."""
        if state.anywait is not None:
            self._complete_anywait(state, slot.handle_id)
            return
        msg = slot.msg
        blocked_since = slot.blocked_since
        arrival = msg.arrival_time
        completion = arrival if arrival > blocked_since else blocked_since
        # Inlined _deliver (one call per received message): account
        # straight into the state columns, trace when enabled, drop the
        # handle.
        rank = state.rank
        comm_t = self._comm_t
        comm_t[rank] = comm_t[rank] + (completion - blocked_since)
        recv_n = self._recv_n
        recv_n[rank] = recv_n[rank] + 1
        recv_b = self._recv_b
        recv_b[rank] = recv_b[rank] + msg.nbytes
        if self._tracing:
            self._trace_delivery(state, slot, completion)
        hid = slot.handle_id
        state.rslots.pop(hid, None)
        state.handles.pop(hid)
        self._clk[rank] = completion
        self._blk[rank] = False
        value = Message(msg.payload, msg.source, msg.tag, arrival)
        seq = self.seq + 1
        self.seq = seq
        if rank == self._active and self._fast is None:
            self._fast = (completion, seq, rank, value)
        else:
            heapq.heappush(self._heap, (completion, seq, rank, value))

    def complete_send(self, state: RankState, handle: SendHandle) -> None:
        """A waited-on isend handle finished (eager: instantly;
        rendezvous: at its handshake)."""
        if state.anywait is not None:
            self._complete_anywait(state, handle.handle_id)
            return
        completion = max(handle.blocked_since, handle.complete_at)
        rank = state.rank
        comm_t = self._comm_t
        comm_t[rank] = comm_t[rank] + (completion - handle.blocked_since)
        if self.tracer.enabled and completion > handle.blocked_since:
            # The handshake cause is binding only when the remote event
            # (not our own blocking point) determined the completion.
            cause = handle.hs_cause if handle.complete_at > handle.blocked_since else None
            self.tracer.span(
                state.rank,
                SEND_WAIT,
                handle.blocked_since,
                completion,
                name=self.phase(state.rank),
                peer=handle.dest,
                tag=handle.tag,
                nbytes=handle.nbytes,
                cause=cause,
            )
        self._clk[rank] = completion
        self._blk[rank] = False
        state.pop_handle(handle.handle_id)
        self.schedule(completion, rank, None)

    # -- completion helpers -------------------------------------------------

    def _deliver(self, state: RankState, slot: ReceiveSlot, completion: float) -> None:
        """Account and trace one delivered message; drops the handle."""
        msg = slot.msg
        rank = state.rank
        comm_t = self._comm_t
        comm_t[rank] = comm_t[rank] + (completion - slot.blocked_since)
        recv_n = self._recv_n
        recv_n[rank] = recv_n[rank] + 1
        recv_b = self._recv_b
        recv_b[rank] = recv_b[rank] + msg.nbytes
        if self.tracer.enabled:
            self._trace_delivery(state, slot, completion)
        state.pop_handle(slot.handle_id)

    def _trace_delivery(self, state: RankState, slot: ReceiveSlot, completion: float) -> None:
        """Record the recv-wait span and message record (tracing only)."""
        msg = slot.msg
        if completion > slot.blocked_since:
            # The wire edge is binding only when the arrival (not
            # our own blocking point) determined the completion.
            cause = msg.wire if msg.arrival_time > slot.blocked_since else None
            self.tracer.span(
                state.rank,
                RECV_WAIT,
                slot.blocked_since,
                completion,
                name=self.phase(state.rank),
                peer=msg.source,
                tag=msg.tag,
                nbytes=msg.nbytes,
                cause=cause,
            )
        self.tracer.record(
            MessageRecord(
                source=msg.source,
                dest=msg.dest,
                tag=msg.tag,
                nbytes=msg.nbytes,
                send_time=msg.send_time,
                arrival_time=msg.arrival_time,
                recv_time=completion,
            )
        )

    def _complete_anywait(self, state: RankState, handle_id: int) -> None:
        """One member of a waitany group became ready: finish the wait."""
        index = state.anywait.index(handle_id)
        handle = state.handles[handle_id]
        for hid in state.anywait:
            other = state.handles.get(hid)
            if other is not None:
                other.waiting = False
        state.anywait = None
        rank = state.rank
        self._blk[rank] = False
        if isinstance(handle, ReceiveSlot):
            msg = handle.msg
            completion = max(handle.blocked_since, msg.arrival_time)
            self._deliver(state, handle, completion)
            value = (index, Message(msg.payload, msg.source, msg.tag, msg.arrival_time))
        else:
            completion = max(handle.blocked_since, handle.complete_at)
            comm_t = self._comm_t
            comm_t[rank] = comm_t[rank] + (completion - handle.blocked_since)
            if self.tracer.enabled and completion > handle.blocked_since:
                cause = handle.hs_cause if handle.complete_at > handle.blocked_since else None
                self.tracer.span(
                    state.rank,
                    SEND_WAIT,
                    handle.blocked_since,
                    completion,
                    name=self.phase(state.rank),
                    peer=handle.dest,
                    tag=handle.tag,
                    nbytes=handle.nbytes,
                    cause=cause,
                )
            state.pop_handle(handle_id)
            value = (index, None)
        self._clk[rank] = completion
        self.schedule(completion, rank, value)

    def post_receive(self, state: RankState, source: int, tag: int) -> ReceiveSlot:
        """Post a receive; bind a queued eager message or wake a parked
        rendezvous sender."""
        hid = state._next_handle
        state._next_handle = hid + 1
        slot = ReceiveSlot(hid, source, tag)
        # Fast exit: nothing queued at this rank, nothing to match.
        if state.pending or state.parked:
            for protocol in self.protocols:
                if protocol.match_posted_receive(self, state, slot):
                    break
        state.handles[hid] = slot
        state.rslots[hid] = slot
        return slot

    # -- request handlers ----------------------------------------------------

    def _handle_compute(self, state: RankState, request: ComputeReq) -> None:
        if request.seconds is not None:
            dt = request.seconds
        elif request.efficiency is None:
            # flops / (peak * sustained), denominator precomputed: the
            # same expression compute_time evaluates, minus two calls.
            flops = request.flops
            if flops < 0:
                self.machine.compute_time(flops)  # raises the usual error
            dt = flops / self._flops_denom
        else:
            dt = self.machine.compute_time(request.flops, request.efficiency)
        rank = state.rank
        clk = self._clk
        t0 = clk[rank]
        clock = t0 + dt
        clk[rank] = clock
        cpu = self._cpu_t
        cpu[rank] = cpu[rank] + dt
        if self._tracing and dt > 0:
            self.tracer.span(rank, COMPUTE, t0, clock, name=self.phase(rank))
        seq = self.seq + 1
        self.seq = seq
        if rank == self._active and self._fast is None:
            self._fast = (clock, seq, rank, None)
        else:
            heapq.heappush(self._heap, (clock, seq, rank, None))

    def _handle_collective(self, state: RankState, request: CollectiveReq) -> None:
        """One member arrived at a macro collective: park it until the
        whole group is in, then evaluate the invocation analytically
        (or fall everyone back to the event path)."""
        key = (request.members, request.seq, request.kind,
               request.algorithm, request.root)
        pend = self._macro_pending
        entry = pend.get(key)
        if entry is None:
            size = request.size
            # [outstanding count, reqs by group rank, entry clocks]
            entry = pend[key] = [size, [None] * size, [0.0] * size]
        g = request.grank
        entry[0] -= 1
        entry[1][g] = request
        entry[2][g] = self._clk[state.rank]
        self._blk[state.rank] = True
        state.collective = key
        if entry[0] == 0:
            del pend[key]
            self._run_macro(key, entry[1], entry[2])

    def _run_macro(self, key: tuple, reqs: list, clocks: list) -> None:
        """All members of one collective invocation are parked: commit
        the closed-form schedule, or resume everyone with the fallback
        sentinel so the real message algorithm runs from these same
        entry clocks."""
        members = key[0]
        if members is None:
            members = self.world_members()
        ranks = self.ranks
        # Stencil exchange phases carry their declared spec in the
        # algorithm slot; collectives are checked against the evaluator
        # registry.
        sound = key[2] == "exchange" or (key[2], key[3]) in _MACRO_SUPPORTED
        if sound and not self._cert_pure:
            # A macro-eligibility certificate proves statically that no
            # member can hold queued or parked traffic here; without
            # one, probe every member at every invocation.
            for m in members:
                st = ranks[m]
                # Queued eager traffic, posted receive slots, or parked
                # rendezvous senders targeting a member could interact
                # with the collective's own messages; only the event
                # path reproduces that exactly.
                if st.rslots or st.pending or st.parked:
                    sound = False
                    break
        result = _macro_evaluate(self, members, reqs, clocks) if sound else None
        schedule = self.schedule
        blk = self._blk
        if result is None:
            self._fallbacks += 1
            clk = self._clk
            if self._columnar:
                # Vectorized whole-group unblock (on the ndarray; the
                # memoryview sees it); the loop below only rewires
                # per-rank object state and resume events.
                self.ms.blocked[np.fromiter(members, np.intp, count=len(members))] = False
                for m in members:
                    ranks[m].collective = None
                    schedule(clk[m], m, MACRO_FALLBACK)
            else:
                for m in members:
                    blk[m] = False
                    ranks[m].collective = None
                    schedule(clk[m], m, MACRO_FALLBACK)
            return
        finishes, values = result
        # evaluate() already committed clocks and stats; the resume
        # events land exactly at each member's new clock, so no idle
        # time is attributed.
        if self._columnar:
            self.ms.blocked[np.fromiter(members, np.intp, count=len(members))] = False
            for i, m in enumerate(members):
                ranks[m].collective = None
                schedule(finishes[i], m, values[i])
        else:
            for i, m in enumerate(members):
                blk[m] = False
                ranks[m].collective = None
                schedule(finishes[i], m, values[i])

    def _protocol_for(self, nbytes: float) -> Protocol:
        if nbytes > self.engine.eager_threshold_bytes:
            return self.rendezvous
        return self.eager

    def _eager_send_fast(
        self, state: RankState, request, nbytes: float, handle: Optional[SendHandle]
    ) -> None:
        """Untraced eager send with the arrival/overhead memos, FIFO
        clamp and scheduling inlined: one call on the simulator's
        hottest path instead of six.  Float-identical to
        :meth:`EagerProtocol.send` with tracing off (same memo contents,
        same expression groupings, same sequence-number draws)."""
        src_rank = state.rank
        clk = self._clk
        now = clk[src_rank]
        dest = request.dest
        key = src_rank * self._n + dest
        ab = self._ab
        if ab is not None:
            fixed = ab._fixed.get(key)
            if fixed is None:
                arrival = ab.arrival(src_rank, dest, nbytes, now)
            else:
                arrival = now + (fixed + nbytes / ab._bw)
        else:
            arrival = self.delivery.arrival(src_rank, dest, nbytes, now)
        last = self._last_arrival
        prev = last.get(key)
        if prev is not None and prev > arrival:
            arrival = prev
        last[key] = arrival
        memo = self._overhead
        overhead = memo.get(key)
        if overhead is None:
            overhead = memo[key] = self.delivery.overhead(src_rank, dest)
        clear = now + overhead
        clk[src_rank] = clear
        comm_t = self._comm_t
        comm_t[src_rank] = comm_t[src_rank] + overhead
        sent_n = self._sent_n
        sent_n[src_rank] = sent_n[src_rank] + 1
        sent_b = self._sent_b
        sent_b[src_rank] = sent_b[src_rank] + nbytes
        payload = request.payload
        if type(payload) is np.ndarray:  # copy_payload's common case, inline
            payload = payload.copy()
        elif payload is not None:
            payload = copy_payload(payload)
        self.post_message(
            InFlight(
                dest,
                src_rank,
                request.tag,
                payload,
                nbytes,
                arrival,
                self.seq,
                now,
                None,
            )
        )
        if handle is not None:
            handle.complete_at = clear
            value = handle.handle_id
        else:
            value = None
        seq = self.seq + 1
        self.seq = seq
        if src_rank == self._active and self._fast is None:
            self._fast = (clear, seq, src_rank, value)
        else:
            heapq.heappush(self._heap, (clear, seq, src_rank, value))

    def _handle_send(self, state: RankState, request: SendReq) -> None:
        """Blocking send.  The untraced eager case -- the hottest code
        in the simulator -- is fully fused here: size measurement,
        arrival/overhead memos, FIFO clamp, receiver matching and (when
        the receiver is already blocked on a plain recv) the delivery
        itself, without materialising an :class:`InFlight` at all.
        Every step mirrors :meth:`EagerProtocol.send` +
        :meth:`post_message` + :meth:`complete_receive` exactly, so
        results are float- and event-order-identical."""
        dest = request.dest
        if not 0 <= dest < self._n:
            self._check_dest(state, dest)
        nbytes = request.nbytes
        if nbytes is None:
            payload = request.payload
            if type(payload) is np.ndarray:  # payload_nbytes, common case
                nbytes = payload.nbytes
            elif payload is None:
                nbytes = 0
            else:
                nbytes = payload_nbytes(payload)
        elif nbytes < 0:
            raise CommunicationError(
                f"rank {state.rank} sent negative nbytes {nbytes}"
            )
        if nbytes > self._eager_max:
            self.rendezvous.send(self, state, request, nbytes)
            return
        if self._tracing:
            self.eager.send(self, state, request, nbytes)
            return

        src_rank = state.rank
        clk = self._clk
        now = clk[src_rank]
        key = src_rank * self._n + dest
        ab = self._ab
        if ab is not None:
            fixed = ab._fixed.get(key)
            if fixed is None:
                arrival = ab.arrival(src_rank, dest, nbytes, now)
            else:
                arrival = now + (fixed + nbytes / ab._bw)
        else:
            arrival = self.delivery.arrival(src_rank, dest, nbytes, now)
        last = self._last_arrival
        prev = last.get(key)
        if prev is not None and prev > arrival:
            arrival = prev
        last[key] = arrival
        memo = self._overhead
        overhead = memo.get(key)
        if overhead is None:
            overhead = memo[key] = self.delivery.overhead(src_rank, dest)
        clear = now + overhead
        clk[src_rank] = clear
        comm_t = self._comm_t
        comm_t[src_rank] = comm_t[src_rank] + overhead
        sent_n = self._sent_n
        sent_n[src_rank] = sent_n[src_rank] + 1
        sent_b = self._sent_b
        sent_b[src_rank] = sent_b[src_rank] + nbytes
        payload = request.payload
        if type(payload) is np.ndarray:  # copy_payload's common case
            payload = payload.copy()
        elif payload is not None:
            payload = copy_payload(payload)
        tag = request.tag

        # post_message, fused.
        dst = self.ranks[dest]
        if dst is None:  # first touch of a not-yet-resumed receiver
            dst = self.ranks[dest] = RankState(dest, self.ms)
        matched = None
        if dst.rslots:
            for slot in dst.rslots.values():
                if slot.msg is None:
                    s = slot.source
                    if s == -1 or s == src_rank:
                        t = slot.tag
                        if t == -1 or t == tag:
                            matched = slot
                            break
        if matched is None:
            dst.pending.append(
                InFlight(
                    dest, src_rank, tag, payload, nbytes, arrival,
                    self.seq, now, None,
                )
            )
        elif matched.waiting and dst.anywait is None:
            # complete_receive, fused: the receiver is parked on a
            # plain recv/wait, so the message never needs an InFlight
            # shell -- deliver straight out of locals.
            blocked_since = matched.blocked_since
            completion = arrival if arrival > blocked_since else blocked_since
            comm_t[dest] = comm_t[dest] + (completion - blocked_since)
            recv_n = self._recv_n
            recv_n[dest] = recv_n[dest] + 1
            recv_b = self._recv_b
            recv_b[dest] = recv_b[dest] + nbytes
            hid = matched.handle_id
            dst.rslots.pop(hid, None)
            dst.handles.pop(hid)
            clk[dest] = completion
            self._blk[dest] = False
            seq = self.seq + 1
            self.seq = seq
            # The receiver is never the active rank here (the sender
            # is), so its wakeup always goes through the heap.
            heapq.heappush(
                self._heap,
                (completion, seq, dest, Message(payload, src_rank, tag, arrival)),
            )
        else:
            # irecv slot, or a waitany group: those paths want the full
            # message object (and anywait completion logic).
            matched.msg = InFlight(
                dest, src_rank, tag, payload, nbytes, arrival,
                self.seq, now, None,
            )
            if matched.waiting:
                self.complete_receive(dst, matched)

        seq = self.seq + 1
        self.seq = seq
        if src_rank == self._active and self._fast is None:
            self._fast = (clear, seq, src_rank, None)
        else:
            heapq.heappush(self._heap, (clear, seq, src_rank, None))

    def _handle_isend(self, state: RankState, request: IsendReq) -> None:
        dest = request.dest
        if not 0 <= dest < self._n:
            self._check_dest(state, dest)
        nbytes = request.nbytes
        if nbytes is None:
            nbytes = payload_nbytes(request.payload)
        elif nbytes < 0:
            raise CommunicationError(
                f"rank {state.rank} sent negative nbytes {nbytes}"
            )
        hid = state._next_handle
        state._next_handle = hid + 1
        handle = SendHandle(handle_id=hid, dest=dest, tag=request.tag, nbytes=nbytes)
        state.handles[hid] = handle
        if nbytes > self._eager_max:
            self.rendezvous.send(self, state, request, nbytes, handle)
        elif self._tracing:
            self.eager.send(self, state, request, nbytes, handle)
        else:
            self._eager_send_fast(state, request, nbytes, handle)

    def _handle_recv(self, state: RankState, request) -> None:
        source = request.source
        if source != -1 and not 0 <= source < self._n:
            raise CommunicationError(
                f"rank {state.rank} receives from invalid rank {source}"
            )
        now = self._clk[state.rank]
        # post_receive, inlined (this is its only engine-internal call
        # site; the method remains the outward-facing entry point).
        hid = state._next_handle
        state._next_handle = hid + 1
        slot = ReceiveSlot(hid, source, request.tag)
        if state.pending or state.parked:
            for protocol in self.protocols:
                if protocol.match_posted_receive(self, state, slot):
                    break
        state.handles[hid] = slot
        state.rslots[hid] = slot
        if request.__class__ is IrecvReq:
            # Posting is free; resume immediately with the handle.
            self.schedule(now, state.rank, hid)
        elif slot.msg is not None:
            slot.waiting = True
            slot.blocked_since = now
            self.complete_receive(state, slot)
        else:
            slot.waiting = True
            slot.blocked_since = now
            self._blk[state.rank] = True  # a future send wakes us

    def _handle_wait(self, state: RankState, request: WaitReq) -> None:
        handle = state.require_handle(request.handle)
        if handle.waiting:
            raise CommunicationError(
                f"rank {state.rank} waits twice on handle {request.handle}"
            )
        handle.waiting = True
        handle.blocked_since = self._clk[state.rank]
        if handle.ready:
            if isinstance(handle, ReceiveSlot):
                self.complete_receive(state, handle)
            else:
                self.complete_send(state, handle)
        else:
            self._blk[state.rank] = True

    def _handle_waitany(self, state: RankState, request: WaitanyReq) -> None:
        now = self._clk[state.rank]
        handles = [state.require_handle(hid) for hid in request.handles]
        for handle in handles:
            if handle.waiting:
                raise CommunicationError(
                    f"rank {state.rank} waits twice on handle {handle.handle_id} "
                    "(duplicate in waitany or concurrent wait)"
                )
            handle.waiting = True
            handle.blocked_since = now
        state.anywait = list(request.handles)
        ready = [
            (handle.completion_time(now), i)
            for i, handle in enumerate(handles)
            if handle.ready
        ]
        if ready:
            _, index = min(ready)
            self._complete_anywait(state, request.handles[index])
        else:
            self._blk[state.rank] = True

    def _check_dest(self, state: RankState, dest: int) -> None:
        if not 0 <= dest < len(self.ranks):
            raise CommunicationError(
                f"rank {state.rank} sent to invalid rank {dest} "
                f"(size {len(self.ranks)})"
            )

    # -- failure and deadlock -----------------------------------------------

    def _fail_rank(self, src: int, time: float) -> None:
        state = self.ranks[src]
        if state is None:
            # Killed before anything ever touched it: no queues exist
            # anywhere that could reference this rank (it never sent,
            # parked, or received), so record the death on the columns
            # alone and leave the slot unmaterialized.
            ms = self.ms
            ms.failed[src] = True
            ms.finished[src] = True
            ms.finish_time[src] = time
            if time > ms.clock.item(src):
                ms.clock[src] = time
            return
        state.fail(time)
        # A dead node's parked rendezvous sends never start.  Only
        # rebuild queues that actually hold a send from the dead rank;
        # on a 512-rank machine almost every parked queue is empty or
        # unrelated to the failure.
        for other in self.ranks:
            if other is None:
                continue  # never touched: nothing parked there
            parked = other.parked
            if parked and any(ps.source == src for ps in parked):
                other.parked = [ps for ps in parked if ps.source != src]
        # Drop the dead sender's FIFO-clamp entries the same way:
        # indexed by source, not by scanning every pair in the table.
        # (Nothing will ever query these again -- a dead rank sends no
        # further messages -- so this is purely memory hygiene.)  An
        # empty memo -- the usual startup-failure case on a large
        # machine -- skips the O(n) key sweep outright.
        last = self._last_arrival
        if last:
            base = src * self._n
            for key in range(base, base + self._n):
                last.pop(key, None)

    def _wait_graph(self, failed_ranks: List[int]) -> WaitForGraph:
        """The wait-for graph over the still-blocked ranks (see
        :mod:`repro.simmpi.waitgraph`)."""
        return build_wait_graph(self.ranks, failed_ranks)

    def _deadlock_detail(self, failed_ranks: List[int]) -> str:
        return self._wait_graph(failed_ranks).describe()

    # -- main loop -----------------------------------------------------------

    def execute(self, program: Callable, args: tuple, kwargs: dict) -> SimResult:
        setup_t0 = perf_counter()
        engine = self.engine
        p = engine.n_ranks
        certificate = engine.certificate
        if certificate is not None:
            if not certificate.matches(program, p):
                raise ConfigurationError(
                    f"macro certificate for {certificate.program!r} "
                    f"(n_ranks={certificate.n_ranks}) does not match this "
                    f"run: program source or rank count changed since "
                    "certification -- re-run certify_macro()"
                )
            if self._macro_enabled:
                self._cert_pure = True
                self._cert_uniform = certificate.uniform_exchange
        # Bring-up is O(1) in the rank count: one lazy view of the
        # seed's spawn children and one lazy communicator table.  A
        # rank's Comm / rng / generator frame materializes the first
        # time that rank is resumed (Engine(lazy=False) rebuilds the
        # eager bring-up below for A/B tests).
        self.streams = RankStreams(engine.seed, p)
        table = CommTable(p, self.machine, self.streams)
        table.tracing = self.tracer.enabled
        table.macro = self._macro_enabled
        self.comms = table
        self._program = program
        self._args = args
        self._kwargs = kwargs
        if engine.closed_form:
            if not self._macro_enabled:
                raise ConfigurationError(
                    "closed_form run with macro-ops disabled: the "
                    "delivery model must be plain alpha-beta"
                )
            return self._execute_closed_form(setup_t0)
        if not engine.lazy:
            self.ranks = [RankState(r, self.ms) for r in range(p)]
            table.materialize_all()
            for rank in range(p):
                self._materialize_frame(rank)
        resumes = self.resumes

        returns: List[Any] = [None] * p
        failed_ranks: List[int] = []

        # Every rank starts at t=0.  The eager loop pushed p events
        # (0.0, seq 1..p, rank, None) here; those entries sort before
        # anything else that can exist while they are pending (heap
        # seqs start past p and no event lands before t=0), so the main
        # loop below delivers them in rank order from a bare counter --
        # "virtual starts" -- without building p tuples.  Reserving
        # seqs 1..p keeps every later sequence number, and therefore
        # the processed event order, bit-identical to the eager loop.
        self.seq = p
        for rank, when in engine.fail_at.items():
            self.schedule(when, rank, _FAIL)

        # Exact-type dispatch, bound per run so the inner loop calls
        # the handler without a second method lookup.
        handlers: Dict[type, Callable] = {
            ComputeReq: self._handle_compute,
            SendReq: self._handle_send,
            IsendReq: self._handle_isend,
            RecvReq: self._handle_recv,
            IrecvReq: self._handle_recv,
            WaitReq: self._handle_wait,
            WaitanyReq: self._handle_waitany,
            CollectiveReq: self._handle_collective,
        }
        handler_for = handlers.get
        # The three request types below cover essentially every event
        # of a typical run; exact-type pointer compares beat the dict
        # probe for them, and everything else falls through to it.
        handle_send = self._handle_send
        handle_recv = self._handle_recv
        handle_compute = self._handle_compute

        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        ranks = self.ranks
        tracer = self.tracer
        tracing = tracer.enabled
        max_events = engine.max_events
        fast_enabled = self._fast_enabled
        # Bound column accessors: the loop reads lifecycle flags and
        # clocks per popped event through the memoryviews, which hand
        # back plain Python numbers (no numpy scalars leak into heap
        # tuples).
        clk = self._clk
        fin = self._fin
        fld = self._fld
        idle_t = self._idle_t
        fin_t = self._fin_t

        events = 0
        alive = p
        #: Virtual start events not yet delivered (see the seq note in
        #: the setup above); rank ``p - starts`` starts next.
        starts = p
        setup_wall = perf_counter() - setup_t0
        loop_t0 = perf_counter()
        # The loop allocates heavily (event tuples, in-flight messages,
        # resume values) but creates no reference cycles of its own, so
        # the cyclic collector's periodic scans are pure overhead --
        # pause it for the run and let the deferred collection happen
        # once at the end.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while True:
                if starts:
                    # Pending virtual starts always beat the heap head
                    # (smaller seq at t=0.0): deliver in rank order.
                    rank = p - starts
                    starts -= 1
                    time = 0.0
                    value = None
                elif heap:
                    time, _, rank, value = heappop(heap)
                else:
                    break
                if fld[rank]:
                    continue  # events for a dead node are dropped
                if value is _FAIL:
                    if fin[rank]:
                        continue  # died after finishing: no effect
                    failed_ranks.append(rank)
                    self._fail_rank(rank, time)
                    alive -= 1
                    continue
                if fin[rank]:
                    raise SimulationError(f"finished rank {rank} rescheduled")
                state = ranks[rank]
                if state is None:  # lazy bring-up: first resume
                    state = ranks[rank] = RankState(rank, self.ms)

                # Run-until-block: drive this rank's generator directly
                # for as long as each handler's only scheduling action
                # resumes this same rank AND that resume is due strictly
                # before the heap head (on a tie the heap entry's older
                # seq wins, so it must go through the heap).  Cross-rank
                # wakeups always go through the heap; event order is
                # bit-identical to the one-event-per-heap-pop loop.
                resume = resumes[rank]
                if resume is None:  # lazy bring-up: first resume
                    resume = self._materialize_frame(rank)
                if fast_enabled:
                    self._active = rank
                while True:
                    now = clk[rank]
                    if time > now:
                        # Unattributed gap: an event landed past the
                        # rank's clock.  Explicit so per-rank spans tile
                        # [0, finish] and compute + comm + idle == finish.
                        idle_t[rank] = idle_t[rank] + (time - now)
                        if tracing:
                            tracer.span(rank, IDLE, now, time)
                        clk[rank] = time

                    try:
                        request = resume(value)
                    except StopIteration as stop:
                        returns[rank] = stop.value
                        fin[rank] = True
                        fin_t[rank] = clk[rank]
                        alive -= 1
                        break

                    events += 1
                    if events > max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            "likely an unbounded loop in a rank program"
                        )

                    cls = request.__class__
                    if cls is SendReq:
                        handle_send(state, request)
                    elif cls is RecvReq:
                        handle_recv(state, request)
                    elif cls is ComputeReq:
                        handle_compute(state, request)
                    else:
                        handler = handler_for(cls)
                        if handler is None:
                            raise CommunicationError(
                                f"rank {rank} yielded unsupported request {request!r}"
                            )
                        handler(state, request)

                    fast = self._fast
                    if fast is None:
                        break  # blocked, or resumed via the heap
                    self._fast = None
                    if starts or (heap and fast >= heap[0]):
                        # An older event wins -- earlier time, or the
                        # same time with a smaller sequence number (the
                        # tuples compare (time, seq) exactly as the heap
                        # would).  A pending virtual start always wins:
                        # it sorts as (0.0, seq <= p) and every buffered
                        # fast event carries a seq past p.
                        heappush(heap, fast)
                        break
                    time = fast[0]
                    value = fast[3]
                self._active = -1
        finally:
            if gc_was_enabled:
                gc.enable()

        if alive > 0:
            graph = self._wait_graph(failed_ranks)
            raise DeadlockError(
                f"{alive} rank(s) blocked with no matching sends: "
                f"{graph.describe()}",
                wait_for=graph.wait_for(),
                cycle=graph.find_cycle(),
                failed_ranks=sorted(failed_ranks),
            )

        # Finalization: the columnar route materialises stats and the
        # makespan with whole-array operations; the per-rank route
        # walks the views (bit-identical values, asserted in tests).
        if self._columnar:
            stats = self.ms.finalize_stats()
            makespan = self.ms.makespan()
        else:
            # Every live rank materialized at its start; failed-early
            # slots read their stats straight off the columns.
            stats = [
                st.stats.snapshot() if st is not None
                else RankStatsView(self.ms, r).snapshot()
                for r, st in enumerate(ranks)
            ]
            makespan = max(clk[r] for r in range(p)) if p else 0.0

        return SimResult(
            returns=returns,
            time=makespan,
            stats=stats,
            tracer=self.tracer,
            failed_ranks=sorted(failed_ranks),
            events=events,
            macro_fallbacks=self._fallbacks,
            setup_wall_s=setup_wall,
            execute_wall_s=perf_counter() - loop_t0,
            ranks_materialized=self.comms.materialized,
        )

    # -- closed-form ghost replay --------------------------------------------

    def _execute_closed_form(self, setup_t0: float) -> SimResult:
        """Drive rank 0's generator only; price every other rank through
        the columns and the macro evaluator ("ghost replay").

        The certificate proves the program is pure collective/compute
        (no point-to-point, every collective macro-eligible); the
        caller asserts the program is additionally *rank-symmetric* --
        every rank yields the same request sequence with payloads of
        identical wire size.  Under those conditions a compute burst is
        one vectorized column charge (the same IEEE additions the
        per-rank handler would make), and a collective's entry clocks
        are exactly the clocks the previous macro commit left in the
        columns, so makespans and per-rank stats are bit-identical to
        the event path (asserted in the A/B suite).  Received payloads
        are synthesized from rank 0's (sizes are what price the run),
        and only rank 0's return value is observable.  p-1 ranks never
        materialize a Comm, rng, RankState, or generator frame.
        """
        engine = self.engine
        p = engine.n_ranks
        ms = self.ms
        gen = self._program(self.comms[0], *self._args, **self._kwargs)
        if not hasattr(gen, "send") or not hasattr(gen, "throw"):
            raise SimulationError(
                "rank program must be a generator function "
                "(write communication as 'yield from comm....')"
            )
        send = gen.send
        members = self.world_members()
        evaluate = _macro_evaluate
        max_events = engine.max_events
        events = 0
        value: Any = None
        r0: Any = None
        setup_wall = perf_counter() - setup_t0
        loop_t0 = perf_counter()
        while True:
            try:
                request = send(value)
            except StopIteration as stop:
                r0 = stop.value
                break
            events += 1
            if events > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; "
                    "likely an unbounded loop in a rank program"
                )
            cls = request.__class__
            if cls is ComputeReq:
                if request.seconds is not None:
                    dt = request.seconds
                elif request.efficiency is None:
                    flops = request.flops
                    if flops < 0:
                        self.machine.compute_time(flops)  # raises
                    dt = flops / self._flops_denom
                else:
                    dt = self.machine.compute_time(
                        request.flops, request.efficiency
                    )
                ms.clock += dt
                ms.compute_time += dt
                value = None
            elif cls is CollectiveReq:
                if request.members is not None:
                    raise SimulationError(
                        "closed-form run yielded a group collective; only "
                        "world collectives are rank-symmetric -- run this "
                        "program without closed_form"
                    )
                # No evaluator reads the per-member request beyond its
                # op/value/algorithm fields, which are identical across
                # a symmetric invocation: one shared request prices all
                # p members without synthesizing p objects, and ghost
                # mode assembles only rank 0's observable result.
                result = evaluate(
                    self, members, [request] * p, ms.clock, ghost=True
                )
                if result is None:
                    raise SimulationError(
                        f"collective {request.kind}/{request.algorithm} is "
                        "not analytically exact here (rendezvous inside a "
                        "cyclic pattern, or an unsupported schedule) -- run "
                        "without closed_form"
                    )
                value = result[1][0]
            else:
                raise SimulationError(
                    f"closed-form run yielded {request!r}; only compute and "
                    "world collectives are certifiable -- run without "
                    "closed_form"
                )
        ms.finished[:] = True
        np.copyto(ms.finish_time, ms.clock)
        returns: List[Any] = [None] * p
        returns[0] = r0
        return SimResult(
            returns=returns,
            time=ms.makespan(),
            # Column-backed lazy sequence: a 10^6-rank result should not
            # pay for a million RankStats objects nobody may read.
            stats=ms.lazy_stats(),
            tracer=self.tracer,
            events=events,
            macro_fallbacks=self._fallbacks,
            setup_wall_s=setup_wall,
            execute_wall_s=perf_counter() - loop_t0,
            ranks_materialized=self.comms.materialized,
        )


def run_program(
    machine: Machine,
    n_ranks: int,
    program: Callable,
    *args: Any,
    seed: int = 0,
    trace: bool = False,
    eager_threshold_bytes: float = float("inf"),
    delivery: Union[str, DeliveryModel] = "alphabeta",
    macro_ops: bool = True,
    columnar: bool = True,
    certificate: Optional[Any] = None,
    **kwargs: Any,
) -> SimResult:
    """One-shot convenience wrapper around :class:`Engine`."""
    return Engine(
        machine,
        n_ranks,
        seed=seed,
        trace=trace,
        eager_threshold_bytes=eager_threshold_bytes,
        delivery=delivery,
        macro_ops=macro_ops,
        columnar=columnar,
        certificate=certificate,
    ).run(program, *args, **kwargs)
