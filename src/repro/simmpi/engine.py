"""Discrete-event engine executing rank programs on a machine model.

A *rank program* is a generator function ``program(comm, *args)`` that
yields primitive requests (:mod:`repro.simmpi.requests`).  The engine
runs one generator per rank, keeps a virtual clock per rank, and
interprets requests against the machine's cost model:

* ``ComputeReq`` advances the rank's clock by the modelled compute time.
* ``SendReq`` charges the sender the link startup latency (the CPU is
  busy in the message layer), then places the message in flight; it
  becomes available at the destination after the delivery model's
  routed delay.  Small sends are eager/buffered and never block; sends
  above the eager threshold use the rendezvous protocol and block until
  the matching receive is posted.
* ``IsendReq`` is the non-blocking send: eager isends complete at post;
  rendezvous isends park only the *transfer* while the sender keeps
  running, and synchronise through their handle.
* ``RecvReq`` blocks the rank until a matching message's arrival time.
* ``IrecvReq``/``WaitReq``/``WaitanyReq`` split receives (and isends)
  into post and completion, allowing communication/computation overlap
  exactly as MPI's ``MPI_Irecv``/``MPI_Wait``/``MPI_Waitany`` do.

Receive matching follows MPI: posted receives match in post order; per
source-destination pair, delivery is FIFO (wormhole channels do not
reorder), enforced by clamping arrival times to be monotone per pair.
``ANY_SOURCE`` receives resolve deterministically in message post
order, a legal refinement of MPI's nondeterminism.

The engine itself is a thin event loop over three swappable layers:

* :class:`~repro.simmpi.state.RankState` -- per-rank clocks, queues,
  and the unified request-handle table;
* :class:`~repro.simmpi.protocol.Protocol` -- eager and rendezvous
  matching strategies, selected per message by size;
* :class:`~repro.simmpi.delivery.DeliveryModel` -- wire-time charging;
  ``"alphabeta"`` charges messages independently, ``"contention"``
  serialises transfers on shared-link occupancy along
  ``topology.route()`` paths.

Numerics are real: payloads are actual NumPy arrays and the algorithms
running on the engine produce bit-identical results to their serial
references -- virtual time is accounted on the side.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.machine.machine import Machine
from repro.simmpi.comm import Comm
from repro.simmpi.delivery import DeliveryModel, resolve_delivery
from repro.simmpi.protocol import EagerProtocol, Protocol, RendezvousProtocol
from repro.simmpi.requests import (
    ComputeReq,
    InFlight,
    IrecvReq,
    IsendReq,
    Message,
    RecvReq,
    SendReq,
    WaitanyReq,
    WaitReq,
)
from repro.simmpi.state import RankState, ReceiveSlot, SendHandle
from repro.simmpi.trace import (
    COMPUTE,
    IDLE,
    RECV_WAIT,
    SEND_WAIT,
    MessageRecord,
    RankStats,
    Tracer,
)
from repro.simmpi.waitgraph import WaitForGraph, build_wait_graph
from repro.util.errors import (
    CommunicationError,
    ConfigurationError,
    DeadlockError,
    SimulationError,
)
from repro.util.rng import spawn


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    #: Per-rank generator return values.
    returns: List[Any]
    #: Virtual makespan: the latest rank finish time, seconds.
    time: float
    #: Per-rank accounting.
    stats: List[RankStats]
    #: Message log (populated only when tracing was enabled).
    tracer: Tracer = field(default_factory=Tracer)
    #: Ranks killed by fault injection (empty in normal runs).
    failed_ranks: List[int] = field(default_factory=list)

    @property
    def n_ranks(self) -> int:
        return len(self.stats)

    @property
    def total_messages(self) -> int:
        return sum(s.messages_sent for s in self.stats)

    @property
    def total_bytes(self) -> float:
        return sum(s.bytes_sent for s in self.stats)

    @property
    def total_compute_time(self) -> float:
        return sum(s.compute_time for s in self.stats)

    @property
    def total_comm_time(self) -> float:
        return sum(s.comm_time for s in self.stats)

    def parallel_efficiency(self, serial_time: float) -> float:
        """Speedup over ``serial_time`` divided by rank count."""
        if self.time <= 0:
            return 1.0
        return (serial_time / self.time) / self.n_ranks


class Engine:
    """Runs rank programs over a :class:`~repro.machine.machine.Machine`.

    Parameters
    ----------
    machine:
        Cost model supplier.  Ranks map one-to-one onto machine nodes.
    n_ranks:
        Number of ranks; defaults to every node of the machine.
    rank_map:
        Optional rank -> node placement (default identity).  Placement
        changes hop counts, hence communication time.
    seed:
        Master seed; each rank receives an independent child stream.
    trace:
        Record every message (memory-bounded) for analysis.
    max_events:
        Safety valve: abort with :class:`SimulationError` after this
        many processed requests (default 50 million).
    fail_at:
        Fault injection: rank -> virtual time at which that node dies.
        A dead rank stops executing; its in-flight messages still
        deliver (they were on the wire), but nothing further is sent.
        Survivors blocked on it surface as a :class:`DeadlockError`
        naming the failure; survivors that never needed it complete
        normally and the failure is reported in
        :attr:`SimResult.failed_ranks`.
    eager_threshold_bytes:
        Messages up to this size use the eager/buffered protocol
        (default: everything).  Larger sends use **rendezvous**: the
        sender blocks until the receiver posts a matching receive, then
        the transfer starts.  This reproduces real MPI semantics --
        including the classic symmetric-blocking-send deadlock -- and
        enables the eager-vs-rendezvous ablation.
    delivery:
        Wire-time model: ``"alphabeta"`` (independent per-message
        charging, the default), ``"contention"`` (transfers serialise
        on shared-link occupancy along routed paths), or any
        :class:`~repro.simmpi.delivery.DeliveryModel` instance.
    """

    def __init__(
        self,
        machine: Machine,
        n_ranks: Optional[int] = None,
        *,
        rank_map: Optional[Sequence[int]] = None,
        seed: int = 0,
        trace: bool = False,
        max_events: int = 50_000_000,
        fail_at: Optional[Dict[int, float]] = None,
        eager_threshold_bytes: float = float("inf"),
        delivery: Union[str, DeliveryModel] = "alphabeta",
    ):
        self.machine = machine
        self.n_ranks = machine.n_nodes if n_ranks is None else n_ranks
        if not 1 <= self.n_ranks <= machine.n_nodes:
            raise ConfigurationError(
                f"n_ranks {self.n_ranks} not in [1, {machine.n_nodes}]"
            )
        if rank_map is None:
            self.rank_map = list(range(self.n_ranks))
        else:
            self.rank_map = list(rank_map)
            if len(self.rank_map) != self.n_ranks:
                raise ConfigurationError(
                    f"rank_map has {len(self.rank_map)} entries for {self.n_ranks} ranks"
                )
            if len(set(self.rank_map)) != self.n_ranks:
                raise ConfigurationError("rank_map must place each rank on a distinct node")
            for node in self.rank_map:
                machine.topology.check_node(node)
        self.seed = seed
        self.trace = trace
        self.max_events = max_events
        if eager_threshold_bytes < 0:
            raise ConfigurationError(
                f"eager threshold must be >= 0, got {eager_threshold_bytes}"
            )
        self.eager_threshold_bytes = eager_threshold_bytes
        self.delivery = resolve_delivery(delivery)
        self.fail_at = dict(fail_at) if fail_at else {}
        for rank, when in self.fail_at.items():
            if not 0 <= rank < self.n_ranks:
                raise ConfigurationError(
                    f"fail_at rank {rank} outside [0, {self.n_ranks})"
                )
            if when < 0:
                raise ConfigurationError(
                    f"fail_at time must be >= 0, got {when} for rank {rank}"
                )

    def run(self, program: Callable, *args: Any, **kwargs: Any) -> SimResult:
        """Execute ``program(comm, *args, **kwargs)`` on every rank.

        Returns a :class:`SimResult`; rank return values appear in
        ``result.returns`` in rank order.
        """
        return _Run(self).execute(program, args, kwargs)


#: Fault-injection sentinel circulated through the event heap.
_FAIL = object()


class _Run:
    """One execution: the event loop plus the context protocols and
    delivery models operate through."""

    def __init__(self, engine: Engine):
        self.engine = engine
        self.machine = engine.machine
        self.tracer = Tracer(enabled=engine.trace)
        self.delivery = engine.delivery
        self.delivery.bind(self.machine, engine.rank_map)
        self.eager: Protocol = EagerProtocol()
        self.rendezvous: Protocol = RendezvousProtocol()
        #: Receive-post matching order: eager queue first, then parked
        #: rendezvous senders (the seed engine's semantics).
        self.protocols = (self.eager, self.rendezvous)
        self.ranks = [
            RankState(rank=r, stats=RankStats(rank=r))
            for r in range(engine.n_ranks)
        ]
        # FIFO clamp: latest arrival so far per (src, dst).
        self._last_arrival: Dict[tuple, float] = {}
        self.seq = 0  # global tiebreaker / message post order
        self._heap: List[tuple] = []  # (time, seq, rank, resume_value)
        #: Rank-side communicators (set in execute); consulted for the
        #: active phase label when recording spans.
        self.comms: List[Comm] = []
        # Hop-count memo for the uncontended alpha-beta reference used
        # to split wire time from contention stall (tracing only).
        self._ab_hops: Dict[tuple, int] = {}

    # -- tracing helpers ----------------------------------------------------

    def phase(self, rank: int) -> Optional[str]:
        """Current phase label of ``rank`` (tracing only)."""
        return self.comms[rank].current_phase()

    def alphabeta_arrival(
        self, src_rank: int, dst_rank: int, nbytes: float, start: float
    ) -> float:
        """Uncontended alpha-beta arrival time: the lower bound any
        delivery model degenerates to on an idle network.  Used when
        tracing to classify wire-time excess as contention stall."""
        key = (src_rank, dst_rank)
        hops = self._ab_hops.get(key)
        if hops is None:
            hops = self.machine.topology.hops(
                self.engine.rank_map[src_rank], self.engine.rank_map[dst_rank]
            )
            self._ab_hops[key] = hops
        return start + self.machine.link.message_time(nbytes, hops)

    # -- context interface used by protocols -------------------------------

    def arrival(self, src_rank: int, dst_rank: int, nbytes: float, start: float) -> float:
        """Delivery-model arrival with the per-pair FIFO clamp applied."""
        arrival = self.delivery.arrival(src_rank, dst_rank, nbytes, start)
        key = (src_rank, dst_rank)
        arrival = max(arrival, self._last_arrival.get(key, 0.0))
        self._last_arrival[key] = arrival
        return arrival

    def schedule(self, time: float, rank: int, value: Any) -> None:
        self.seq += 1
        heapq.heappush(self._heap, (time, self.seq, rank, value))

    def post_message(self, msg: InFlight) -> None:
        """Bind an in-flight message to the earliest matching posted
        receive, or queue it."""
        dst = self.ranks[msg.dest]
        for slot in dst.receive_slots():
            if slot.msg is None and slot.matches(msg):
                slot.msg = msg
                if slot.waiting:
                    self.complete_receive(dst, slot)
                return
        dst.pending.append(msg)

    def complete_receive(self, state: RankState, slot: ReceiveSlot) -> None:
        """The blocked rank's slot got its message: deliver."""
        if state.anywait is not None:
            self._complete_anywait(state, slot.handle_id)
            return
        msg = slot.msg
        completion = max(slot.blocked_since, msg.arrival_time)
        self._deliver(state, slot, completion)
        state.clock = completion
        state.blocked = False
        self.schedule(
            completion,
            state.rank,
            Message(msg.payload, msg.source, msg.tag, msg.arrival_time),
        )

    def complete_send(self, state: RankState, handle: SendHandle) -> None:
        """A waited-on isend handle finished (eager: instantly;
        rendezvous: at its handshake)."""
        if state.anywait is not None:
            self._complete_anywait(state, handle.handle_id)
            return
        completion = max(handle.blocked_since, handle.complete_at)
        state.stats.comm_time += completion - handle.blocked_since
        if self.tracer.enabled and completion > handle.blocked_since:
            # The handshake cause is binding only when the remote event
            # (not our own blocking point) determined the completion.
            cause = handle.hs_cause if handle.complete_at > handle.blocked_since else None
            self.tracer.span(
                state.rank,
                SEND_WAIT,
                handle.blocked_since,
                completion,
                name=self.phase(state.rank),
                peer=handle.dest,
                tag=handle.tag,
                nbytes=handle.nbytes,
                cause=cause,
            )
        state.clock = completion
        state.blocked = False
        state.pop_handle(handle.handle_id)
        self.schedule(completion, state.rank, None)

    # -- completion helpers -------------------------------------------------

    def _deliver(self, state: RankState, slot: ReceiveSlot, completion: float) -> None:
        """Account and trace one delivered message; drops the handle."""
        msg = slot.msg
        state.stats.comm_time += completion - slot.blocked_since
        state.stats.messages_received += 1
        state.stats.bytes_received += msg.nbytes
        if self.tracer.enabled and completion > slot.blocked_since:
            # The wire edge is binding only when the arrival (not our
            # own blocking point) determined the completion time.
            cause = msg.wire if msg.arrival_time > slot.blocked_since else None
            self.tracer.span(
                state.rank,
                RECV_WAIT,
                slot.blocked_since,
                completion,
                name=self.phase(state.rank),
                peer=msg.source,
                tag=msg.tag,
                nbytes=msg.nbytes,
                cause=cause,
            )
        state.pop_handle(slot.handle_id)
        self.tracer.record(
            MessageRecord(
                source=msg.source,
                dest=msg.dest,
                tag=msg.tag,
                nbytes=msg.nbytes,
                send_time=msg.send_time,
                arrival_time=msg.arrival_time,
                recv_time=completion,
            )
        )

    def _complete_anywait(self, state: RankState, handle_id: int) -> None:
        """One member of a waitany group became ready: finish the wait."""
        index = state.anywait.index(handle_id)
        handle = state.handles[handle_id]
        for hid in state.anywait:
            other = state.handles.get(hid)
            if other is not None:
                other.waiting = False
        state.anywait = None
        state.blocked = False
        if isinstance(handle, ReceiveSlot):
            msg = handle.msg
            completion = max(handle.blocked_since, msg.arrival_time)
            self._deliver(state, handle, completion)
            value = (index, Message(msg.payload, msg.source, msg.tag, msg.arrival_time))
        else:
            completion = max(handle.blocked_since, handle.complete_at)
            state.stats.comm_time += completion - handle.blocked_since
            if self.tracer.enabled and completion > handle.blocked_since:
                cause = handle.hs_cause if handle.complete_at > handle.blocked_since else None
                self.tracer.span(
                    state.rank,
                    SEND_WAIT,
                    handle.blocked_since,
                    completion,
                    name=self.phase(state.rank),
                    peer=handle.dest,
                    tag=handle.tag,
                    nbytes=handle.nbytes,
                    cause=cause,
                )
            state.pop_handle(handle_id)
            value = (index, None)
        state.clock = completion
        self.schedule(completion, state.rank, value)

    def post_receive(self, state: RankState, source: int, tag: int) -> ReceiveSlot:
        """Post a receive; bind a queued eager message or wake a parked
        rendezvous sender."""
        slot = ReceiveSlot(handle_id=state.new_handle_id(), source=source, tag=tag)
        for protocol in self.protocols:
            if protocol.match_posted_receive(self, state, slot):
                break
        state.add_handle(slot)
        return slot

    # -- request handlers ----------------------------------------------------

    def _handle_compute(self, state: RankState, request: ComputeReq) -> None:
        if request.seconds is not None:
            dt = request.seconds
        else:
            dt = self.machine.compute_time(request.flops, request.efficiency)
        t0 = state.clock
        state.clock += dt
        state.stats.compute_time += dt
        if self.tracer.enabled and dt > 0:
            self.tracer.span(state.rank, COMPUTE, t0, state.clock, name=self.phase(state.rank))
        self.schedule(state.clock, state.rank, None)

    def _protocol_for(self, nbytes: float) -> Protocol:
        if nbytes > self.engine.eager_threshold_bytes:
            return self.rendezvous
        return self.eager

    def _handle_send(self, state: RankState, request: SendReq) -> None:
        self._check_dest(state, request.dest)
        nbytes = request.wire_bytes()
        self._protocol_for(nbytes).send(self, state, request, nbytes)

    def _handle_isend(self, state: RankState, request: IsendReq) -> None:
        self._check_dest(state, request.dest)
        nbytes = request.wire_bytes()
        handle = SendHandle(
            handle_id=state.new_handle_id(),
            dest=request.dest,
            tag=request.tag,
            nbytes=nbytes,
        )
        state.add_handle(handle)
        self._protocol_for(nbytes).send(self, state, request, nbytes, handle)

    def _handle_recv(self, state: RankState, request) -> None:
        if request.source != -1 and not 0 <= request.source < len(self.ranks):
            raise CommunicationError(
                f"rank {state.rank} receives from invalid rank {request.source}"
            )
        now = state.clock
        slot = self.post_receive(state, request.source, request.tag)
        if isinstance(request, IrecvReq):
            # Posting is free; resume immediately with the handle.
            self.schedule(now, state.rank, slot.handle_id)
        elif slot.msg is not None:
            slot.waiting = True
            slot.blocked_since = now
            self.complete_receive(state, slot)
        else:
            slot.waiting = True
            slot.blocked_since = now
            state.blocked = True  # a future send wakes us

    def _handle_wait(self, state: RankState, request: WaitReq) -> None:
        handle = state.require_handle(request.handle)
        if handle.waiting:
            raise CommunicationError(
                f"rank {state.rank} waits twice on handle {request.handle}"
            )
        handle.waiting = True
        handle.blocked_since = state.clock
        if handle.ready:
            if isinstance(handle, ReceiveSlot):
                self.complete_receive(state, handle)
            else:
                self.complete_send(state, handle)
        else:
            state.blocked = True

    def _handle_waitany(self, state: RankState, request: WaitanyReq) -> None:
        now = state.clock
        handles = [state.require_handle(hid) for hid in request.handles]
        for handle in handles:
            if handle.waiting:
                raise CommunicationError(
                    f"rank {state.rank} waits twice on handle {handle.handle_id} "
                    "(duplicate in waitany or concurrent wait)"
                )
            handle.waiting = True
            handle.blocked_since = now
        state.anywait = list(request.handles)
        ready = [
            (handle.completion_time(now), i)
            for i, handle in enumerate(handles)
            if handle.ready
        ]
        if ready:
            _, index = min(ready)
            self._complete_anywait(state, request.handles[index])
        else:
            state.blocked = True

    def _check_dest(self, state: RankState, dest: int) -> None:
        if not 0 <= dest < len(self.ranks):
            raise CommunicationError(
                f"rank {state.rank} sent to invalid rank {dest} "
                f"(size {len(self.ranks)})"
            )

    # -- failure and deadlock -----------------------------------------------

    def _fail_rank(self, state: RankState, time: float) -> None:
        state.fail(time)
        # A dead node's parked rendezvous sends never start.
        for other in self.ranks:
            other.parked = [ps for ps in other.parked if ps.source != state.rank]

    def _wait_graph(self, failed_ranks: List[int]) -> WaitForGraph:
        """The wait-for graph over the still-blocked ranks (see
        :mod:`repro.simmpi.waitgraph`)."""
        return build_wait_graph(self.ranks, failed_ranks)

    def _deadlock_detail(self, failed_ranks: List[int]) -> str:
        return self._wait_graph(failed_ranks).describe()

    # -- main loop -----------------------------------------------------------

    _HANDLERS = {
        ComputeReq: _handle_compute,
        SendReq: _handle_send,
        IsendReq: _handle_isend,
        RecvReq: _handle_recv,
        IrecvReq: _handle_recv,
        WaitReq: _handle_wait,
        WaitanyReq: _handle_waitany,
    }

    def execute(self, program: Callable, args: tuple, kwargs: dict) -> SimResult:
        engine = self.engine
        p = engine.n_ranks
        rngs = spawn(engine.seed, p)
        comms = [Comm(rank, p, self.machine, rngs[rank]) for rank in range(p)]
        if self.tracer.enabled:
            for comm in comms:
                comm._tracing = True
        self.comms = comms
        gens = []
        for rank in range(p):
            gen = program(comms[rank], *args, **kwargs)
            if not hasattr(gen, "send") or not hasattr(gen, "throw"):
                raise SimulationError(
                    "rank program must be a generator function "
                    "(write communication as 'yield from comm....')"
                )
            gens.append(gen)

        returns: List[Any] = [None] * p
        failed_ranks: List[int] = []

        # Kick off every rank at t=0; arm fault-injection sentinels.
        for rank in range(p):
            self.schedule(0.0, rank, None)
        for rank, when in engine.fail_at.items():
            self.schedule(when, rank, _FAIL)

        events = 0
        alive = p
        while self._heap:
            time, _, rank, value = heapq.heappop(self._heap)
            state = self.ranks[rank]
            if state.failed:
                continue  # events for a dead node are dropped
            if value is _FAIL:
                if state.finished:
                    continue  # died after finishing: no effect
                failed_ranks.append(rank)
                self._fail_rank(state, time)
                alive -= 1
                continue
            if state.finished:
                raise SimulationError(f"finished rank {rank} rescheduled")
            if time > state.clock:
                # Unattributed gap: an event landed past the rank's
                # clock.  Explicit so per-rank spans tile [0, finish]
                # and compute + comm + idle == finish_time.
                state.stats.idle_time += time - state.clock
                if self.tracer.enabled:
                    self.tracer.span(rank, IDLE, state.clock, time)
                state.clock = time

            try:
                request = gens[rank].send(value)
            except StopIteration as stop:
                returns[rank] = stop.value
                state.finished = True
                state.stats.finish_time = state.clock
                alive -= 1
                continue

            events += 1
            if events > engine.max_events:
                raise SimulationError(
                    f"exceeded max_events={engine.max_events}; "
                    "likely an unbounded loop in a rank program"
                )

            handler = self._HANDLERS.get(type(request))
            if handler is None:
                raise CommunicationError(
                    f"rank {rank} yielded unsupported request {request!r}"
                )
            handler(self, state, request)

        if alive > 0:
            graph = self._wait_graph(failed_ranks)
            raise DeadlockError(
                f"{alive} rank(s) blocked with no matching sends: "
                f"{graph.describe()}",
                wait_for=graph.wait_for(),
                cycle=graph.find_cycle(),
                failed_ranks=sorted(failed_ranks),
            )

        return SimResult(
            returns=returns,
            time=max(s.clock for s in self.ranks) if self.ranks else 0.0,
            stats=[s.stats for s in self.ranks],
            tracer=self.tracer,
            failed_ranks=sorted(failed_ranks),
        )


def run_program(
    machine: Machine,
    n_ranks: int,
    program: Callable,
    *args: Any,
    seed: int = 0,
    trace: bool = False,
    eager_threshold_bytes: float = float("inf"),
    delivery: Union[str, DeliveryModel] = "alphabeta",
    **kwargs: Any,
) -> SimResult:
    """One-shot convenience wrapper around :class:`Engine`."""
    return Engine(
        machine,
        n_ranks,
        seed=seed,
        trace=trace,
        eager_threshold_bytes=eager_threshold_bytes,
        delivery=delivery,
    ).run(program, *args, **kwargs)
