"""Discrete-event engine executing rank programs on a machine model.

A *rank program* is a generator function ``program(comm, *args)`` that
yields primitive requests (:mod:`repro.simmpi.requests`).  The engine
runs one generator per rank, keeps a virtual clock per rank, and
interprets requests against the machine's cost model:

* ``ComputeReq`` advances the rank's clock by the modelled compute time.
* ``SendReq`` charges the sender the link startup latency (the CPU is
  busy in the message layer), then places the message in flight; it
  becomes available at the destination after the routed alpha-beta
  delay.  Sends are eager/buffered and never block.
* ``RecvReq`` blocks the rank until a matching message's arrival time.
* ``IrecvReq``/``WaitReq`` split the receive into post and completion,
  allowing communication/computation overlap exactly as MPI's
  ``MPI_Irecv``/``MPI_Wait`` do.

Receive matching follows MPI: posted receives match in post order; per
source-destination pair, delivery is FIFO (wormhole channels do not
reorder), enforced by clamping arrival times to be monotone per pair.
``ANY_SOURCE`` receives resolve deterministically in message post
order, a legal refinement of MPI's nondeterminism.

Numerics are real: payloads are actual NumPy arrays and the algorithms
running on the engine produce bit-identical results to their serial
references -- virtual time is accounted on the side.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.machine.machine import Machine
from repro.simmpi.comm import Comm
from repro.simmpi.requests import (
    ComputeReq,
    InFlight,
    IrecvReq,
    Message,
    RecvReq,
    SendReq,
    WaitReq,
    copy_payload,
)
from repro.simmpi.trace import MessageRecord, RankStats, Tracer
from repro.util.errors import (
    CommunicationError,
    ConfigurationError,
    DeadlockError,
    SimulationError,
)
from repro.util.rng import spawn


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    #: Per-rank generator return values.
    returns: List[Any]
    #: Virtual makespan: the latest rank finish time, seconds.
    time: float
    #: Per-rank accounting.
    stats: List[RankStats]
    #: Message log (populated only when tracing was enabled).
    tracer: Tracer = field(default_factory=Tracer)
    #: Ranks killed by fault injection (empty in normal runs).
    failed_ranks: List[int] = field(default_factory=list)

    @property
    def n_ranks(self) -> int:
        return len(self.stats)

    @property
    def total_messages(self) -> int:
        return sum(s.messages_sent for s in self.stats)

    @property
    def total_bytes(self) -> float:
        return sum(s.bytes_sent for s in self.stats)

    @property
    def total_compute_time(self) -> float:
        return sum(s.compute_time for s in self.stats)

    @property
    def total_comm_time(self) -> float:
        return sum(s.comm_time for s in self.stats)

    def parallel_efficiency(self, serial_time: float) -> float:
        """Speedup over ``serial_time`` divided by rank count."""
        if self.time <= 0:
            return 1.0
        return (serial_time / self.time) / self.n_ranks


@dataclass
class _ParkedSend:
    """A rendezvous send waiting for its matching receive to be posted."""

    source: int
    dest: int
    tag: int
    payload: Any
    nbytes: float
    seq: int
    park_time: float


@dataclass
class _Slot:
    """One outstanding posted receive."""

    slot_id: int
    source: int
    tag: int
    msg: Optional[InFlight] = None
    #: True while the owning rank is blocked in a wait on this slot.
    waiting: bool = False
    blocked_since: float = 0.0

    def matches(self, msg: InFlight) -> bool:
        if self.source != -1 and self.source != msg.source:
            return False
        if self.tag != -1 and self.tag != msg.tag:
            return False
        return True


class Engine:
    """Runs rank programs over a :class:`~repro.machine.machine.Machine`.

    Parameters
    ----------
    machine:
        Cost model supplier.  Ranks map one-to-one onto machine nodes.
    n_ranks:
        Number of ranks; defaults to every node of the machine.
    rank_map:
        Optional rank -> node placement (default identity).  Placement
        changes hop counts, hence communication time.
    seed:
        Master seed; each rank receives an independent child stream.
    trace:
        Record every message (memory-bounded) for analysis.
    max_events:
        Safety valve: abort with :class:`SimulationError` after this
        many processed requests (default 50 million).
    fail_at:
        Fault injection: rank -> virtual time at which that node dies.
        A dead rank stops executing; its in-flight messages still
        deliver (they were on the wire), but nothing further is sent.
        Survivors blocked on it surface as a :class:`DeadlockError`
        naming the failure; survivors that never needed it complete
        normally and the failure is reported in
        :attr:`SimResult.failed_ranks`.
    eager_threshold_bytes:
        Messages up to this size use the eager/buffered protocol
        (default: everything).  Larger sends use **rendezvous**: the
        sender blocks until the receiver posts a matching receive, then
        the transfer starts.  This reproduces real MPI semantics --
        including the classic symmetric-blocking-send deadlock -- and
        enables the eager-vs-rendezvous ablation.
    """

    def __init__(
        self,
        machine: Machine,
        n_ranks: Optional[int] = None,
        *,
        rank_map: Optional[Sequence[int]] = None,
        seed: int = 0,
        trace: bool = False,
        max_events: int = 50_000_000,
        fail_at: Optional[Dict[int, float]] = None,
        eager_threshold_bytes: float = float("inf"),
    ):
        self.machine = machine
        self.n_ranks = machine.n_nodes if n_ranks is None else n_ranks
        if not 1 <= self.n_ranks <= machine.n_nodes:
            raise ConfigurationError(
                f"n_ranks {self.n_ranks} not in [1, {machine.n_nodes}]"
            )
        if rank_map is None:
            self.rank_map = list(range(self.n_ranks))
        else:
            self.rank_map = list(rank_map)
            if len(self.rank_map) != self.n_ranks:
                raise ConfigurationError(
                    f"rank_map has {len(self.rank_map)} entries for {self.n_ranks} ranks"
                )
            if len(set(self.rank_map)) != self.n_ranks:
                raise ConfigurationError("rank_map must place each rank on a distinct node")
            for node in self.rank_map:
                machine.topology.check_node(node)
        self.seed = seed
        self.trace = trace
        self.max_events = max_events
        if eager_threshold_bytes < 0:
            raise ConfigurationError(
                f"eager threshold must be >= 0, got {eager_threshold_bytes}"
            )
        self.eager_threshold_bytes = eager_threshold_bytes
        self.fail_at = dict(fail_at) if fail_at else {}
        for rank, when in self.fail_at.items():
            if not 0 <= rank < self.n_ranks:
                raise ConfigurationError(
                    f"fail_at rank {rank} outside [0, {self.n_ranks})"
                )
            if when < 0:
                raise ConfigurationError(
                    f"fail_at time must be >= 0, got {when} for rank {rank}"
                )
        # Hop counts between mapped ranks are looked up constantly; memoise.
        self._hops_cache: Dict[tuple, int] = {}

    # -- cost helpers ------------------------------------------------------

    def _hops(self, src_rank: int, dst_rank: int) -> int:
        key = (src_rank, dst_rank)
        cached = self._hops_cache.get(key)
        if cached is None:
            cached = self.machine.topology.hops(
                self.rank_map[src_rank], self.rank_map[dst_rank]
            )
            self._hops_cache[key] = cached
        return cached

    # -- main loop -----------------------------------------------------------

    def run(self, program: Callable, *args: Any, **kwargs: Any) -> SimResult:
        """Execute ``program(comm, *args, **kwargs)`` on every rank.

        Returns a :class:`SimResult`; rank return values appear in
        ``result.returns`` in rank order.
        """
        p = self.n_ranks
        rngs = spawn(self.seed, p)
        comms = [Comm(rank, p, self.machine, rngs[rank]) for rank in range(p)]
        gens = []
        for rank in range(p):
            gen = program(comms[rank], *args, **kwargs)
            if not hasattr(gen, "send") or not hasattr(gen, "throw"):
                raise SimulationError(
                    "rank program must be a generator function "
                    "(write communication as 'yield from comm....')"
                )
            gens.append(gen)

        clocks = [0.0] * p
        stats = [RankStats(rank=r) for r in range(p)]
        returns: List[Any] = [None] * p
        tracer = Tracer(enabled=self.trace)

        # Unmatched messages per destination, in post (seq) order.
        pending: List[List[InFlight]] = [[] for _ in range(p)]
        # Rendezvous senders parked per destination, in post order.
        parked: List[List[_ParkedSend]] = [[] for _ in range(p)]
        # Outstanding posted receives per rank, in post order.
        slots: List[List[_Slot]] = [[] for _ in range(p)]
        finished = [False] * p
        blocked = [False] * p  # rank is inside a blocking wait
        next_slot_id = [0] * p
        # FIFO clamp: latest arrival so far per (src, dst).
        last_arrival: Dict[tuple, float] = {}

        seq = 0  # global tiebreaker / message post order
        ready: List[tuple] = []  # (time, seq, rank, resume_value)

        def schedule(time: float, rank: int, value: Any) -> None:
            nonlocal seq
            seq += 1
            heapq.heappush(ready, (time, seq, rank, value))

        def complete_wait(rank: int, slot: _Slot) -> None:
            """The blocked rank's slot got its message: deliver."""
            msg = slot.msg
            completion = max(slot.blocked_since, msg.arrival_time)
            stats[rank].comm_time += completion - slot.blocked_since
            stats[rank].messages_received += 1
            stats[rank].bytes_received += msg.nbytes
            clocks[rank] = completion
            blocked[rank] = False
            slots[rank].remove(slot)
            tracer.record(
                MessageRecord(
                    source=msg.source,
                    dest=msg.dest,
                    tag=msg.tag,
                    nbytes=msg.nbytes,
                    send_time=msg.arrival_time,
                    arrival_time=msg.arrival_time,
                    recv_time=completion,
                )
            )
            schedule(
                completion,
                rank,
                Message(msg.payload, msg.source, msg.tag, msg.arrival_time),
            )

        def post_message(msg: InFlight) -> None:
            """Bind an in-flight message to the earliest matching posted
            receive, or queue it."""
            dst = msg.dest
            for slot in slots[dst]:
                if slot.msg is None and slot.matches(msg):
                    slot.msg = msg
                    if slot.waiting:
                        complete_wait(dst, slot)
                    return
            pending[dst].append(msg)

        def complete_rendezvous(ps: _ParkedSend, handshake: float) -> InFlight:
            """A parked sender's receive arrived: start the transfer and
            release the sender."""
            hops = self._hops(ps.source, ps.dest)
            arrival = handshake + self.machine.link.message_time(ps.nbytes, hops)
            key = (ps.source, ps.dest)
            arrival = max(arrival, last_arrival.get(key, 0.0))
            last_arrival[key] = arrival
            overhead = self.machine.link.latency_s if ps.dest != ps.source else 0.0
            # The sender was blocked from park_time to handshake, then
            # pays its startup overhead.
            sender_clock = handshake + overhead
            stats[ps.source].comm_time += (handshake - ps.park_time) + overhead
            stats[ps.source].messages_sent += 1
            stats[ps.source].bytes_sent += ps.nbytes
            clocks[ps.source] = sender_clock
            schedule(sender_clock, ps.source, None)
            return InFlight(
                dest=ps.dest,
                source=ps.source,
                tag=ps.tag,
                payload=ps.payload,
                nbytes=ps.nbytes,
                arrival_time=arrival,
                seq=ps.seq,
            )

        def make_slot(rank: int, source: int, tag: int) -> _Slot:
            """Post a receive; bind a queued eager message or wake a
            parked rendezvous sender."""
            slot = _Slot(slot_id=next_slot_id[rank], source=source, tag=tag)
            next_slot_id[rank] += 1
            queue = pending[rank]
            for i, msg in enumerate(queue):
                if slot.matches(msg):
                    slot.msg = queue.pop(i)
                    break
            if slot.msg is None:
                for i, ps in enumerate(parked[rank]):
                    if (slot.source in (-1, ps.source)) and (slot.tag in (-1, ps.tag)):
                        parked[rank].pop(i)
                        handshake = max(clocks[rank], ps.park_time)
                        slot.msg = complete_rendezvous(ps, handshake)
                        break
            slots[rank].append(slot)
            return slot

        def find_slot(rank: int, slot_id: int) -> _Slot:
            for slot in slots[rank]:
                if slot.slot_id == slot_id:
                    return slot
            raise CommunicationError(
                f"rank {rank} waits on unknown or already-completed "
                f"receive handle {slot_id}"
            )

        # Kick off every rank at t=0; arm fault-injection sentinels.
        _FAIL = object()
        failed = [False] * p
        failed_ranks: List[int] = []
        for rank in range(p):
            schedule(0.0, rank, None)
        for rank, when in self.fail_at.items():
            schedule(when, rank, _FAIL)

        events = 0
        alive = p
        while ready:
            time, _, rank, value = heapq.heappop(ready)
            if failed[rank]:
                continue  # events for a dead node are dropped
            if value is _FAIL:
                if finished[rank]:
                    continue  # died after finishing: no effect
                failed[rank] = True
                failed_ranks.append(rank)
                finished[rank] = True
                stats[rank].finish_time = time
                clocks[rank] = max(clocks[rank], time)
                slots[rank].clear()
                blocked[rank] = False
                # A dead node's parked rendezvous sends never start.
                for dst in range(p):
                    parked[dst] = [ps for ps in parked[dst] if ps.source != rank]
                alive -= 1
                continue
            if finished[rank]:
                raise SimulationError(f"finished rank {rank} rescheduled")
            clocks[rank] = max(clocks[rank], time)

            try:
                request = gens[rank].send(value)
            except StopIteration as stop:
                returns[rank] = stop.value
                finished[rank] = True
                stats[rank].finish_time = clocks[rank]
                alive -= 1
                continue

            events += 1
            if events > self.max_events:
                raise SimulationError(
                    f"exceeded max_events={self.max_events}; "
                    "likely an unbounded loop in a rank program"
                )

            now = clocks[rank]
            if isinstance(request, ComputeReq):
                if request.seconds is not None:
                    dt = request.seconds
                else:
                    dt = self.machine.compute_time(request.flops, request.efficiency)
                clocks[rank] = now + dt
                stats[rank].compute_time += dt
                schedule(clocks[rank], rank, None)

            elif isinstance(request, SendReq):
                dst = request.dest
                if not 0 <= dst < p:
                    raise CommunicationError(
                        f"rank {rank} sent to invalid rank {dst} (size {p})"
                    )
                nbytes = request.wire_bytes()
                if nbytes > self.eager_threshold_bytes:
                    # Rendezvous: bind to an already-posted matching
                    # receive, or park until one appears.
                    ps = _ParkedSend(
                        source=rank,
                        dest=dst,
                        tag=request.tag,
                        payload=copy_payload(request.payload),
                        nbytes=nbytes,
                        seq=seq,
                        park_time=now,
                    )
                    bound = False
                    for slot in slots[dst]:
                        if slot.msg is None and slot.matches(
                            InFlight(dst, rank, request.tag, None, nbytes, 0.0)
                        ):
                            slot.msg = complete_rendezvous(ps, now)
                            if slot.waiting:
                                complete_wait(dst, slot)
                            bound = True
                            break
                    if not bound:
                        parked[dst].append(ps)  # sender blocks here
                    continue
                hops = self._hops(rank, dst)
                arrival = now + self.machine.link.message_time(nbytes, hops)
                key = (rank, dst)
                arrival = max(arrival, last_arrival.get(key, 0.0))
                last_arrival[key] = arrival
                overhead = self.machine.link.latency_s if dst != rank else 0.0
                clocks[rank] = now + overhead
                stats[rank].comm_time += overhead
                stats[rank].messages_sent += 1
                stats[rank].bytes_sent += nbytes
                post_message(
                    InFlight(
                        dest=dst,
                        source=rank,
                        tag=request.tag,
                        payload=copy_payload(request.payload),
                        nbytes=nbytes,
                        arrival_time=arrival,
                        seq=seq,
                    )
                )
                schedule(clocks[rank], rank, None)

            elif isinstance(request, (RecvReq, IrecvReq)):
                if request.source != -1 and not 0 <= request.source < p:
                    raise CommunicationError(
                        f"rank {rank} receives from invalid rank {request.source}"
                    )
                slot = make_slot(rank, request.source, request.tag)
                if isinstance(request, IrecvReq):
                    # Posting is free; resume immediately with the handle.
                    schedule(now, rank, slot.slot_id)
                elif slot.msg is not None:
                    slot.waiting = True
                    slot.blocked_since = now
                    complete_wait(rank, slot)
                else:
                    slot.waiting = True
                    slot.blocked_since = now
                    blocked[rank] = True  # a future send wakes us

            elif isinstance(request, WaitReq):
                slot = find_slot(rank, request.handle)
                if slot.waiting:
                    raise CommunicationError(
                        f"rank {rank} waits twice on handle {request.handle}"
                    )
                slot.waiting = True
                slot.blocked_since = now
                if slot.msg is not None:
                    complete_wait(rank, slot)
                else:
                    blocked[rank] = True

            else:
                raise CommunicationError(
                    f"rank {rank} yielded unsupported request {request!r}"
                )

        if alive > 0:
            parked_by_src: Dict[int, List[str]] = {}
            for dst in range(p):
                for ps in parked[dst]:
                    parked_by_src.setdefault(ps.source, []).append(
                        f"rendezvous send to {dst} (tag={ps.tag})"
                    )
            detail = ", ".join(
                f"rank {r} blocked on "
                + (
                    ", ".join(
                        [
                            f"(source={s.source}, tag={s.tag})"
                            for s in slots[r]
                            if s.waiting and s.msg is None
                        ]
                        + parked_by_src.get(r, [])
                    )
                    or "nothing posted"
                )
                for r in range(p)
                if not finished[r]
            )
            failure_note = (
                f" (injected failures: ranks {sorted(failed_ranks)})"
                if failed_ranks
                else ""
            )
            raise DeadlockError(
                f"{alive} rank(s) blocked with no matching sends: "
                f"{detail}{failure_note}"
            )

        return SimResult(
            returns=returns,
            time=max(clocks) if clocks else 0.0,
            stats=stats,
            tracer=tracer,
            failed_ranks=sorted(failed_ranks),
        )


def run_program(
    machine: Machine,
    n_ranks: int,
    program: Callable,
    *args: Any,
    seed: int = 0,
    trace: bool = False,
    **kwargs: Any,
) -> SimResult:
    """One-shot convenience wrapper around :class:`Engine`."""
    return Engine(machine, n_ranks, seed=seed, trace=trace).run(program, *args, **kwargs)
