"""Discrete-event message-passing simulator (MPI-like, generator-based).

Typical use::

    from repro.machine import touchstone_delta
    from repro.simmpi import Engine

    def program(comm):
        part = yield from comm.scatter(list(range(comm.size)) if comm.rank == 0 else None)
        total = yield from comm.allreduce(part)
        return total

    result = Engine(touchstone_delta(), n_ranks=16).run(program)
    result.returns   # per-rank values
    result.time      # virtual seconds
"""

from repro.simmpi.comm import Comm
from repro.simmpi.delivery import (
    DELIVERY_MODELS,
    AlphaBetaDelivery,
    ContentionAwareDelivery,
    DeliveryModel,
    resolve_delivery,
)
from repro.simmpi.engine import Engine, SimResult, run_program
from repro.simmpi.group import GroupComm
from repro.simmpi.protocol import EagerProtocol, Protocol, RendezvousProtocol
from repro.simmpi.requests import (
    ANY_SOURCE,
    ANY_TAG,
    CollectiveReq,
    ComputeReq,
    IrecvReq,
    IsendReq,
    Message,
    RecvReq,
    SendReq,
    WaitanyReq,
    WaitReq,
    payload_nbytes,
)
from repro.simmpi.state import (
    MachineState,
    RankState,
    RankStatsView,
    ReceiveSlot,
    SendHandle,
)
from repro.simmpi.stencil import StencilSpec, grid_halo, strip_halo
from repro.simmpi.cost_models import (
    MODELS,
    ModelValidation,
    allgather_ring_time,
    allreduce_time,
    alltoall_time,
    barrier_time,
    bcast_time,
    reduce_time,
    validate_model,
)
from repro.simmpi.timeline import (
    RankUtilisation,
    hottest_pairs,
    load_balance,
    message_timeline,
    utilisation,
    utilisation_table,
)
from repro.simmpi.trace import MessageRecord, RankStats, Tracer
from repro.simmpi.waitgraph import WaitEdge, WaitForGraph, build_wait_graph

__all__ = [
    "Comm",
    "GroupComm",
    "Engine",
    "SimResult",
    "run_program",
    "ANY_SOURCE",
    "ANY_TAG",
    "CollectiveReq",
    "ComputeReq",
    "IrecvReq",
    "IsendReq",
    "Message",
    "RecvReq",
    "SendReq",
    "WaitReq",
    "WaitanyReq",
    "payload_nbytes",
    "DELIVERY_MODELS",
    "DeliveryModel",
    "AlphaBetaDelivery",
    "ContentionAwareDelivery",
    "resolve_delivery",
    "Protocol",
    "EagerProtocol",
    "RendezvousProtocol",
    "MachineState",
    "RankState",
    "RankStatsView",
    "ReceiveSlot",
    "SendHandle",
    "StencilSpec",
    "grid_halo",
    "strip_halo",
    "MODELS",
    "ModelValidation",
    "allgather_ring_time",
    "allreduce_time",
    "alltoall_time",
    "barrier_time",
    "bcast_time",
    "reduce_time",
    "validate_model",
    "RankUtilisation",
    "hottest_pairs",
    "load_balance",
    "message_timeline",
    "utilisation",
    "utilisation_table",
    "MessageRecord",
    "RankStats",
    "Tracer",
    "WaitEdge",
    "WaitForGraph",
    "build_wait_graph",
]
