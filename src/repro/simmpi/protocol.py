"""Message protocols: how a send reaches a matching receive.

The engine selects a protocol **per message** by size -- up to the
eager threshold the :class:`EagerProtocol` buffers and forwards
immediately; above it the :class:`RendezvousProtocol` holds the sender
(or, for ``isend``, just the transfer) until the receiver posts a
matching slot.  Both implement the same two-method interface:

* :meth:`Protocol.send` -- interpret one send/isend request from a
  running rank;
* :meth:`Protocol.match_posted_receive` -- a receive was just posted;
  bind a waiting message or parked sender to it if one matches.

When a receive is posted the engine consults the protocols in a fixed
order (eager queue first, then parked rendezvous senders), preserving
the seed engine's matching semantics exactly.

Protocols talk to the run through the small context interface the
engine passes in (``arrival``/``overhead`` delegate to the active
:class:`~repro.simmpi.delivery.DeliveryModel`, plus ``schedule`` and
the completion callbacks), so protocol logic is independent of both the
cost model and the event loop.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Union

from repro.simmpi.requests import ANY_SOURCE, ANY_TAG, InFlight, IsendReq, SendReq, copy_payload
from repro.simmpi.state import ParkedSend, RankState, ReceiveSlot, SendHandle
from repro.simmpi.trace import RNDV_WAIT, SEND, SpanCause


class Protocol(ABC):
    """Strategy for delivering one message class (eager vs rendezvous)."""

    name: str = "abstract"

    @abstractmethod
    def send(
        self,
        ctx,
        src: RankState,
        request: Union[SendReq, IsendReq],
        nbytes: float,
        handle: Optional[SendHandle] = None,
    ) -> None:
        """Interpret a send issued at ``src.clock``.

        ``handle`` is None for a blocking :class:`SendReq`; for
        :class:`IsendReq` it is the already-registered
        :class:`SendHandle` the sender will wait on.
        """

    @abstractmethod
    def match_posted_receive(self, ctx, dst: RankState, slot: ReceiveSlot) -> bool:
        """A receive was posted at ``dst``: bind a queued message or
        parked sender to ``slot``.  Returns True when bound."""


class EagerProtocol(Protocol):
    """Buffered sends: copy, charge the startup overhead, deliver after
    the routed delay.  The sender never blocks."""

    name = "eager"

    def send(self, ctx, src, request, nbytes, handle=None):
        now = src.clock
        dst = request.dest
        src_rank = src.rank
        arrival = ctx.arrival(src_rank, dst, nbytes, now)
        overhead = ctx.overhead(src_rank, dst)
        clear = now + overhead
        src.clock = clear
        stats = src.stats
        stats.comm_time += overhead
        stats.messages_sent += 1
        stats.bytes_sent += nbytes
        wire = None
        if ctx.tracer.enabled:
            # The injection span is recorded even when zero-length: it
            # is the jump target for the message's wire edge.
            sid = ctx.tracer.span(
                src_rank,
                SEND,
                now,
                clear,
                name=ctx.phase(src_rank),
                peer=dst,
                tag=request.tag,
                nbytes=nbytes,
            )
            wire = SpanCause(
                kind="msg",
                src_rank=src_rank,
                src_time=clear,
                src_sid=sid,
                wire_start=clear,
                wire_min_end=ctx.alphabeta_arrival(src_rank, dst, nbytes, now),
            )
        ctx.post_message(
            InFlight(
                dst,
                src_rank,
                request.tag,
                copy_payload(request.payload),
                nbytes,
                arrival,
                ctx.seq,
                now,
                wire,
            )
        )
        if handle is not None:
            # The CPU injected the message; the handle is already done.
            handle.complete_at = clear
            ctx.schedule(clear, src_rank, handle.handle_id)
        else:
            ctx.schedule(clear, src_rank, None)

    def match_posted_receive(self, ctx, dst, slot):
        for i, msg in enumerate(dst.pending):
            if slot.matches(msg):
                slot.msg = dst.pending.pop(i)
                return True
        return False


class RendezvousProtocol(Protocol):
    """Handshaking sends: the transfer starts only once a matching
    receive exists.  A blocking send parks its rank; an isend parks only
    the transfer and completes its handle at handshake time."""

    name = "rendezvous"

    def send(self, ctx, src, request, nbytes, handle=None):
        now = src.clock
        # rank_state materializes a not-yet-resumed receiver (lazy
        # bring-up): its parked queue must exist to hold this sender.
        dst = ctx.rank_state(request.dest)
        ps = ParkedSend(
            source=src.rank,
            dest=request.dest,
            tag=request.tag,
            payload=copy_payload(request.payload),
            nbytes=nbytes,
            seq=ctx.seq,
            park_time=now,
            send_time=now,
            handle=handle,
        )
        for slot in dst.receive_slots():
            if slot.msg is None and self._slot_accepts(slot, ps):
                if handle is not None:
                    ctx.schedule(now, src.rank, handle.handle_id)
                slot.msg = self.start_transfer(ctx, ps, handshake=now)
                if slot.waiting:
                    ctx.complete_receive(dst, slot)
                return
        dst.parked.append(ps)
        if handle is not None:
            ctx.schedule(now, src.rank, handle.handle_id)  # isend returns at once
        # A blocking sender stays parked: no event until the handshake.

    def match_posted_receive(self, ctx, dst, slot):
        for i, ps in enumerate(dst.parked):
            if self._slot_accepts(slot, ps):
                dst.parked.pop(i)
                handshake = max(dst.clock, ps.park_time)
                slot.msg = self.start_transfer(ctx, ps, handshake)
                return True
        return False

    @staticmethod
    def _slot_accepts(slot: ReceiveSlot, ps: ParkedSend) -> bool:
        return slot.source in (ANY_SOURCE, ps.source) and slot.tag in (ANY_TAG, ps.tag)

    def start_transfer(self, ctx, ps: ParkedSend, handshake: float) -> InFlight:
        """The handshake happened: start the wire transfer, release (or
        complete the handle of) the sender."""
        arrival = ctx.arrival(ps.source, ps.dest, ps.nbytes, handshake)
        overhead = ctx.overhead(ps.source, ps.dest)
        src = ctx.rank_state(ps.source)
        src.stats.messages_sent += 1
        src.stats.bytes_sent += ps.nbytes
        sender_clear = handshake + overhead
        tracing = ctx.tracer.enabled
        wire = None
        # The handshake is *binding* when the receiver's post (not the
        # sender's own park) released the transfer; the chain then
        # continues on the receiver's timeline at the handshake.
        binding = handshake > ps.park_time
        if ps.handle is None:
            # The sender was blocked from park_time to the handshake,
            # then pays its startup overhead.
            src.stats.comm_time += (handshake - ps.park_time) + overhead
            if tracing:
                phase = ctx.phase(src.rank)
                if binding:
                    ctx.tracer.span(
                        src.rank,
                        RNDV_WAIT,
                        ps.park_time,
                        handshake,
                        name=phase,
                        peer=ps.dest,
                        tag=ps.tag,
                        nbytes=ps.nbytes,
                        cause=SpanCause(kind="rank", src_rank=ps.dest, src_time=handshake),
                    )
                sid = ctx.tracer.span(
                    src.rank,
                    SEND,
                    handshake,
                    sender_clear,
                    name=phase,
                    peer=ps.dest,
                    tag=ps.tag,
                    nbytes=ps.nbytes,
                )
                wire = SpanCause(
                    kind="msg",
                    src_rank=ps.source,
                    src_time=sender_clear,
                    src_sid=sid,
                    wire_start=sender_clear,
                    wire_min_end=ctx.alphabeta_arrival(ps.source, ps.dest, ps.nbytes, handshake),
                )
            src.clock = sender_clear
            ctx.schedule(sender_clear, src.rank, None)
        else:
            if tracing:
                # No sender-side span: an isending rank kept running
                # past the park, so recording here would break its
                # chronological span order.  The chain instead jumps
                # straight to whichever rank bound the handshake.
                binder = SpanCause(
                    kind="rank",
                    src_rank=ps.dest if binding else ps.source,
                    src_time=handshake if binding else ps.park_time,
                )
                ps.handle.hs_cause = binder
                wire = SpanCause(
                    kind="msg",
                    src_rank=binder.src_rank,
                    src_time=binder.src_time,
                    src_sid=-1,
                    wire_start=handshake,
                    wire_min_end=ctx.alphabeta_arrival(ps.source, ps.dest, ps.nbytes, handshake),
                )
            ps.handle.complete_at = sender_clear
            if ps.handle.waiting:
                ctx.complete_send(src, ps.handle)
        return InFlight(
            dest=ps.dest,
            source=ps.source,
            tag=ps.tag,
            payload=ps.payload,
            nbytes=ps.nbytes,
            arrival_time=arrival,
            seq=ps.seq,
            send_time=ps.send_time,
            wire=wire,
        )
