"""Declared halo-exchange stencil phases and their closed-form pricing.

A *stencil phase* is the communication epoch of a structured-grid
computation: every rank sends one payload to each neighbor at a fixed
set of grid offsets, then receives the mirror payloads.  The apps
(`apps.ocean`, `apps.cfd`) and the 2D linear-algebra kernels spend
their whole communication budget in exactly this shape, which the
Grand Challenge machines (the 16K-node lattice-QCD designs) run at
four orders of magnitude more ranks than a per-message event loop can
replay interactively.

:class:`StencilSpec` declares the phase -- the row-major rank-grid
shape, the offset set (each offset's negation must also be present),
and whether the grid wraps.  :func:`exchange` (exposed as
``comm.exchange``) executes it: under engine macro-ops the whole phase
becomes one :class:`~repro.simmpi.requests.CollectiveReq` priced in
closed form by :func:`eval_exchange` through
:class:`~repro.simmpi.macro._Sched` -- the same transactional
clocks/stats/FIFO-overlay machinery the collective evaluators use --
and otherwise (tracing, contention delivery, faults, or a
per-invocation bail) the real send/recv sequence runs on the event
path.  Both routes are bit-identical in makespans, per-rank stats, and
returned payloads.

The event path fixes the wire protocol the evaluator reproduces: each
rank sends ``payloads[j]`` to its offset-``j`` peer with tag
``tag0 - j``, then receives from the offset-``j`` peer with tag
``tag0 - mirror(j)`` (the tag its peer used for the payload traveling
*toward* us, i.e. the peer's send at the negated offset).  Sends
before receives, both in offset order -- the same
send/send/.../recv/recv shape the apps' hand-written halo loops used.

Closed-form soundness: every round is a uniform shift, so (src, dst)
pairs are distinct within a round and sends depend only on the
sender's clock (eager).  The evaluator bails (``_Bail`` ->
``MACRO_FALLBACK``) whenever those assumptions break: irregular
payload sizes across ranks, rendezvous-sized payloads (the cyclic
pattern may legitimately deadlock, and only the event path reproduces
that), or an offset that maps ranks onto themselves (self-sends have
zero injection overhead, outside the round primitive's constant-
overhead form).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.simmpi import collectives as _coll
from repro.simmpi.macro import _Bail, _Sched
from repro.simmpi.requests import CollectiveReq, copy_payload, payload_nbytes
from repro.util.errors import CommunicationError, ConfigurationError


@dataclass(frozen=True)
class StencilSpec:
    """A declared neighbor-exchange phase on a row-major rank grid.

    ``shape`` is the process-grid shape (rank ``r`` sits at
    ``np.unravel_index(r, shape)``, row-major -- the same layout as
    :class:`~repro.linalg.decomp.ProcessGrid2D`).  ``offsets`` is the
    neighbor set; for every offset its negation must also be listed
    (the mirror), because each rank receives back along the direction
    it sent.  ``wrap`` selects torus (True) or open-boundary mesh
    behaviour; on an open grid, offsets that leave the grid simply
    drop that send/receive and the returned slot is ``None``.

    Instances are immutable and hashable: the spec rides in the
    ``algorithm`` slot of the engine's collective gather key, so two
    ranks are in the same invocation exactly when they declared the
    same phase.
    """

    shape: Tuple[int, ...]
    offsets: Tuple[Tuple[int, ...], ...]
    wrap: bool = True
    #: ``mirrors[j]`` is the index of ``-offsets[j]`` (derived, not
    #: part of identity).
    mirrors: Tuple[int, ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        shape = tuple(int(s) for s in self.shape)
        offsets = tuple(tuple(int(o) for o in off) for off in self.offsets)
        object.__setattr__(self, "shape", shape)
        object.__setattr__(self, "offsets", offsets)
        if not shape or any(s < 1 for s in shape):
            raise ConfigurationError(
                f"stencil shape must have positive dims, got {shape}"
            )
        if not offsets:
            raise ConfigurationError("stencil needs at least one offset")
        index = {}
        for j, off in enumerate(offsets):
            if len(off) != len(shape):
                raise ConfigurationError(
                    f"offset {off} has {len(off)} dims; shape {shape} "
                    f"has {len(shape)}"
                )
            if not any(off):
                raise ConfigurationError("zero offset is not a neighbor")
            if off in index:
                raise ConfigurationError(f"duplicate offset {off}")
            index[off] = j
        mirrors = []
        for off in offsets:
            neg = tuple(-o for o in off)
            j = index.get(neg)
            if j is None:
                raise ConfigurationError(
                    f"offset {off} has no mirror {neg} in {offsets}"
                )
            mirrors.append(j)
        object.__setattr__(self, "mirrors", tuple(mirrors))

    @property
    def size(self) -> int:
        """Number of grid positions (must equal the communicator size)."""
        n = 1
        for s in self.shape:
            n *= s
        return n

    def neighbors(self, rank: int) -> List[int]:
        """Peer rank per offset for ``rank``; -1 where the offset
        leaves a non-wrapping grid."""
        shape = self.shape
        coords = []
        rem = rank
        for d in range(len(shape) - 1, -1, -1):
            rem, c = divmod(rem, shape[d])
            coords.append(c)
        coords.reverse()
        peers = []
        for off in self.offsets:
            r = 0
            ok = True
            for d, o in enumerate(off):
                c = coords[d] + o
                s = shape[d]
                if self.wrap:
                    c %= s
                elif not 0 <= c < s:
                    ok = False
                    break
                r = r * s + c
            peers.append(r if ok else -1)
        return peers

    def peer_columns(self) -> List[np.ndarray]:
        """Vectorised :meth:`neighbors`: per offset, an int64 array of
        every rank's peer (-1 where the offset leaves an open grid)."""
        shape = self.shape
        coords = np.unravel_index(np.arange(self.size), shape)
        out = []
        for off in self.offsets:
            ok = np.ones(self.size, dtype=np.bool_)
            moved = []
            for d, o in enumerate(off):
                c = coords[d] + o
                if self.wrap:
                    c %= shape[d]
                else:
                    ok &= (c >= 0) & (c < shape[d])
                    c = np.clip(c, 0, shape[d] - 1)
                moved.append(c)
            peer = np.ravel_multi_index(tuple(moved), shape).astype(np.int64)
            peer[~ok] = -1
            out.append(peer)
        return out


def strip_halo(p: int, wrap: bool = True) -> StencilSpec:
    """Two-neighbor strip decomposition: offsets -1 (up) and +1 (down)."""
    return StencilSpec(shape=(p,), offsets=((-1,), (1,)), wrap=wrap)


def grid_halo(
    prows: int, pcols: int, axis: Optional[int] = None, wrap: bool = True
) -> StencilSpec:
    """Halo exchange on a row-major ``prows x pcols`` process grid.

    ``axis=0`` exchanges along rows only (up/down), ``axis=1`` along
    columns only (left/right), ``None`` all four neighbors.
    """
    if axis == 0:
        offsets: Tuple[Tuple[int, ...], ...] = ((-1, 0), (1, 0))
    elif axis == 1:
        offsets = ((0, -1), (0, 1))
    elif axis is None:
        offsets = ((-1, 0), (1, 0), (0, -1), (0, 1))
    else:
        raise ConfigurationError(f"grid_halo axis must be 0, 1, or None, got {axis}")
    return StencilSpec(shape=(prows, pcols), offsets=offsets, wrap=wrap)


def exchange(comm: Any, spec: StencilSpec, payloads: Sequence[Any]) -> Generator:
    """Execute one declared stencil phase on ``comm`` (the world
    communicator): send ``payloads[j]`` toward offset ``j``, return the
    received payloads per offset (``None`` where an open-grid offset
    has no peer).

    Collective in shape: every rank must call it with the same spec,
    the same number of times.  Under engine macro-ops the phase is
    priced in closed form; otherwise (or on a per-invocation fallback)
    the real send/recv sequence runs, bit-identically.
    """
    payloads = list(payloads)
    if len(payloads) != len(spec.offsets):
        raise CommunicationError(
            f"exchange got {len(payloads)} payloads for "
            f"{len(spec.offsets)} offsets"
        )
    if spec.size != comm.size:
        raise CommunicationError(
            f"stencil shape {spec.shape} covers {spec.size} ranks; "
            f"communicator has {comm.size}"
        )
    if comm._macro and comm.size > 1:
        return _coll._macro_collective(comm, "exchange", spec, 0, None, payloads)
    return _exchange_event(comm, spec, payloads)


def _exchange_event(comm: Any, spec: StencilSpec, payloads: Sequence[Any]) -> Generator:
    """The event-path wire protocol (also the macro fallback): sends
    then receives, both in offset order, mirror-tagged."""
    tag0 = _coll._block_tag(comm)
    peers = spec.neighbors(comm.rank)
    mirrors = spec.mirrors
    for j, peer in enumerate(peers):
        if peer >= 0:
            yield from comm.send(payloads[j], peer, tag=tag0 - j)
    out: List[Any] = [None] * len(peers)
    for j, peer in enumerate(peers):
        if peer >= 0:
            msg = yield from comm.recv(source=peer, tag=tag0 - mirrors[j])
            out[j] = msg.payload
    return out


#: spec -> :meth:`StencilSpec.peer_columns` memo.  Bounded by the
#: number of distinct phases a process declares (a handful).
_PEER_COLUMNS: Dict[StencilSpec, List[np.ndarray]] = {}


def eval_exchange(
    s: _Sched, reqs: Sequence[CollectiveReq], ghost: bool = False
) -> List[Any]:
    """Closed-form pricing of one exchange invocation (all members
    parked; clocks/stats live in the transactional ``s``).

    Mirrors :func:`_exchange_event` round for round: one vectorised
    send round per offset, then one receive round per offset, so every
    rank's clock and comm-time accumulate in exactly the event path's
    per-rank op order.  Raises ``_Bail`` -- nothing committed, the
    engine replays the event path -- on irregular payload sizes,
    rendezvous-sized payloads, self-peers, or a spec/communicator size
    mismatch.

    ``ghost`` (closed-form engine): every entry of ``reqs`` is the same
    request object, so rank 0's payloads size every column, and only
    rank 0's delivered row is assembled -- the O(p) per-member column
    scans and delivery copies collapse to O(offsets).
    """
    spec = reqs[0].algorithm
    p = s.p
    if spec.size != p:
        raise _Bail
    offsets = spec.offsets
    shape = spec.shape
    k = len(offsets)
    if spec.wrap:
        for off in offsets:
            if all(o % sd == 0 for o, sd in zip(off, shape)):
                # The offset maps every rank onto itself: self-sends
                # have zero injection overhead, which the constant-
                # overhead round primitive cannot express.
                raise _Bail
    vals: Optional[List[Any]] = None if ghost else [req.value for req in reqs]
    v0 = reqs[0].value
    nb: List[int] = []
    immutable: List[bool] = []
    for j in range(k):
        x0 = v0[j]
        t0 = type(x0)
        scalar0 = t0 is float or t0 is int or t0 is bool
        if scalar0 and (ghost or not any(type(v[j]) is not t0 for v in vals)):
            # Scalar column: 8 wire bytes each (payload_nbytes), and
            # nothing to copy on delivery -- the eager send path hands
            # immutable payloads through as-is too.
            n0 = 8
            imm = True
        else:
            n0 = payload_nbytes(x0)
            if not ghost and not s.run._cert_uniform:
                # A macro certificate with the uniform-exchange bit
                # proves every rank's payload has the same shape; then
                # element 0 prices the whole column.  Without it, scan.
                for v in vals:
                    if payload_nbytes(v[j]) != n0:
                        raise _Bail  # irregular sizes: not a uniform round
            imm = False
        if n0 > s.eager_max:
            # Rendezvous payloads make the cyclic pattern synchronous;
            # the event path must run (it may legitimately deadlock).
            raise _Bail
        nb.append(n0)
        immutable.append(imm)

    peers = _PEER_COLUMNS.get(spec)
    if peers is None:
        # Specs are immutable and hashable; the columns are read-only
        # here, so one derivation serves every epoch of the phase.
        peers = _PEER_COLUMNS[spec] = spec.peer_columns()
    idx = np.arange(p, dtype=np.intp)
    arrivals: List[np.ndarray] = []
    for j in range(k):
        pa = peers[j]
        if spec.wrap:
            arrivals.append(s.send_round(idx, pa.astype(np.intp), nb[j]))
        else:
            srcs = idx[pa >= 0]
            dense = np.zeros(p, dtype=np.float64)
            if srcs.size:
                dense[srcs] = s.send_round(srcs, pa[srcs].astype(np.intp), nb[j])
            arrivals.append(dense)
    mirrors = spec.mirrors
    for j in range(k):
        pa = peers[j]
        m = mirrors[j]
        # Rank r's offset-j receive completes the message its peer sent
        # in the peer's mirror round (the send traveling -offsets[j]).
        if spec.wrap:
            s.recv_round(idx, arrivals[m][pa], nb[m])
        else:
            dsts = idx[pa >= 0]
            if dsts.size:
                s.recv_round(dsts, arrivals[m][pa[dsts]], nb[m])

    # Rank r's offset-j slot holds its peer's mirror payload.  Build
    # per-offset delivery columns, then transpose: the column loops are
    # flat list comprehensions, which matters at 10^4+ ranks.
    cp = copy_payload
    if ghost:
        # Only rank 0's delivered row is observable; its peers' mirror
        # payloads are rank 0's own (one shared request).
        row0: List[Any] = []
        for j in range(k):
            m = mirrors[j]
            if int(peers[j][0]) < 0:
                row0.append(None)
            elif immutable[m]:
                row0.append(v0[m])
            else:
                row0.append(cp(v0[m]))
        return [row0]
    delivered: List[List[Any]] = []
    for j in range(k):
        pl = peers[j].tolist()
        m = mirrors[j]
        if immutable[m]:
            colv = [vals[q][m] if q >= 0 else None for q in pl]
        else:
            # Same buffered-copy semantics as the eager send path.
            colv = [cp(vals[q][m]) if q >= 0 else None for q in pl]
        delivered.append(colv)
    return [list(row) for row in zip(*delivered)]


# The engine resumes every member with MACRO_FALLBACK when the
# evaluator bails; the dispatch layer then replays the event-path
# protocol with the spec it finds in the algorithm slot.
_coll._MACRO_FALLBACK_IMPLS["exchange"] = (
    lambda comm, value, root, op, alg: _exchange_event(comm, alg, value)
)
