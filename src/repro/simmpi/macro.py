"""Closed-form (macro-op) evaluation of collective schedules.

When a collective runs untraced under plain
:class:`~repro.simmpi.delivery.AlphaBetaDelivery` with no fault
injection pending, the per-message event cascade it would generate is a
*deterministic closed-form function* of the members' entry clocks and
the alpha-beta parameters: no outside event can alter a match, arrival,
or handshake inside the collective.  This module replays that cascade
analytically -- same messages, same arithmetic expressions, same
floating-point evaluation order per rank -- without touching the event
heap, so every member pays exactly one event per collective instead of
O(log P)..O(P).

Bit-exactness contract
----------------------

Every helper below mirrors the engine's fused eager-send handler and
the protocols' rendezvous arithmetic *expression for expression*:

* eager send:   ``arrival = ab.arrival(src, dst, nbytes, now)`` then the
  per-pair FIFO clamp; ``clear = now + overhead``.
* rendezvous:   ``handshake = max(recv_post, park)``; arrival computed
  at the handshake; ``comm_time += (handshake - park) + overhead``.
* blocking recv: ``completion = max(arrival, blocked_since)``.

Per-rank statistics are accumulated on *local copies seeded from the
live values* and committed absolutely, so the float addition order per
rank is identical to the event path (each rank's stats are only ever
touched by its own ops, in program order).

Evaluation is transactional: local clocks, stats, and a
``_last_arrival`` overlay are the only mutable state until
:meth:`_Sched.commit`, so bailing out at any point (``_Bail``) is safe
-- the engine then resumes every member with ``MACRO_FALLBACK`` and the
real message algorithm runs from the same entry clocks.  The only
side effects before commit are the delivery model's deterministic
``_fixed`` / overhead memos, which cache pure functions of (src, dst).

Supported schedules (anything else falls back): dissemination barrier,
binomial-tree / ring / flat bcast, binomial reduce, recursive-doubling
allreduce, ring allgather, cyclic alltoall.  Cyclic patterns
(butterfly, rings, alltoall) are evaluated only when every message is
eager; a rendezvous message there means the event path's behaviour
(including its deadlock) must be reproduced for real, so we bail.
Declared neighbor-exchange stencil phases price through the same
:class:`_Sched` machinery via :mod:`repro.simmpi.stencil`.
"""

from __future__ import annotations

from itertools import repeat
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.simmpi.requests import CollectiveReq, copy_payload, payload_nbytes

#: (kind, algorithm) pairs the evaluator can reproduce exactly.
SUPPORTED = frozenset({
    ("barrier", "dissemination"),
    ("bcast", "tree"),
    ("bcast", "tree_nb"),
    ("bcast", "ring"),
    ("bcast", "flat"),
    ("reduce", "binomial"),
    ("allreduce", "recursive_doubling"),
    ("allgather", "ring"),
    ("alltoall", "cyclic"),
})


class _Bail(Exception):
    """The schedule is not analytically exact here (rendezvous inside a
    cyclic pattern); the caller replays the event path instead."""


class _Sched:
    """Transactional per-collective scheduler state.

    Clocks and stats are local absolute copies; ``overlay`` shadows the
    run's per-pair FIFO clamp table.  Nothing escapes until
    :meth:`commit`.
    """

    __slots__ = (
        "run", "members", "p", "idx", "clock", "comm_t", "sent_n", "sent_b",
        "recv_n", "recv_b", "eager_max", "ab", "n", "overlay", "last",
        "oh_memo", "members_arr", "nodes", "topo", "latency", "per_hop",
        "bw", "fifo_cap",
    )

    def __init__(self, run: Any, members: Sequence[int], clocks: Sequence[float]):
        self.run = run
        self.members = members
        p = len(members)
        self.p = p
        # Numpy storage: scalar helpers index element-wise (identical
        # IEEE arithmetic to plain floats), vector helpers price a
        # whole permutation round in a handful of array ops.
        self.clock = np.array(clocks, dtype=np.float64)
        if run._columnar:
            # Columnar gather: one fancy-index copy per stats column
            # out of the run's MachineState (the live values the
            # per-rank reads below would see, bit for bit).
            idx = np.fromiter(members, np.intp, count=p)
            ms = run.ms
            self.comm_t = ms.comm_time[idx]
            self.sent_n = ms.messages_sent[idx]
            self.sent_b = ms.bytes_sent[idx]
            self.recv_n = ms.messages_received[idx]
            self.recv_b = ms.bytes_received[idx]
            self.idx: Any = idx
        else:
            ranks = run.ranks
            self.comm_t = np.fromiter(
                (ranks[m].stats.comm_time for m in members), np.float64, count=p
            )
            self.sent_n = np.fromiter(
                (ranks[m].stats.messages_sent for m in members), np.int64, count=p
            )
            self.sent_b = np.fromiter(
                (ranks[m].stats.bytes_sent for m in members), np.float64, count=p
            )
            self.recv_n = np.fromiter(
                (ranks[m].stats.messages_received for m in members), np.int64, count=p
            )
            self.recv_b = np.fromiter(
                (ranks[m].stats.bytes_received for m in members), np.float64, count=p
            )
            self.idx = None
        self.eager_max = run._eager_max
        ab = run.delivery  # guaranteed AlphaBetaDelivery by the engine
        self.ab = ab
        self.n = run._n
        self.overlay: dict = {}
        last = run._last_arrival
        self.last = last
        # Upper bound on every arrival recorded in ``last`` + overlay:
        # lets send_round prove "no FIFO clamp can fire this round" in
        # O(1) and skip the per-pair dict probes entirely.
        self.fifo_cap = max(last.values()) if last else float("-inf")
        self.oh_memo = run._overhead
        self.members_arr = np.asarray(members, dtype=np.int64)
        self.nodes = np.asarray(ab.rank_map, dtype=np.int64)[self.members_arr]
        machine = ab.machine
        link = machine.link
        self.topo = machine.topology
        self.latency = link.latency_s
        self.per_hop = link.per_hop_s
        self.bw = ab._bw

    # -- message primitives -------------------------------------------------

    def send(self, gs: int, gd: int, nbytes: int) -> float:
        """One send issued at ``gs``'s current clock toward ``gd``.

        Valid only where ``gd``'s matching receive is posted at ``gd``'s
        *current* local clock (true for every acyclic schedule below:
        the receiver's recv is its next pending op).  Returns the
        message's arrival time at the destination.
        """
        clock = self.clock
        now = clock[gs]
        rendezvous = nbytes > self.eager_max
        if rendezvous:
            post = clock[gd]
            start = post if post > now else now  # handshake
        else:
            start = now
        members = self.members
        src = members[gs]
        dst = members[gd]
        key = src * self.n + dst
        ab = self.ab
        fixed = ab._fixed.get(key)
        if fixed is None:
            arrival = ab.arrival(src, dst, nbytes, start)
        else:
            arrival = start + (fixed + nbytes / ab._bw)
        overlay = self.overlay
        prev = overlay.get(key)
        if prev is None:
            prev = self.last.get(key)
        if prev is not None and prev > arrival:
            arrival = prev
        # Plain float: commit bulk-merges the overlay into the run
        # table, so no numpy scalar may be stored here.
        arrival = float(arrival)
        overlay[key] = arrival
        if arrival > self.fifo_cap:
            self.fifo_cap = arrival
        oh = self.oh_memo.get(key)
        if oh is None:
            oh = self.oh_memo[key] = ab.overhead(src, dst)
        if rendezvous:
            clock[gs] = start + oh
            self.comm_t[gs] += (start - now) + oh
        else:
            clock[gs] = now + oh
            self.comm_t[gs] += oh
        self.sent_n[gs] += 1
        self.sent_b[gs] += nbytes
        return arrival

    def send_eager(self, gs: int, gd: int, nbytes: int) -> float:
        """Like :meth:`send` but refuses rendezvous -- used inside cyclic
        schedules where a synchronous send means the event path must run
        (it may legitimately deadlock there)."""
        if nbytes > self.eager_max:
            raise _Bail
        return self.send(gs, gd, nbytes)

    def recv(self, gd: int, arrival: float, nbytes: int) -> float:
        """Complete a blocking receive posted at ``gd``'s current clock."""
        clock = self.clock
        blocked_since = clock[gd]
        completion = arrival if arrival > blocked_since else blocked_since
        self.comm_t[gd] += completion - blocked_since
        self.recv_n[gd] += 1
        self.recv_b[gd] += nbytes
        clock[gd] = completion
        return completion

    # -- vectorised round primitives ----------------------------------------

    def send_round(self, srcs, dsts, nbytes) -> "np.ndarray":
        """Vectorised :meth:`send` for one permutation round.

        Every listed source issues one send; (src, dst) pairs are
        distinct, no pair is a self-send, and each destination's
        matching receive is posted at its current clock (the acyclic /
        round-phased precondition of :meth:`send`).  ``nbytes`` is a
        scalar or per-pair array.  Element for element the float
        expressions match :meth:`send` exactly; callers inside cyclic
        schedules must reject rendezvous sizes *before* calling (see
        :meth:`send`'s eager-only counterpart).
        """
        clock = self.clock
        now = clock[srcs]
        rdv = nbytes > self.eager_max
        if np.any(rdv):
            # Handshake: start no earlier than the posted receive.
            starts = np.where(rdv, np.maximum(clock[dsts], now), now)
        else:
            starts = now
        hops = self.topo.hops_array(self.nodes[srcs], self.nodes[dsts])
        fixed = np.where(hops == 0, 0.0, self.latency + hops * self.per_hop)
        arrivals = starts + (fixed + nbytes / self.bw)
        # Per-pair FIFO clamp against the run's live table + overlay.
        keys = (self.members_arr[srcs] * self.n + self.members_arr[dsts]).tolist()
        overlay = self.overlay
        cap = self.fifo_cap
        if cap > float(arrivals.min()):
            # Some recorded arrival could exceed one of this round's:
            # probe both tables through C-level ``map(dict.get, ...)``
            # and clamp vectorised (a Python per-pair loop here costs
            # seconds per round at 10^5+ ranks).  An overlay entry is
            # always >= the run-table entry for the same key (it was
            # max-combined against it when stored), so taking the max
            # of both probes equals the overlay-first lookup.
            n_keys = len(keys)
            sentinel = float("-inf")
            prev = np.fromiter(
                map(self.last.get, keys, repeat(sentinel)),
                np.float64,
                count=n_keys,
            )
            if overlay:
                np.maximum(
                    prev,
                    np.fromiter(
                        map(overlay.get, keys, repeat(sentinel)),
                        np.float64,
                        count=n_keys,
                    ),
                    out=prev,
                )
            if bool((prev > arrivals).any()):
                arrivals = np.maximum(arrivals, prev)
        # Record the round in one bulk update instead of p dict stores
        # (tolist yields plain floats -- commit bulk-merges the overlay
        # into the run table).
        overlay.update(zip(keys, arrivals.tolist()))
        new_max = float(arrivals.max())
        if new_max > cap:
            self.fifo_cap = new_max
        # src != dst throughout, so the sender overhead is the constant
        # the memo would hold for every pair.
        oh = self.latency
        clock[srcs] = starts + oh
        # (starts - now) is exactly 0.0 for eager sends, so one fused
        # expression reproduces both protocols' comm_time charges.
        self.comm_t[srcs] += (starts - now) + oh
        self.sent_n[srcs] += 1
        self.sent_b[srcs] += nbytes
        return arrivals

    def recv_round(self, dsts, arrivals, nbytes) -> None:
        """Vectorised :meth:`recv` over distinct destinations."""
        clock = self.clock
        blocked = clock[dsts]
        completion = np.maximum(arrivals, blocked)
        self.comm_t[dsts] += completion - blocked
        self.recv_n[dsts] += 1
        self.recv_b[dsts] += nbytes
        clock[dsts] = completion

    def commit(self) -> None:
        # The caller's resume times must be plain Python floats (no
        # numpy scalars in the event loop's heap tuples); the committed
        # columns hold the same float64 bits either way.
        clock = self.clock.tolist()
        if self.idx is not None:
            # Columnar commit: one fancy-index assignment per column
            # writes the whole group back to the MachineState.
            ms = self.run.ms
            idx = self.idx
            ms.clock[idx] = self.clock
            ms.comm_time[idx] = self.comm_t
            ms.messages_sent[idx] = self.sent_n
            ms.bytes_sent[idx] = self.sent_b
            ms.messages_received[idx] = self.recv_n
            ms.bytes_received[idx] = self.recv_b
        else:
            ranks = self.run.ranks
            comm_t = self.comm_t.tolist()
            sent_n = self.sent_n.tolist()
            sent_b = self.sent_b.tolist()
            recv_n = self.recv_n.tolist()
            recv_b = self.recv_b.tolist()
            for g, m in enumerate(self.members):
                st = ranks[m]
                st.clock = clock[g]
                stats = st.stats
                stats.comm_time = comm_t[g]
                stats.messages_sent = sent_n[g]
                stats.bytes_sent = sent_b[g]
                stats.messages_received = recv_n[g]
                stats.bytes_received = recv_b[g]
        # Every overlay value is a plain Python float by construction
        # (send coerces, the round primitives store tolist products), so
        # the merge is one C-level bulk update.
        self.last.update(self.overlay)
        self.clock = clock


def _round_sizes(values: Sequence[Any]) -> Tuple[Any, int, bool]:
    """Wire sizes for one round's payloads: ``(nbytes, max, scalars)``.

    Python floats/ints dominate collective payloads and are a constant
    8 wire bytes (exactly what :func:`payload_nbytes` returns for
    them), so the common case skips the per-payload call.  ``scalars``
    additionally tells the caller that :func:`copy_payload` would be
    the identity on every payload.
    """
    if all(type(v) is float or type(v) is int for v in values):
        return 8, 8, True
    arr = np.fromiter(
        (payload_nbytes(v) for v in values), np.int64, count=len(values)
    )
    return arr, int(arr.max()) if len(values) else 0, False


# -- per-algorithm schedules ------------------------------------------------
#
# Each function replays the message algorithm's sends/recvs in an order
# consistent with the event path's causal order: round- or step-phased
# for symmetric patterns (all sends of a phase, then all recvs), and in
# dependency order for trees/rings/stars.  Within a phase, distinct
# ranks and distinct (src, dst) pairs make evaluation order irrelevant.


def _eval_barrier(s: _Sched, ghost: bool = False) -> List[Any]:
    p = s.p
    if 0 > s.eager_max:
        # An "everything rendezvous" configuration makes even the
        # empty-payload dissemination shifts synchronous, and the
        # pattern is cyclic: let the event path decide (it may
        # legitimately deadlock).
        raise _Bail
    idx = np.arange(p, dtype=np.intp)
    dist = 1
    while dist < p:
        dsts = idx + dist
        dsts[dsts >= p] -= p
        arrivals = s.send_round(idx, dsts, 0)  # nbytes 0: always eager
        s.recv_round(dsts, arrivals, 0)
        dist <<= 1
    return [None] if ghost else [None] * p


def _eval_bcast_tree(
    s: _Sched, root: int, value: Any, ghost: bool = False
) -> List[Any]:
    """Binomial tree, round-phased: in round k every virtual rank
    ``vr < 2**k`` that has its payload sends to ``vr + 2**k``.  Parent
    and child sets are disjoint within a round and every (parent,
    child) pair occurs exactly once in the whole tree, so the phased
    evaluation is order-equivalent to walking ranks in increasing
    virtual-rank order (each child's entry clock is untouched until its
    first-op recv runs, each parent's sends happen in mask order)."""
    p = s.p
    gr_of = np.arange(p, dtype=np.intp) + root  # virtual rank -> group rank
    gr_of[gr_of >= p] -= p
    if ghost:
        # Delivery copies preserve wire size, so the root payload sizes
        # every round; only group rank 0's delivery is observable, and
        # it follows the event path's buffering (scalars pass through,
        # anything else is a copy -- unless rank 0 *is* the root).
        scalars = type(value) is float or type(value) is int
        nbytes = 8 if scalars else payload_nbytes(value)
        mask = 1
        while mask < p:
            parents = np.arange(min(mask, p - mask), dtype=np.intp)
            children = parents + mask
            arrivals = s.send_round(gr_of[parents], gr_of[children], nbytes)
            s.recv_round(gr_of[children], arrivals, nbytes)
            mask <<= 1
        return [value if (root == 0 or scalars) else copy_payload(value)]
    vals: List[Any] = [None] * p     # delivered payloads, by virtual rank
    vals[0] = value
    out: List[Any] = [None] * p      # return values, by group rank
    mask = 1
    while mask < p:
        parents = np.arange(min(mask, p - mask), dtype=np.intp)
        children = parents + mask
        plist = parents.tolist()
        nbytes, _, scalars = _round_sizes([vals[vp] for vp in plist])
        arrivals = s.send_round(gr_of[parents], gr_of[children], nbytes)
        s.recv_round(gr_of[children], arrivals, nbytes)
        if scalars:
            for vp, vc in zip(plist, children.tolist()):
                vals[vc] = vals[vp]
        else:
            for vp, vc in zip(plist, children.tolist()):
                vals[vc] = copy_payload(vals[vp])
        mask <<= 1
    for vr in range(p):
        out[gr_of[vr]] = vals[vr]
    return out


def _eval_bcast_tree_nb(
    s: _Sched, root: int, value: Any, ghost: bool = False
) -> List[Any]:
    """Non-blocking binomial tree (lu2d/summa's pipelined panel path).

    With every message eager, ``tree_nb`` is expression-identical to
    the blocking tree: an eager isend charges the same overhead at the
    same clock as a blocking send and resumes at the same ``clear``,
    and the trailing waits find ready handles (``complete_at`` is
    always <= the waiter's clock), costing zero comm time and moving no
    clock.  Payload size is invariant down the tree (delivery copies
    preserve it), so one root-size check covers every round.  Any
    rendezvous-sized message decouples the transfer from the sender's
    progress -- real overlap only the event path reproduces -- so bail.
    """
    if payload_nbytes(value) > s.eager_max:
        raise _Bail
    return _eval_bcast_tree(s, root, value, ghost)


def _eval_bcast_ring(s: _Sched, root: int, value: Any) -> List[Any]:
    p = s.p
    out: List[Any] = [None] * p
    v = value
    arrival = 0.0
    nbytes = 0
    nxt: Any = None
    for vr in range(p):
        g = vr + root
        if g >= p:
            g -= p
        if vr > 0:
            s.recv(g, arrival, nbytes)
            v = nxt
        if vr < p - 1:
            right = g + 1
            if right >= p:
                right -= p
            nbytes = payload_nbytes(v)
            arrival = s.send(g, right, nbytes)
            nxt = copy_payload(v)
        out[g] = v
    return out


def _eval_bcast_flat(s: _Sched, root: int, value: Any) -> List[Any]:
    p = s.p
    out: List[Any] = [None] * p
    out[root] = value
    nbytes = payload_nbytes(value)
    for dst in range(p):
        if dst == root:
            continue
        arrival = s.send(root, dst, nbytes)
        s.recv(dst, arrival, nbytes)
        out[dst] = copy_payload(value)
    return out


def _eval_reduce(s: _Sched, root: int, reqs: Sequence[CollectiveReq]) -> List[Any]:
    """Binomial reduction: round-phased by mask; pairs within a round
    are disjoint.  Each receiver combines with *its own* resolved op,
    as the event path does."""
    p = s.p
    accs: List[Any] = [None] * p  # by virtual rank
    for g in range(p):
        vr = g - root
        if vr < 0:
            vr += p
        accs[vr] = reqs[g].value
    gr_of = np.arange(p, dtype=np.intp) + root  # virtual rank -> group rank
    gr_of[gr_of >= p] -= p
    mask = 1
    while mask < p:
        step = mask << 1
        vrs = np.arange(0, p, step, dtype=np.intp)
        partners = vrs + mask
        alive = partners < p
        vrs = vrs[alive]
        partners = partners[alive]
        if len(vrs):
            receivers = gr_of[vrs]
            senders = gr_of[partners]
            plist = partners.tolist()
            nbytes, _, scalars = _round_sizes([accs[pt] for pt in plist])
            arrivals = s.send_round(senders, receivers, nbytes)
            s.recv_round(receivers, arrivals, nbytes)
            if scalars:
                for v, pt, g in zip(vrs.tolist(), plist, receivers.tolist()):
                    accs[v] = reqs[g].op(accs[v], accs[pt])
            else:
                for v, pt, g in zip(vrs.tolist(), plist, receivers.tolist()):
                    accs[v] = reqs[g].op(accs[v], copy_payload(accs[pt]))
        mask = step
    out: List[Any] = [None] * p
    out[root] = accs[0]
    return out


def _eval_allreduce_rd(s: _Sched, reqs: Sequence[CollectiveReq]) -> List[Any]:
    """Recursive doubling: acyclic fold of the non-power-of-two excess,
    eager-only butterfly, acyclic hand-back."""
    p = s.p
    accs = [req.value for req in reqs]
    pof2 = 1
    while pof2 * 2 <= p:
        pof2 *= 2
    rem = p - pof2
    for r in range(pof2, p):  # fold: r's send and (r - pof2)'s recv are first ops
        payload = accs[r]
        nbytes = payload_nbytes(payload)
        arrival = s.send(r, r - pof2, nbytes)
        s.recv(r - pof2, arrival, nbytes)
        accs[r - pof2] = reqs[r - pof2].op(accs[r - pof2], copy_payload(payload))
    idx = np.arange(pof2, dtype=np.intp)
    mask = 1
    while mask < pof2:
        snapshot = accs[:pof2]  # payloads are the round-start accumulators
        nbytes, nb_max, scalars = _round_sizes(snapshot)
        if nb_max > s.eager_max:
            raise _Bail  # rendezvous inside the butterfly: event path decides
        partners = idx ^ mask
        arrivals = s.send_round(idx, partners, nbytes)
        s.recv_round(partners, arrivals, nbytes)
        if scalars:
            for r in range(pof2):
                accs[r] = reqs[r].op(accs[r], snapshot[r ^ mask])
        else:
            for r in range(pof2):
                accs[r] = reqs[r].op(accs[r], copy_payload(snapshot[r ^ mask]))
        mask <<= 1
    for r in range(rem):  # hand-back: receiver has been idle since the fold
        payload = accs[r]
        nbytes = payload_nbytes(payload)
        arrival = s.send(r, r + pof2, nbytes)
        s.recv(r + pof2, arrival, nbytes)
        accs[r + pof2] = copy_payload(payload)
    return accs


def _eval_allgather_ring(s: _Sched, reqs: Sequence[CollectiveReq]) -> List[Any]:
    p = s.p
    outs: List[List[Any]] = [[None] * p for _ in range(p)]
    carries = list(range(p))
    for r in range(p):
        outs[r][r] = reqs[r].value  # own slot keeps the original object
    for _step in range(p - 1):
        payloads: List[Any] = [None] * p
        arrivals = [0.0] * p
        nbv = [0] * p
        for r in range(p):
            c = carries[r]
            payload = (c, outs[r][c])
            nbytes = payload_nbytes(payload)
            right = r + 1
            if right >= p:
                right -= p
            arrivals[right] = s.send_eager(r, right, nbytes)
            nbv[right] = nbytes
            payloads[r] = payload
        for r in range(p):
            left = r - 1
            if left < 0:
                left += p
            s.recv(r, arrivals[r], nbv[r])
            c, payload = copy_payload(payloads[left])
            outs[r][c] = payload
            carries[r] = c
    return outs


def _eval_alltoall(s: _Sched, reqs: Sequence[CollectiveReq]) -> List[Any]:
    p = s.p
    vals = [req.value for req in reqs]  # each a length-p list of payloads
    outs: List[List[Any]] = []
    for r in range(p):
        o: List[Any] = [None] * p
        o[r] = vals[r][r]  # own slot keeps the original object
        outs.append(o)
    for shift in range(1, p):
        arrivals = [0.0] * p
        nbv = [0] * p
        for r in range(p):
            dst = r + shift
            if dst >= p:
                dst -= p
            nbytes = payload_nbytes(vals[r][dst])
            arrivals[dst] = s.send_eager(r, dst, nbytes)
            nbv[dst] = nbytes
        for r in range(p):
            src = r - shift
            if src < 0:
                src += p
            s.recv(r, arrivals[r], nbv[r])
            outs[r][src] = copy_payload(vals[src][r])
    return outs


def evaluate(
    run: Any,
    members: Sequence[int],
    reqs: Sequence[CollectiveReq],
    clocks: Sequence[float],
    ghost: bool = False,
) -> Optional[Tuple[List[float], List[Any]]]:
    """Evaluate one complete collective invocation analytically.

    ``reqs``/``clocks`` are indexed by group rank; ``members`` maps
    group rank to global rank.  Returns ``(finish_times, values)`` per
    group rank with clocks/stats/clamp-state already committed, or
    ``None`` when the schedule cannot be reproduced exactly (the caller
    then falls back to the event path; nothing was mutated).

    ``ghost`` is the closed-form engine's contract: every entry of
    ``reqs`` is the *same* request object (a rank-symmetric program
    priced from rank 0's yields) and only group rank 0's result is
    observable, so evaluators that would otherwise materialize one
    delivered payload per member (exchange, tree broadcasts, barrier)
    return a single-element list instead -- identical pricing, O(1)
    result assembly.  The remaining evaluators ignore the flag and
    return all p values.
    """
    req0 = reqs[0]
    kind = req0.kind
    s = _Sched(run, members, clocks)
    try:
        if kind == "barrier":
            out = _eval_barrier(s, ghost)
        elif kind == "bcast":
            root = req0.root
            value = reqs[root].value
            alg = req0.algorithm
            if alg == "tree":
                out = _eval_bcast_tree(s, root, value, ghost)
            elif alg == "tree_nb":
                out = _eval_bcast_tree_nb(s, root, value, ghost)
            elif alg == "ring":
                out = _eval_bcast_ring(s, root, value)
            elif alg == "flat":
                out = _eval_bcast_flat(s, root, value)
            else:
                return None
        elif kind == "reduce":
            out = _eval_reduce(s, req0.root, reqs)
        elif kind == "allreduce":
            out = _eval_allreduce_rd(s, reqs)
        elif kind == "allgather":
            out = _eval_allgather_ring(s, reqs)
        elif kind == "alltoall":
            out = _eval_alltoall(s, reqs)
        elif kind == "exchange":
            # Stencil phase: the evaluator lives with its spec in
            # stencil.py, which imports this module (local import keeps
            # the dependency acyclic).
            from repro.simmpi.stencil import eval_exchange
            out = eval_exchange(s, reqs, ghost)
        else:
            return None
    except _Bail:
        return None
    s.commit()
    return s.clock, out
