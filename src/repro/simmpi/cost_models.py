"""Closed-form collective cost models, validated against the simulator.

The classic first-order estimates (alpha = startup, beta = byte time,
p ranks, n bytes):

    bcast  (binomial) : ceil(log2 p) * (2*alpha + n*beta)
    reduce (binomial) : ceil(log2 p) * (2*alpha + n*beta)
    allreduce (r.d.)  : ceil(log2 p) * (3*alpha + n*beta)   [send+recv]
    allgather (ring)  : (p-1) * (2*alpha + n*beta)
    alltoall (cyclic) : (p-1) * (3*alpha + n*beta)
    barrier (dissem.) : ceil(log2 p) * alpha

(The barrier's zero-byte tokens pipeline perfectly: each round's send
overhead hides the previous round's wire latency, so one alpha per
round -- exact against the engine, as the tests pin down.)

The constants track this engine's accounting (a sender is busy one
alpha per message; arrival costs another alpha plus the byte time), so
on a crossbar the models land within tens of percent of the simulated
collectives -- close enough to choose algorithms with, which is their
historical job.  ``validate_model`` quantifies the gap; the test suite
pins it below 50 % for the supported shapes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict

from repro.machine.links import LinkModel
from repro.util.errors import ConfigurationError


def _check(p: int, nbytes: float) -> None:
    if p < 1:
        raise ConfigurationError(f"p must be >= 1, got {p}")
    if nbytes < 0:
        raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")


def _rounds(p: int) -> int:
    return math.ceil(math.log2(p)) if p > 1 else 0


def bcast_time(p: int, nbytes: float, link: LinkModel) -> float:
    """Binomial-tree broadcast estimate."""
    _check(p, nbytes)
    beta = nbytes / link.bandwidth_bytes_per_s
    return _rounds(p) * (2 * link.latency_s + beta)


def reduce_time(p: int, nbytes: float, link: LinkModel) -> float:
    """Binomial-tree reduction estimate (combining cost ignored)."""
    return bcast_time(p, nbytes, link)


def allreduce_time(p: int, nbytes: float, link: LinkModel) -> float:
    """Recursive-doubling estimate: each round is a send plus a
    same-size receive."""
    _check(p, nbytes)
    beta = nbytes / link.bandwidth_bytes_per_s
    return _rounds(p) * (3 * link.latency_s + beta)


def allgather_ring_time(p: int, nbytes: float, link: LinkModel) -> float:
    """Ring allgather estimate: p-1 shift steps."""
    _check(p, nbytes)
    if p == 1:
        return 0.0
    beta = nbytes / link.bandwidth_bytes_per_s
    return (p - 1) * (2 * link.latency_s + beta)


def alltoall_time(p: int, nbytes: float, link: LinkModel) -> float:
    """Cyclic-shift alltoall estimate: p-1 send+recv rounds."""
    _check(p, nbytes)
    if p == 1:
        return 0.0
    beta = nbytes / link.bandwidth_bytes_per_s
    return (p - 1) * (3 * link.latency_s + beta)


def barrier_time(p: int, link: LinkModel) -> float:
    """Dissemination barrier estimate (one alpha per round; the
    zero-byte rounds pipeline, see module docstring)."""
    _check(p, 0)
    return _rounds(p) * link.latency_s


MODELS: Dict[str, Callable] = {
    "bcast": bcast_time,
    "reduce": reduce_time,
    "allreduce": allreduce_time,
    "allgather": allgather_ring_time,
    "alltoall": alltoall_time,
}


@dataclass(frozen=True)
class ModelValidation:
    """Model-vs-simulation comparison for one collective shape."""

    collective: str
    p: int
    nbytes: float
    modelled_s: float
    simulated_s: float

    @property
    def relative_error(self) -> float:
        if self.simulated_s == 0:
            return 0.0 if self.modelled_s == 0 else float("inf")
        return abs(self.modelled_s - self.simulated_s) / self.simulated_s


def validate_model(collective: str, machine, p: int, nbytes: float) -> ModelValidation:
    """Run the real collective on the simulator and compare the model.

    Uses a crossbar-topology assumption for the model (hop effects are
    the machine's business); pass crossbar machines for tight numbers.
    """
    import numpy as np

    from repro.simmpi.engine import run_program

    try:
        model = MODELS[collective]
    except KeyError:
        raise ConfigurationError(
            f"unknown collective {collective!r}; have {sorted(MODELS)}"
        ) from None

    payload = np.zeros(max(1, int(nbytes // 8)))

    def program(comm):
        if collective == "bcast":
            value = payload if comm.rank == 0 else None
            yield from comm.bcast(value)
        elif collective == "reduce":
            yield from comm.reduce(payload)
        elif collective == "allreduce":
            yield from comm.allreduce(payload, algorithm="recursive_doubling")
        elif collective == "allgather":
            yield from comm.allgather(payload)
        else:  # alltoall
            yield from comm.alltoall([payload] * comm.size)

    sim = run_program(machine, p, program)
    return ModelValidation(
        collective=collective,
        p=p,
        nbytes=float(payload.nbytes),
        modelled_s=model(p, float(payload.nbytes), machine.link),
        simulated_s=sim.time,
    )
