"""Primitive requests rank programs yield to the simulator engine.

A rank program is a generator.  It communicates by yielding request
objects; the engine interprets each request, advances virtual time, and
resumes the generator with the request's result (e.g. the received
message).  User code goes through the :class:`~repro.simmpi.comm.Comm`
facade rather than constructing these directly.

Semantics follow the NX/MPI eager-buffered model of the era's
machines: a send copies its payload, charges the sender the software
startup cost, and completes without waiting for the receiver -- the
message then arrives at the destination after the routed network delay.
This is why classic ring shifts written with blocking ``send`` do not
deadlock, exactly as on the real Delta for messages under the eager
threshold.

The request types are deliberately *plain slotted classes* rather than
dataclasses: requests and in-flight records are the single most
frequently allocated objects in the simulator, and ``__slots__`` plus a
hand-written ``__init__`` keeps both allocation and attribute access on
the engine's fast path cheap.  They are also mutable on purpose -- the
:class:`~repro.simmpi.comm.Comm` facade reuses one scratch instance per
request type per rank, refilled per call, because the engine always
consumes a request's fields before the yielding generator can run
again.
"""

from __future__ import annotations

import copy
from typing import Any, Optional

import numpy as np

from repro.util.errors import CommunicationError

#: Wildcard source rank for receives.
ANY_SOURCE = -1
#: Wildcard message tag for receives.
ANY_TAG = -1

#: Tags >= 0 are user tags; the collective library uses this negative
#: base so its internal traffic can never match a user receive.
COLLECTIVE_TAG_BASE = -1000


def payload_nbytes(payload: Any) -> int:
    """Wire size of a payload in bytes.

    NumPy arrays report their true buffer size; Python scalars count as
    one 8-byte word; ``bytes`` count their length; containers sum their
    elements plus a small per-element header.  ``None`` (a pure
    synchronisation token) is free.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, np.generic):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, (int, float, complex, bool)):
        return 8
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (tuple, list)):
        return sum(payload_nbytes(p) + 8 for p in payload)
    if isinstance(payload, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) + 16 for k, v in payload.items())
    # Conservative default for opaque objects.
    return 64


def copy_payload(payload: Any) -> Any:
    """Buffered-send copy: the sender may overwrite its buffer after the
    send returns, so the in-flight message must be independent."""
    if isinstance(payload, np.ndarray):  # by far the common case
        return payload.copy()
    if payload is None or isinstance(payload, (int, float, complex, bool, str, bytes)):
        return payload
    return copy.deepcopy(payload)


class SendReq:
    """Eager buffered send of ``payload`` to ``dest`` with ``tag``.

    ``nbytes`` overrides the modelled wire size in bytes; ``None``
    means measure the payload.
    """

    __slots__ = ("dest", "payload", "tag", "nbytes")

    def __init__(
        self,
        dest: int = 0,
        payload: Any = None,
        tag: int = 0,
        nbytes: Optional[float] = None,
    ):
        self.dest = dest
        self.payload = payload
        self.tag = tag
        self.nbytes = nbytes

    def wire_bytes(self) -> float:
        return payload_nbytes(self.payload) if self.nbytes is None else self.nbytes

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(dest={self.dest}, payload={self.payload!r}, "
            f"tag={self.tag}, nbytes={self.nbytes})"
        )


class IsendReq(SendReq):
    """Non-blocking send: posts the transfer and returns a handle
    immediately.  Complete it with :class:`WaitReq` (which yields
    ``None`` for send handles).

    Under the eager protocol the payload is buffered at post time, so
    the handle is already complete when it is returned; the request
    exists for symmetry and for the rendezvous protocol, where the
    *sender does not block* on the handshake -- the transfer starts
    whenever the receiver posts, and only :class:`WaitReq` synchronises.
    This is exactly why ``MPI_Isend`` breaks the symmetric
    blocking-send deadlock above the eager threshold.
    """

    __slots__ = ()


class RecvReq:
    """Blocking receive matching ``source`` and ``tag`` (wildcards allowed)."""

    __slots__ = ("source", "tag")

    def __init__(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        self.source = source
        self.tag = tag

    def __repr__(self) -> str:
        return f"{type(self).__name__}(source={self.source}, tag={self.tag})"


class IrecvReq(RecvReq):
    """Non-blocking receive: posts a matching slot and returns a handle
    immediately.  Complete it with :class:`WaitReq`."""

    __slots__ = ()


class WaitReq:
    """Block until the request identified by ``handle`` completes.

    Resumes with the delivered :class:`Message` for receive handles and
    with ``None`` for send handles.
    """

    __slots__ = ("handle",)

    def __init__(self, handle: int):
        self.handle = handle

    def __repr__(self) -> str:
        return f"WaitReq(handle={self.handle})"


class WaitanyReq:
    """Block until *any* of ``handles`` completes; resumes with
    ``(index, message_or_None)`` where ``index`` is the position in
    ``handles`` of the completed request.

    When several requests are already completable, the one with the
    earliest completion time wins (ties broken by list position) -- a
    deterministic refinement of MPI's ``MPI_Waitany``, in the same
    spirit as the engine's ``ANY_SOURCE`` resolution.
    """

    __slots__ = ("handles",)

    def __init__(self, handles: tuple):
        if not handles:
            raise CommunicationError("waitany needs at least one handle")
        self.handles = handles

    def __repr__(self) -> str:
        return f"WaitanyReq(handles={self.handles})"


class CollectiveReq:
    """One rank's entry into a macro-evaluated collective.

    Yielded by the collective library's dispatch layer when the engine
    enabled macro-ops (untraced, plain alpha-beta delivery, no fault
    injection): instead of running the per-message algorithm, every
    member parks on this request and the engine hands the whole
    invocation to :mod:`repro.simmpi.macro`, which computes the same
    schedule in closed form.  The engine matches invocations across
    ranks by ``(members, seq, kind, algorithm, root)`` -- ``seq`` is the
    communicator's collective sequence number, so back-to-back
    collectives can never merge (the macro analogue of the tag-block
    sense reversal).

    Unlike the point-to-point requests this is *not* a reused scratch
    object: the engine holds it until all members arrive, so each
    invocation allocates a fresh one (collectives are rare relative to
    the messages they replace).
    """

    __slots__ = (
        "members", "seq", "kind", "algorithm", "root", "op", "value",
        "grank", "size",
    )

    def __init__(
        self,
        members: Optional[tuple],
        seq: int,
        kind: str,
        algorithm: Any,
        root: int,
        op: Any,
        value: Any,
        grank: int,
        size: int,
    ):
        #: Global ranks by group rank, or None for the world communicator.
        self.members = members
        self.seq = seq
        self.kind = kind
        #: Algorithm name for collectives; the declared
        #: :class:`~repro.simmpi.stencil.StencilSpec` for exchange phases.
        self.algorithm = algorithm
        self.root = root
        #: Resolved combiner for reductions (None otherwise).
        self.op = op
        self.value = value
        #: This rank's position within the group.
        self.grank = grank
        self.size = size

    def __repr__(self) -> str:
        return (
            f"CollectiveReq(kind={self.kind}, algorithm={self.algorithm}, "
            f"seq={self.seq}, grank={self.grank}, size={self.size})"
        )


class _MacroFallback:
    """Resume sentinel: the macro evaluator declined this invocation
    (rendezvous cycle, non-empty queues, unsupported shape); the
    yielding wrapper must re-run the real message algorithm inline."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "MACRO_FALLBACK"


#: Singleton handed back through CollectiveReq when the engine wants the
#: event-path algorithm after all.
MACRO_FALLBACK = _MacroFallback()


class ComputeReq:
    """Charge local computation to the rank's clock.

    Exactly one of ``flops`` or ``seconds`` must be set.  ``efficiency``
    overrides the node's sustained fraction for flops-based charging.
    """

    __slots__ = ("flops", "seconds", "efficiency")

    def __init__(
        self,
        flops: Optional[float] = None,
        seconds: Optional[float] = None,
        efficiency: Optional[float] = None,
    ):
        validate_compute(flops, seconds)
        self.flops = flops
        self.seconds = seconds
        self.efficiency = efficiency

    def __repr__(self) -> str:
        return (
            f"ComputeReq(flops={self.flops}, seconds={self.seconds}, "
            f"efficiency={self.efficiency})"
        )


def validate_compute(flops: Optional[float], seconds: Optional[float]) -> None:
    """Shared argument check for compute charging (used both by
    :class:`ComputeReq` and by the scratch-reusing ``Comm.compute``)."""
    if (flops is None) == (seconds is None):
        raise CommunicationError(
            "ComputeReq needs exactly one of flops= or seconds="
        )
    value = flops if flops is not None else seconds
    if value < 0:
        raise CommunicationError(f"compute amount must be >= 0, got {value}")


class Message:
    """A delivered message, returned to the receiving rank.

    ``arrival_time`` is the virtual time the message became available
    at the destination.
    """

    __slots__ = ("payload", "source", "tag", "arrival_time")

    def __init__(self, payload: Any, source: int, tag: int, arrival_time: float = 0.0):
        self.payload = payload
        self.source = source
        self.tag = tag
        self.arrival_time = arrival_time

    def __repr__(self) -> str:
        return (
            f"Message(payload={self.payload!r}, source={self.source}, "
            f"tag={self.tag}, arrival_time={self.arrival_time})"
        )


class InFlight:
    """Engine-internal record of a posted, not-yet-consumed message.

    ``send_time`` is the virtual time the sender issued the send (for
    rendezvous this is the post time, not the handshake); it is
    threaded into trace records.  ``wire`` is the causal wire edge for
    span tracing (set only when tracing): what preceded this message's
    transfer and when its wire began.
    """

    __slots__ = (
        "dest", "source", "tag", "payload", "nbytes",
        "arrival_time", "seq", "send_time", "wire",
    )

    def __init__(
        self,
        dest: int,
        source: int,
        tag: int,
        payload: Any,
        nbytes: float,
        arrival_time: float,
        seq: int = 0,
        send_time: float = 0.0,
        wire: Any = None,
    ):
        self.dest = dest
        self.source = source
        self.tag = tag
        self.payload = payload
        self.nbytes = nbytes
        self.arrival_time = arrival_time
        self.seq = seq
        self.send_time = send_time
        self.wire = wire

    def matches(self, req: RecvReq) -> bool:
        if req.source != ANY_SOURCE and req.source != self.source:
            return False
        if req.tag != ANY_TAG and req.tag != self.tag:
            return False
        return True
