"""Primitive requests rank programs yield to the simulator engine.

A rank program is a generator.  It communicates by yielding request
objects; the engine interprets each request, advances virtual time, and
resumes the generator with the request's result (e.g. the received
message).  User code goes through the :class:`~repro.simmpi.comm.Comm`
facade rather than constructing these directly.

Semantics follow the NX/MPI eager-buffered model of the era's
machines: a send copies its payload, charges the sender the software
startup cost, and completes without waiting for the receiver -- the
message then arrives at the destination after the routed network delay.
This is why classic ring shifts written with blocking ``send`` do not
deadlock, exactly as on the real Delta for messages under the eager
threshold.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.util.errors import CommunicationError

#: Wildcard source rank for receives.
ANY_SOURCE = -1
#: Wildcard message tag for receives.
ANY_TAG = -1

#: Tags >= 0 are user tags; the collective library uses this negative
#: base so its internal traffic can never match a user receive.
COLLECTIVE_TAG_BASE = -1000


def payload_nbytes(payload: Any) -> int:
    """Wire size of a payload in bytes.

    NumPy arrays report their true buffer size; Python scalars count as
    one 8-byte word; ``bytes`` count their length; containers sum their
    elements plus a small per-element header.  ``None`` (a pure
    synchronisation token) is free.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, np.generic):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, (int, float, complex, bool)):
        return 8
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (tuple, list)):
        return sum(payload_nbytes(p) + 8 for p in payload)
    if isinstance(payload, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) + 16 for k, v in payload.items())
    # Conservative default for opaque objects.
    return 64


def copy_payload(payload: Any) -> Any:
    """Buffered-send copy: the sender may overwrite its buffer after the
    send returns, so the in-flight message must be independent."""
    if payload is None or isinstance(payload, (int, float, complex, bool, str, bytes)):
        return payload
    if isinstance(payload, np.ndarray):
        return payload.copy()
    return copy.deepcopy(payload)


@dataclass(frozen=True)
class SendReq:
    """Eager buffered send of ``payload`` to ``dest`` with ``tag``."""

    dest: int
    payload: Any
    tag: int = 0
    #: Override the modelled wire size (bytes); None = measure payload.
    nbytes: Optional[float] = None

    def wire_bytes(self) -> float:
        return payload_nbytes(self.payload) if self.nbytes is None else self.nbytes


@dataclass(frozen=True)
class IsendReq:
    """Non-blocking send: posts the transfer and returns a handle
    immediately.  Complete it with :class:`WaitReq` (which yields
    ``None`` for send handles).

    Under the eager protocol the payload is buffered at post time, so
    the handle is already complete when it is returned; the request
    exists for symmetry and for the rendezvous protocol, where the
    *sender does not block* on the handshake -- the transfer starts
    whenever the receiver posts, and only :class:`WaitReq` synchronises.
    This is exactly why ``MPI_Isend`` breaks the symmetric
    blocking-send deadlock above the eager threshold.
    """

    dest: int
    payload: Any
    tag: int = 0
    nbytes: Optional[float] = None

    def wire_bytes(self) -> float:
        return payload_nbytes(self.payload) if self.nbytes is None else self.nbytes


@dataclass(frozen=True)
class RecvReq:
    """Blocking receive matching ``source`` and ``tag`` (wildcards allowed)."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG


@dataclass(frozen=True)
class IrecvReq:
    """Non-blocking receive: posts a matching slot and returns a handle
    immediately.  Complete it with :class:`WaitReq`."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG


@dataclass(frozen=True)
class WaitReq:
    """Block until the request identified by ``handle`` completes.

    Resumes with the delivered :class:`Message` for receive handles and
    with ``None`` for send handles.
    """

    handle: int


@dataclass(frozen=True)
class WaitanyReq:
    """Block until *any* of ``handles`` completes; resumes with
    ``(index, message_or_None)`` where ``index`` is the position in
    ``handles`` of the completed request.

    When several requests are already completable, the one with the
    earliest completion time wins (ties broken by list position) -- a
    deterministic refinement of MPI's ``MPI_Waitany``, in the same
    spirit as the engine's ``ANY_SOURCE`` resolution.
    """

    handles: tuple

    def __post_init__(self) -> None:
        if not self.handles:
            raise CommunicationError("waitany needs at least one handle")


@dataclass(frozen=True)
class ComputeReq:
    """Charge local computation to the rank's clock.

    Exactly one of ``flops`` or ``seconds`` must be set.  ``efficiency``
    overrides the node's sustained fraction for flops-based charging.
    """

    flops: Optional[float] = None
    seconds: Optional[float] = None
    efficiency: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.flops is None) == (self.seconds is None):
            raise CommunicationError(
                "ComputeReq needs exactly one of flops= or seconds="
            )
        value = self.flops if self.flops is not None else self.seconds
        if value < 0:
            raise CommunicationError(f"compute amount must be >= 0, got {value}")


@dataclass(frozen=True)
class Message:
    """A delivered message, returned to the receiving rank."""

    payload: Any
    source: int
    tag: int
    #: Virtual time the message became available at the destination.
    arrival_time: float = 0.0


@dataclass
class InFlight:
    """Engine-internal record of a posted, not-yet-consumed message."""

    dest: int
    source: int
    tag: int
    payload: Any
    nbytes: float
    arrival_time: float
    seq: int = field(default=0)
    #: Virtual time the sender issued the send (for rendezvous this is
    #: the post time, not the handshake); threaded into trace records.
    send_time: float = field(default=0.0)
    #: Causal wire edge for span tracing (set only when tracing): what
    #: preceded this message's transfer and when its wire began.
    wire: Any = field(default=None)

    def matches(self, req: RecvReq) -> bool:
        if req.source != ANY_SOURCE and req.source != self.source:
            return False
        if req.tag != ANY_TAG and req.tag != self.tag:
            return False
        return True
