"""Per-rank statistics and optional message tracing.

The simulator always accumulates cheap aggregate statistics; full
message logs are opt-in because a 512-rank LU run generates hundreds of
thousands of messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class RankStats:
    """Aggregate accounting for one rank."""

    rank: int
    compute_time: float = 0.0
    #: Sender-side startup overhead plus receiver-side blocked time.
    comm_time: float = 0.0
    messages_sent: int = 0
    bytes_sent: float = 0.0
    messages_received: int = 0
    bytes_received: float = 0.0
    finish_time: float = 0.0

    @property
    def busy_time(self) -> float:
        """Compute plus communication time (excludes pure idling that
        was not attributable to a blocked receive)."""
        return self.compute_time + self.comm_time


@dataclass(frozen=True)
class MessageRecord:
    """One traced message (opt-in)."""

    source: int
    dest: int
    tag: int
    nbytes: float
    send_time: float
    arrival_time: float
    recv_time: float


@dataclass
class Tracer:
    """Collects message records when enabled; bounded to avoid runaway
    memory on large runs."""

    enabled: bool = False
    max_records: int = 200_000
    records: List[MessageRecord] = field(default_factory=list)
    dropped: int = 0

    def record(self, rec: MessageRecord) -> None:
        if not self.enabled:
            return
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(rec)

    def total_bytes(self) -> float:
        return sum(r.nbytes for r in self.records)

    def by_pair(self) -> dict:
        """Message counts keyed by (source, dest)."""
        out: dict = {}
        for r in self.records:
            key = (r.source, r.dest)
            out[key] = out.get(key, 0) + 1
        return out
