"""Per-rank statistics, message tracing, and typed activity spans.

The simulator always accumulates cheap aggregate statistics; full
message logs and **span traces** are opt-in (``Engine(trace=True)``)
because a 512-rank LU run generates hundreds of thousands of events.

A :class:`Span` is one typed, timestamped activity interval on one
rank's virtual timeline: a compute burst, a send-startup window, a
rendezvous park, a blocked receive.  Per rank the recorded spans tile
``[0, finish_time]`` (gaps are explicit ``idle`` spans), and spans
whose end time was *determined by another rank* carry a
:class:`SpanCause` -- the causal edge (message wire, rendezvous
handshake) that :mod:`repro.obs.critical_path` walks backwards to
extract the makespan-determining chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

# -- span kinds (engine-recorded categories) --------------------------------

#: Local computation charged via ``ComputeReq``.
COMPUTE = "compute"
#: Sender-side injection overhead (eager post, or post-handshake).
SEND = "send"
#: Blocking rendezvous sender parked awaiting its handshake.
RNDV_WAIT = "rendezvous-wait"
#: Rank blocked in a receive (recv, or wait on a receive handle).
RECV_WAIT = "recv-wait"
#: Rank blocked in a wait on an isend handle.
SEND_WAIT = "send-wait"
#: Unattributed gap on a rank's timeline (explicit, so spans tile).
IDLE = "idle"

#: All engine-recorded span kinds.
SPAN_KINDS = (COMPUTE, SEND, RNDV_WAIT, RECV_WAIT, SEND_WAIT, IDLE)


@dataclass(frozen=True)
class SpanCause:
    """Why a span ended when it did, when another rank decided that.

    Two kinds of causal edge exist:

    * ``"msg"`` -- a message arrival ended the span (blocked receive).
      The wire occupied ``[wire_start, span.t1]``; ``wire_min_end`` is
      the uncontended alpha-beta arrival, so any excess is contention
      (shared links, FIFO clamping).  ``src_sid`` is the sender-side
      span that injected the message (or -1 when the sender never
      blocked, i.e. a rendezvous isend).
    * ``"rank"`` -- another rank's *action* ended the span (a
      rendezvous handshake released a parked sender or completed an
      isend handle).  The critical path continues on ``src_rank``'s
      timeline at ``src_time``.

    Causes are only attached when they were **binding** -- the remote
    event strictly determined the span's end -- so the critical-path
    walker never has to re-derive who won a ``max()``.
    """

    kind: str
    src_rank: int
    src_time: float
    src_sid: int = -1
    wire_start: float = 0.0
    wire_min_end: float = 0.0


@dataclass(frozen=True)
class Span:
    """One typed activity interval on one rank's virtual timeline."""

    sid: int
    rank: int
    kind: str
    t0: float
    t1: float
    #: Phase label active when the activity ran (``comm.phase(...)``).
    name: Optional[str] = None
    #: Peer rank for communication spans (-1 for local activity).
    peer: int = -1
    tag: int = 0
    nbytes: float = 0.0
    cause: Optional[SpanCause] = None

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass(slots=True)
class RankStats:
    """Aggregate accounting for one rank."""

    rank: int
    compute_time: float = 0.0
    #: Sender-side startup overhead plus blocked communication time.
    comm_time: float = 0.0
    #: Gaps on the rank's timeline not attributable to compute or to a
    #: blocked communication call (event scheduled past the clock).
    idle_time: float = 0.0
    messages_sent: int = 0
    bytes_sent: float = 0.0
    messages_received: int = 0
    bytes_received: float = 0.0
    finish_time: float = 0.0

    @property
    def busy_time(self) -> float:
        """Compute plus communication time (excludes idle gaps)."""
        return self.compute_time + self.comm_time

    @property
    def accounted_time(self) -> float:
        """Compute + comm + idle; equals ``finish_time`` per rank (up
        to float accumulation error), asserted in tests."""
        return self.compute_time + self.comm_time + self.idle_time


@dataclass(frozen=True)
class MessageRecord:
    """One traced message (opt-in)."""

    source: int
    dest: int
    tag: int
    nbytes: float
    send_time: float
    arrival_time: float
    recv_time: float


@dataclass
class Tracer:
    """Collects message records and spans when enabled; bounded to
    avoid runaway memory on large runs."""

    enabled: bool = False
    max_records: int = 200_000
    records: List[MessageRecord] = field(default_factory=list)
    dropped: int = 0
    max_spans: int = 500_000
    spans: List[Span] = field(default_factory=list)
    dropped_spans: int = 0
    _sid: int = 0

    def record(self, rec: MessageRecord) -> None:
        if not self.enabled:
            return
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(rec)

    def span(
        self,
        rank: int,
        kind: str,
        t0: float,
        t1: float,
        *,
        name: Optional[str] = None,
        peer: int = -1,
        tag: int = 0,
        nbytes: float = 0.0,
        cause: Optional[SpanCause] = None,
    ) -> int:
        """Record one span; returns its id (-1 if disabled/dropped).

        Callers guard on :attr:`enabled` before computing arguments so
        untraced runs pay only that attribute check.
        """
        if not self.enabled:
            return -1
        if len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
            return -1
        sid = self._sid
        self._sid += 1
        self.spans.append(
            Span(
                sid=sid,
                rank=rank,
                kind=kind,
                t0=t0,
                t1=t1,
                name=name,
                peer=peer,
                tag=tag,
                nbytes=nbytes,
                cause=cause,
            )
        )
        return sid

    def spans_by_rank(self) -> Dict[int, List[Span]]:
        """Spans grouped per rank, preserving recording order (which is
        chronological per rank: a rank's spans are appended only while
        it is the active or completing rank)."""
        out: Dict[int, List[Span]] = {}
        for span in self.spans:
            out.setdefault(span.rank, []).append(span)
        return out

    def total_bytes(self) -> float:
        return sum(r.nbytes for r in self.records)

    def by_pair(self) -> dict:
        """Message counts keyed by (source, dest)."""
        out: dict = {}
        for r in self.records:
            key = (r.source, r.dest)
            out[key] = out.get(key, 0) + 1
        return out
