"""Collective operations built from point-to-point messages.

Nothing here is costed analytically: the collectives are real message
algorithms (binomial trees, recursive doubling, dissemination, rings)
whose virtual-time cost *emerges* from the engine's alpha-beta link
model.  This is what makes the tree-vs-ring and mesh-vs-hypercube
ablation benchmarks meaningful.

Every invocation draws a fresh tag block from the communicator so two
consecutive collectives can never cross-match, even when fast ranks
race ahead (the generalised sense-reversal trick).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Sequence, Union

import numpy as np

from repro.simmpi.requests import MACRO_FALLBACK, CollectiveReq
from repro.util.errors import CommunicationError

#: Rounds within one collective get distinct tags below the block tag.
_TAG_STRIDE = 64


def _block_tag(comm, round_: int = 0) -> int:
    return comm.next_tag_block() - round_


def resolve_op(op: Union[str, Callable]) -> Callable[[Any, Any], Any]:
    """Map an op name to a commutative combiner working on scalars and
    NumPy arrays alike."""
    if callable(op):
        return op
    try:
        return {
            "sum": lambda a, b: a + b,
            "prod": lambda a, b: a * b,
            "max": np.maximum,
            "min": np.minimum,
        }[op]
    except KeyError:
        raise CommunicationError(
            f"unknown reduce op {op!r}; expected sum/prod/max/min or a callable"
        ) from None


def _ceil_pow2(p: int) -> int:
    n = 1
    while n < p:
        n <<= 1
    return n


def _phased(comm, label: str, gen: Generator) -> Generator:
    """Drive ``gen`` with ``label`` pushed on the comm's phase stack.

    Only interposed when tracing: the entry points below are plain
    dispatchers that return the algorithm generator *directly* on the
    untraced hot path, so an untraced collective pays no wrapper frame
    per resume (collectives dominate resume counts in the throughput
    benchmarks).
    """
    comm._phases.append(label)
    try:
        return (yield from gen)
    finally:
        comm._phases.pop()


# ---------------------------------------------------------------------------
# macro-op dispatch
# ---------------------------------------------------------------------------

def _macro_collective(
    comm, kind: str, algorithm: Any, root: int, op, value: Any,
    resolve: bool = False,
) -> Generator:
    """Park this rank on a :class:`CollectiveReq` macro event.

    The engine gathers all members, then either resumes each with its
    analytically computed result or with :data:`MACRO_FALLBACK`, in
    which case the real message algorithm runs inline from the same
    entry clock (all members fall back together, per invocation).
    Exactly one collective-sequence draw happens here either way, so
    fast and fallback invocations stay aligned across ranks -- the
    fallback's own tag-block draw is then the same fresh block on every
    member.
    """
    if resolve:
        # Matches the event path, which resolves the op at the
        # generator's first resume rather than at the dispatch call.
        op = resolve_op(op)
    comm._coll_seq += 1
    members = getattr(comm, "members", None)
    result = yield CollectiveReq(
        None if members is None else tuple(members),
        comm._coll_seq, kind, algorithm, root, op, value,
        comm.rank, comm.size,
    )
    if result is MACRO_FALLBACK:
        # The dispatch bump above already reserved this invocation's
        # sequence slot; rewind so the impl's own ``next_tag_block``
        # redraws the *same* block the event path would have used --
        # every member falls back together, so the counters stay
        # aligned across ranks and with the pure event path (visible
        # in, e.g., the tags a DeadlockError reports).
        comm._coll_seq -= 1
        return (yield from _MACRO_FALLBACK_IMPLS[kind](comm, value, root, op, algorithm))
    return result


# ---------------------------------------------------------------------------
# barrier
# ---------------------------------------------------------------------------

def barrier(comm) -> Generator:
    """Dissemination barrier: ceil(log2 p) rounds of shifted tokens."""
    if comm._macro and comm.size > 1:
        return _macro_collective(comm, "barrier", "dissemination", 0, None, None)
    gen = _barrier_dissemination(comm)
    if comm._tracing:
        return _phased(comm, "barrier", gen)
    return gen


def _barrier_dissemination(comm) -> Generator:
    p = comm.size
    if p == 1:
        return
    tag0 = _block_tag(comm)
    rank = comm.rank
    k = 0
    dist = 1
    while dist < p:
        yield comm._fill_send(None, (rank + dist) % p, tag0 - k)
        yield comm._fill_recv((rank - dist) % p, tag0 - k)
        dist <<= 1
        k += 1


# ---------------------------------------------------------------------------
# broadcast
# ---------------------------------------------------------------------------

def bcast(comm, value: Any, root: int = 0, algorithm: str = "tree") -> Generator:
    """Broadcast from ``root``; all ranks return the value."""
    if not 0 <= root < comm.size:
        raise CommunicationError(f"bcast root {root} out of range")
    try:
        impl = _BCAST_ALGORITHMS[algorithm]
    except KeyError:
        raise CommunicationError(f"unknown bcast algorithm {algorithm!r}") from None
    if comm._macro and comm.size > 1 and algorithm in _MACRO_BCAST:
        return _macro_collective(comm, "bcast", algorithm, root, None, value)
    gen = impl(comm, value, root)
    if comm._tracing:
        return _phased(comm, "bcast", gen)
    return gen


def _bcast_binomial(comm, value: Any, root: int) -> Generator:
    """Binomial tree: latency-optimal ceil(log2 p) depth."""
    p = comm.size
    if p == 1:
        return value
    tag = _block_tag(comm)
    vr = (comm.rank - root) % p
    fill_send = comm._fill_send
    fill_recv = comm._fill_recv
    # A non-root rank neither sends nor receives until mask reaches its
    # top bit (vr < mask and mask <= vr < 2*mask are both false below
    # it), so start the sweep there -- identical yields, fewer dead
    # loop iterations.
    mask = 1 if vr == 0 else 1 << (vr.bit_length() - 1)
    while mask < p:
        if vr < mask:
            partner = vr + mask
            if partner < p:
                yield fill_send(value, (partner + root) % p, tag)
        elif vr < 2 * mask:
            msg = yield fill_recv((vr - mask + root) % p, tag)
            value = msg.payload
        mask <<= 1
    return value


def _bcast_binomial_nb(comm, value: Any, root: int) -> Generator:
    """Binomial tree with non-blocking child sends.

    Moves exactly the same messages as ``tree`` -- the returned values
    are bit-identical -- but each internal node isends to all its
    children and completes the handles at the end, so above the
    rendezvous threshold a node's second child is not serialised behind
    the first child's handshake.
    """
    p = comm.size
    if p == 1:
        return value
    tag = _block_tag(comm)
    vr = (comm.rank - root) % p
    handles = []
    mask = 1
    while mask < p:
        if vr < mask:
            partner = vr + mask
            if partner < p:
                h = yield comm._fill_isend(value, (partner + root) % p, tag)
                handles.append(h)
        elif vr < 2 * mask:
            msg = yield comm._fill_recv((vr - mask + root) % p, tag)
            value = msg.payload
        mask <<= 1
    for h in handles:
        yield comm._fill_wait(h)
    return value


def _bcast_ring(comm, value: Any, root: int) -> Generator:
    """Store-and-forward ring pass: p-1 sequential hops.  Latency O(p);
    the ablation baseline showing why trees matter."""
    p = comm.size
    if p == 1:
        return value
    tag = _block_tag(comm)
    vr = (comm.rank - root) % p
    if vr > 0:
        msg = yield from comm.recv(source=(comm.rank - 1) % p, tag=tag)
        value = msg.payload
    if vr < p - 1:
        yield from comm.send(value, (comm.rank + 1) % p, tag=tag)
    return value


def _bcast_flat(comm, value: Any, root: int) -> Generator:
    """Root sends to everyone directly: p-1 serialized startups at the
    root.  The naive baseline."""
    p = comm.size
    tag = _block_tag(comm)
    if comm.rank == root:
        for dst in range(p):
            if dst != root:
                yield from comm.send(value, dst, tag=tag)
        return value
    msg = yield from comm.recv(source=root, tag=tag)
    return msg.payload


#: Name -> implementation for :func:`bcast` dispatch.
_BCAST_ALGORITHMS = {
    "tree": _bcast_binomial,
    "tree_nb": _bcast_binomial_nb,
    "ring": _bcast_ring,
    "flat": _bcast_flat,
}

#: Bcast algorithms the macro evaluator reproduces exactly.  tree_nb
#: qualifies only in the all-eager regime (its evaluator bails to the
#: event path on any rendezvous-sized payload, where isend overlap is
#: real and not modelled analytically).
_MACRO_BCAST = frozenset({"tree", "tree_nb", "ring", "flat"})


# ---------------------------------------------------------------------------
# reduce / allreduce
# ---------------------------------------------------------------------------

def reduce(comm, value: Any, op: Union[str, Callable] = "sum", root: int = 0) -> Generator:
    """Binomial-tree reduction onto ``root``; other ranks return None.

    The combiner must be commutative and associative (floating-point
    reassociation applies, as on any real machine).
    """
    if not 0 <= root < comm.size:
        raise CommunicationError(f"reduce root {root} out of range")
    combiner = resolve_op(op)
    if comm._macro and comm.size > 1:
        return _macro_collective(comm, "reduce", "binomial", root, combiner, value)
    gen = _reduce_binomial(comm, value, combiner, root)
    if comm._tracing:
        return _phased(comm, "reduce", gen)
    return gen


def _reduce_binomial(comm, value: Any, combiner: Callable, root: int) -> Generator:
    p = comm.size
    if p == 1:
        return value
    tag = _block_tag(comm)
    vr = (comm.rank - root) % p
    acc = value
    mask = 1
    while mask < p:
        if vr & mask:
            yield comm._fill_send(acc, ((vr - mask) + root) % p, tag)
            return None
        partner = vr + mask
        if partner < p:
            msg = yield comm._fill_recv((partner + root) % p, tag)
            acc = combiner(acc, msg.payload)
        mask <<= 1
    return acc if comm.rank == root else None


def allreduce(
    comm,
    value: Any,
    op: Union[str, Callable] = "sum",
    algorithm: str = "reduce_bcast",
) -> Generator:
    """All ranks obtain the reduction of everyone's value."""
    if algorithm == "reduce_bcast":
        # Composes reduce + bcast; each inner call macro-dispatches on
        # its own, so no direct hook is needed here.
        gen = _allreduce_reduce_bcast(comm, value, op)
    elif algorithm == "recursive_doubling":
        if comm._macro and comm.size > 1:
            return _macro_collective(
                comm, "allreduce", "recursive_doubling", 0, op, value, resolve=True
            )
        gen = _allreduce_recursive_doubling(comm, value, op)
    else:
        raise CommunicationError(f"unknown allreduce algorithm {algorithm!r}")
    if comm._tracing:
        return _phased(comm, "allreduce", gen)
    return gen


def _allreduce_reduce_bcast(comm, value: Any, op) -> Generator:
    partial = yield from reduce(comm, value, op, root=0)
    return (yield from bcast(comm, partial, root=0))


def _allreduce_recursive_doubling(comm, value: Any, op) -> Generator:
    """Butterfly exchange; log2 p rounds when p is a power of two.

    For non-power-of-two sizes the extra ranks fold into the lower
    power-of-two block first, then receive the result (the standard
    MPICH construction).
    """
    combiner = resolve_op(op)
    p = comm.size
    if p == 1:
        return value
    pof2 = 1
    while pof2 * 2 <= p:
        pof2 *= 2
    rem = p - pof2
    tag0 = _block_tag(comm)
    acc = value

    # Fold remainder ranks into their partners below pof2.
    if comm.rank >= pof2:
        yield from comm.send(acc, comm.rank - pof2, tag=tag0 - 1)
    elif comm.rank < rem:
        msg = yield from comm.recv(source=comm.rank + pof2, tag=tag0 - 1)
        acc = combiner(acc, msg.payload)

    if comm.rank < pof2:
        mask = 1
        k = 2
        while mask < pof2:
            partner = comm.rank ^ mask
            yield from comm.send(acc, partner, tag=tag0 - k)
            msg = yield from comm.recv(source=partner, tag=tag0 - k)
            acc = combiner(acc, msg.payload)
            mask <<= 1
            k += 1

    # Hand results back to the folded remainder ranks.
    if comm.rank < rem:
        yield from comm.send(acc, comm.rank + pof2, tag=tag0 - 60)
    elif comm.rank >= pof2:
        msg = yield from comm.recv(source=comm.rank - pof2, tag=tag0 - 60)
        acc = msg.payload
    return acc


# ---------------------------------------------------------------------------
# gather / allgather / scatter / alltoall
# ---------------------------------------------------------------------------

def gather(comm, value: Any, root: int = 0, algorithm: str = "tree") -> Generator:
    """Collect one value per rank onto ``root`` (rank-ordered list)."""
    if not 0 <= root < comm.size:
        raise CommunicationError(f"gather root {root} out of range")
    if algorithm == "tree":
        gen = _gather_binomial(comm, value, root)
    elif algorithm == "flat":
        gen = _gather_flat(comm, value, root)
    else:
        raise CommunicationError(f"unknown gather algorithm {algorithm!r}")
    if comm._tracing:
        return _phased(comm, "gather", gen)
    return gen


def _gather_binomial(comm, value: Any, root: int) -> Generator:
    p = comm.size
    if p == 1:
        return [value]
    tag = _block_tag(comm)
    vr = (comm.rank - root) % p
    bucket = {comm.rank: value}
    mask = 1
    while mask < p:
        if vr & mask:
            yield from comm.send(bucket, ((vr - mask) + root) % p, tag=tag)
            return None
        partner = vr + mask
        if partner < p:
            msg = yield from comm.recv(source=(partner + root) % p, tag=tag)
            bucket.update(msg.payload)
        mask <<= 1
    if comm.rank == root:
        return [bucket[r] for r in range(p)]
    return None


def _gather_flat(comm, value: Any, root: int) -> Generator:
    p = comm.size
    tag = _block_tag(comm)
    if comm.rank != root:
        yield from comm.send(value, root, tag=tag)
        return None
    out = [None] * p
    out[root] = value
    for _ in range(p - 1):
        msg = yield from comm.recv(tag=tag)
        out[msg.source] = msg.payload
    return out


def allgather(comm, value: Any, algorithm: str = "ring") -> Generator:
    """Every rank ends with the rank-ordered list of all values."""
    if comm._macro and comm.size > 1 and algorithm == "ring":
        return _macro_collective(comm, "allgather", "ring", 0, None, value)
    gen = _allgather_impl(comm, value, algorithm)
    if comm._tracing:
        return _phased(comm, "allgather", gen)
    return gen


def _allgather_impl(comm, value: Any, algorithm: str) -> Generator:
    p = comm.size
    if p == 1:
        return [value]
    if algorithm == "ring":
        tag0 = _block_tag(comm)
        out: list = [None] * p
        out[comm.rank] = value
        right = (comm.rank + 1) % p
        left = (comm.rank - 1) % p
        carry_rank = comm.rank
        for step in range(p - 1):
            yield from comm.send((carry_rank, out[carry_rank]), right, tag=tag0 - step)
            msg = yield from comm.recv(source=left, tag=tag0 - step)
            carry_rank, payload = msg.payload
            out[carry_rank] = payload
        return out
    if algorithm == "ring_nb":
        # Same ring, but each step posts its receive before sending, so
        # the step never deadlocks under rendezvous (the blocking ring
        # does: every rank sends first and nobody has posted a receive).
        tag0 = _block_tag(comm)
        out = [None] * p
        out[comm.rank] = value
        right = (comm.rank + 1) % p
        left = (comm.rank - 1) % p
        carry_rank = comm.rank
        for step in range(p - 1):
            rh = yield from comm.irecv(source=left, tag=tag0 - step)
            sh = yield from comm.isend((carry_rank, out[carry_rank]), right, tag=tag0 - step)
            msg = yield from comm.wait(rh)
            yield from comm.wait(sh)
            carry_rank, payload = msg.payload
            out[carry_rank] = payload
        return out
    if algorithm == "gather_bcast":
        collected = yield from gather(comm, value, root=0)
        return (yield from bcast(comm, collected, root=0))
    raise CommunicationError(f"unknown allgather algorithm {algorithm!r}")


def scatter(
    comm, values: Optional[Sequence[Any]], root: int = 0, algorithm: str = "tree"
) -> Generator:
    """Rank ``i`` receives ``values[i]`` from ``root``."""
    if not 0 <= root < comm.size:
        raise CommunicationError(f"scatter root {root} out of range")
    p = comm.size
    if comm.rank == root:
        if values is None or len(values) != p:
            raise CommunicationError(
                f"scatter root needs exactly {p} values, got "
                f"{None if values is None else len(values)}"
            )
    if algorithm == "tree":
        gen = _scatter_binomial(comm, values, root)
    elif algorithm == "flat":
        gen = _scatter_flat(comm, values, root)
    else:
        raise CommunicationError(f"unknown scatter algorithm {algorithm!r}")
    if comm._tracing:
        return _phased(comm, "scatter", gen)
    return gen


def _scatter_binomial(comm, values, root: int) -> Generator:
    p = comm.size
    if p == 1:
        return values[0]
    tag = _block_tag(comm)
    vr = (comm.rank - root) % p
    if vr == 0:
        bucket = {i: values[(i + root) % p] for i in range(p)}
        span = _ceil_pow2(p)
    else:
        span = vr & -vr  # lowest set bit: subtree width
        parent = ((vr - span) + root) % p
        msg = yield from comm.recv(source=parent, tag=tag)
        bucket = msg.payload
    mask = span >> 1
    while mask >= 1:
        child = vr + mask
        if child < p:
            sub = {k: bucket.pop(k) for k in list(bucket) if k >= child}
            yield from comm.send(sub, (child + root) % p, tag=tag)
        mask >>= 1
    return bucket[vr]


def _scatter_flat(comm, values, root: int) -> Generator:
    tag = _block_tag(comm)
    if comm.rank == root:
        for dst in range(comm.size):
            if dst != root:
                yield from comm.send(values[dst], dst, tag=tag)
        return values[root]
    msg = yield from comm.recv(source=root, tag=tag)
    return msg.payload


def scan(comm, value: Any, op: Union[str, Callable] = "sum") -> Generator:
    """Inclusive prefix reduction (Hillis-Steele, ceil(log2 p) rounds).

    Rank ``r`` returns the combination of values from ranks ``0..r``.
    The combiner must be associative; commutativity is not required
    because partials are always combined as ``earlier op later``.
    """
    combiner = resolve_op(op)
    p = comm.size
    if p == 1:
        return value
    tag0 = _block_tag(comm)
    if comm._tracing:
        comm._phases.append("scan")
    try:
        acc = value
        dist = 1
        k = 0
        while dist < p:
            if comm.rank + dist < p:
                yield from comm.send(acc, comm.rank + dist, tag=tag0 - k)
            if comm.rank - dist >= 0:
                msg = yield from comm.recv(source=comm.rank - dist, tag=tag0 - k)
                acc = combiner(msg.payload, acc)
            dist <<= 1
            k += 1
        return acc
    finally:
        if comm._tracing:
            comm._phases.pop()


def reduce_scatter(
    comm, values: Sequence[Any], op: Union[str, Callable] = "sum"
) -> Generator:
    """Reduce element j across all ranks; rank j keeps the result.

    Implemented as a personalised exchange followed by a local
    reduction: simple, correct for any p, and bandwidth-equivalent to
    the pairwise-halving algorithm for the small rank counts simulated
    here (each rank still moves (p-1)/p of its data once).
    """
    combiner = resolve_op(op)
    p = comm.size
    if values is None or len(values) != p:
        raise CommunicationError(
            f"reduce_scatter needs exactly {p} values per rank, got "
            f"{None if values is None else len(values)}"
        )
    if comm._tracing:
        comm._phases.append("reduce_scatter")
    try:
        contributions = yield from alltoall(comm, list(values))
    finally:
        if comm._tracing:
            comm._phases.pop()
    acc = contributions[0]
    for item in contributions[1:]:
        acc = combiner(acc, item)
    return acc


def alltoall(comm, values: Sequence[Any], algorithm: str = "cyclic") -> Generator:
    """Personalised all-to-all exchange.

    ``cyclic`` walks p-1 shifts send-then-recv (pairwise pattern);
    ``nonblocking`` posts every receive, isends every block, then
    completes -- same data, and all p-1 transfers per rank are in
    flight at once, the pattern that exposes link contention.
    """
    p = comm.size
    if values is None or len(values) != p:
        raise CommunicationError(
            f"alltoall needs exactly {p} values per rank, got "
            f"{None if values is None else len(values)}"
        )
    out: list = [None] * p
    out[comm.rank] = values[comm.rank]
    if p == 1:
        return out
    if comm._macro and algorithm == "cyclic":
        return (yield from _macro_collective(
            comm, "alltoall", "cyclic", 0, None, list(values)
        ))
    tag0 = _block_tag(comm)
    if comm._tracing:
        comm._phases.append("alltoall")
    try:
        return (yield from _alltoall_impl(comm, values, algorithm, tag0, out))
    finally:
        if comm._tracing:
            comm._phases.pop()


def _alltoall_impl(comm, values, algorithm: str, tag0: int, out: list) -> Generator:
    p = comm.size
    if algorithm == "cyclic":
        for shift in range(1, p):
            dst = (comm.rank + shift) % p
            src = (comm.rank - shift) % p
            yield from comm.send(values[dst], dst, tag=tag0 - (shift % _TAG_STRIDE))
            msg = yield from comm.recv(source=src, tag=tag0 - (shift % _TAG_STRIDE))
            out[src] = msg.payload
        return out
    if algorithm == "nonblocking":
        recv_handles = []
        for shift in range(1, p):
            src = (comm.rank - shift) % p
            h = yield from comm.irecv(source=src, tag=tag0 - (shift % _TAG_STRIDE))
            recv_handles.append((src, h))
        send_handles = []
        for shift in range(1, p):
            dst = (comm.rank + shift) % p
            h = yield from comm.isend(values[dst], dst, tag=tag0 - (shift % _TAG_STRIDE))
            send_handles.append(h)
        for src, h in recv_handles:
            msg = yield from comm.wait(h)
            out[src] = msg.payload
        yield from comm.waitall(send_handles)
        return out
    raise CommunicationError(f"unknown alltoall algorithm {algorithm!r}")


def _alltoall_macro_fallback(comm, values) -> Generator:
    out: list = [None] * comm.size
    out[comm.rank] = values[comm.rank]
    tag0 = _block_tag(comm)
    return (yield from _alltoall_impl(comm, values, "cyclic", tag0, out))


#: kind -> real algorithm generator, invoked when the engine answers a
#: CollectiveReq with MACRO_FALLBACK.  ``op`` is already resolved by the
#: dispatch layer (resolve_op is idempotent on callables).
_MACRO_FALLBACK_IMPLS = {
    "barrier": lambda comm, value, root, op, alg: _barrier_dissemination(comm),
    "bcast": lambda comm, value, root, op, alg: _BCAST_ALGORITHMS[alg](comm, value, root),
    "reduce": lambda comm, value, root, op, alg: _reduce_binomial(comm, value, op, root),
    "allreduce": lambda comm, value, root, op, alg: _allreduce_recursive_doubling(comm, value, op),
    "allgather": lambda comm, value, root, op, alg: _allgather_impl(comm, value, "ring"),
    "alltoall": lambda comm, value, root, op, alg: _alltoall_macro_fallback(comm, value),
}
