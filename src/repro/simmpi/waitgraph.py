"""Wait-for-graph explanation of simulator deadlocks.

When the event heap drains with live ranks remaining, every survivor is
blocked on communication that can never complete.  This module turns
that final state into an explicit *wait-for graph*: one node per
still-blocked rank, one edge per reason it cannot proceed (an unmatched
posted receive, an unfinished isend being waited on, or a parked
blocking rendezvous send).  The graph then answers the question the old
flat listing could not: *which ranks form the deadlocked cycle?*

``rank 0 -> rank 1 -> rank 0`` is the signature of the symmetric
blocking-send bug (analyzer rule W004); an edge into a failed rank with
no cycle is a survivor waiting on a dead peer (fault injection).  The
engine attaches the graph to :class:`~repro.util.errors.DeadlockError`
as ``wait_for``/``cycle``/``failed_ranks`` and embeds
:meth:`WaitForGraph.describe` in the message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.simmpi.requests import ANY_SOURCE
from repro.simmpi.state import RankState, ReceiveSlot


@dataclass(frozen=True)
class WaitEdge:
    """One reason a blocked rank cannot proceed.

    ``target`` is the rank being waited on, or ``None`` when the wait
    names no specific peer (a ``recv(ANY_SOURCE)`` that nothing will
    ever match).  ``reason`` is the human-readable form embedded in the
    :class:`DeadlockError` message.
    """

    rank: int
    target: Optional[int]
    reason: str


class WaitForGraph:
    """The blocked ranks and their wait-for edges at deadlock time."""

    def __init__(
        self,
        nodes: Sequence[int],
        edges: Iterable[WaitEdge],
        failed_ranks: Iterable[int] = (),
    ) -> None:
        #: Still-blocked ranks, in rank order (nodes with no edges are
        #: legal: a rank can be blocked with nothing posted).
        self.nodes: List[int] = list(nodes)
        self.edges: List[WaitEdge] = list(edges)
        self.failed_ranks: List[int] = sorted(failed_ranks)

    def wait_for(self) -> Dict[int, List[int]]:
        """``{blocked_rank: [ranks it waits on]}`` -- targets deduped,
        first-wait order; ranks with no concrete target are omitted."""
        graph: Dict[int, List[int]] = {}
        for edge in self.edges:
            if edge.target is None:
                continue
            targets = graph.setdefault(edge.rank, [])
            if edge.target not in targets:
                targets.append(edge.target)
        return graph

    def find_cycle(self) -> Optional[List[int]]:
        """A deadlocked cycle as ``[r0, r1, ..., r0]``, rotated so the
        smallest member leads, or ``None`` (acyclic: every blocked rank
        ultimately waits on a failed or finished peer)."""
        adjacency = self.wait_for()
        visited: set = set()
        for start in sorted(adjacency):
            if start in visited:
                continue
            # Iterative DFS keeping the active path for cycle extraction.
            path: List[int] = [start]
            on_path = {start}
            pending = [iter(adjacency.get(start, ()))]
            while pending:
                for nxt in pending[-1]:
                    if nxt in on_path:
                        cycle = path[path.index(nxt):]
                        pivot = cycle.index(min(cycle))
                        cycle = cycle[pivot:] + cycle[:pivot]
                        return cycle + [cycle[0]]
                    if nxt not in visited and nxt in adjacency:
                        path.append(nxt)
                        on_path.add(nxt)
                        pending.append(iter(adjacency[nxt]))
                        break
                else:
                    done = path.pop()
                    visited.add(done)
                    on_path.discard(done)
                    pending.pop()
        return None

    def describe(self) -> str:
        """The deadlock detail string: per-rank blocking reasons, the
        injected-failure note, and the detected cycle."""
        reasons: Dict[int, List[str]] = {rank: [] for rank in self.nodes}
        for edge in self.edges:
            reasons.setdefault(edge.rank, []).append(edge.reason)
        parts = [
            f"rank {rank} blocked on " + (", ".join(reasons[rank]) or "nothing posted")
            for rank in self.nodes
        ]
        detail = ", ".join(parts)
        if self.failed_ranks:
            detail += f" (injected failures: ranks {self.failed_ranks})"
        cycle = self.find_cycle()
        if cycle:
            detail += "; wait-for cycle: " + " -> ".join(str(r) for r in cycle)
        return detail

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly snapshot (for traces and tooling)."""
        return {
            "wait_for": self.wait_for(),
            "cycle": self.find_cycle(),
            "failed_ranks": list(self.failed_ranks),
            "blocked": {
                rank: [e.reason for e in self.edges if e.rank == rank]
                for rank in self.nodes
            },
        }


def build_wait_graph(
    ranks: Sequence[Optional[RankState]], failed_ranks: Iterable[int] = ()
) -> WaitForGraph:
    """Construct the wait-for graph from the engine's final rank state.

    Edges come from two places: the blocked rank's own handle table
    (posted receives and waited-on isends that never became ready) and
    the destination ranks' parked queues (blocking rendezvous sends,
    which own no handle).  A parked send whose handle is still in the
    sender's table is skipped here -- the handle scan already reports
    it -- so no send is ever counted twice.

    Under lazy bring-up a rank's slot may be ``None``: the rank was
    never resumed or targeted, which can only happen when it finished
    or failed without materializing (a live blocked rank always has
    state).  ``None`` slots therefore contribute no node and hold no
    queues to scan.
    """
    nodes: List[int] = []
    edges: List[WaitEdge] = []
    for state in ranks:
        if state is None or state.finished:
            continue
        nodes.append(state.rank)
        if state.collective is not None:
            # Parked in a macro collective whose other members never
            # arrived (a divergent collective): name it rather than
            # reporting "nothing posted".
            _members, seq, kind, algorithm, _root = state.collective
            edges.append(
                WaitEdge(
                    rank=state.rank,
                    target=None,
                    reason=(
                        f"collective {kind}/{algorithm} #{seq} "
                        "(waiting for other members)"
                    ),
                )
            )
        for handle in state.handles.values():
            if not handle.waiting or handle.ready:
                continue
            if isinstance(handle, ReceiveSlot):
                target = None if handle.source == ANY_SOURCE else handle.source
                reason = f"(source={handle.source}, tag={handle.tag})"
            else:
                target = handle.dest
                reason = f"isend to {handle.dest} (tag={handle.tag})"
            edges.append(WaitEdge(rank=state.rank, target=target, reason=reason))
        seen_parked = set()
        for other in ranks:
            if other is None:
                continue
            for ps in other.parked:
                if ps.source != state.rank or id(ps) in seen_parked:
                    continue
                seen_parked.add(id(ps))
                if ps.handle is not None and ps.handle.handle_id in state.handles:
                    continue  # reported via the sender's handle table
                edges.append(
                    WaitEdge(
                        rank=state.rank,
                        target=ps.dest,
                        reason=f"rendezvous send to {ps.dest} (tag={ps.tag})",
                    )
                )
    return WaitForGraph(nodes, edges, failed_ranks)
