"""Delivery models: how the engine charges a message's wire time.

The engine asks one question per transfer -- *given a start time, when
does this message become available at its destination?* -- and a
:class:`DeliveryModel` answers it.  Two answers ship:

* :class:`AlphaBetaDelivery` charges every message independently along
  its routed hop count: ``start + alpha + hops * tau + nbytes / beta``.
  This is the classic Hockney accounting the simulator has always used.

* :class:`ContentionAwareDelivery` routes each message with
  ``topology.route()`` (dimension-ordered on meshes, e-cube on
  hypercubes) and keeps a **busy-until timeline per physical link**.  A
  transfer holds every link on its path for its full byte time --
  wormhole routing pipelines the flits across the path, so the message
  occupies the whole path for one serialisation window -- and a
  transfer whose links are busy waits for them.  On an idle network it
  reproduces the alpha-beta time exactly; under load it reproduces the
  shared-wire serialisation the Touchstone Delta's mesh-vs-hypercube
  wiring decision turned on, and its makespans respect the
  :class:`~repro.machine.contention.ContentionReport` lower bounds by
  construction (both count the same links via
  :func:`~repro.machine.contention.path_links`).

Plugging in a new model means subclassing :class:`DeliveryModel` and
implementing :meth:`arrival`; the engine accepts an instance or a
registered name.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Sequence, Tuple, Union

from repro.machine.contention import path_links
from repro.machine.machine import Machine
from repro.util.errors import ConfigurationError


class DeliveryModel(ABC):
    """Strategy answering "when does this transfer arrive?".

    A model is bound to a machine and rank placement at the start of
    every run via :meth:`bind`, which also resets any per-run state
    (link occupancy, caches), so one instance can serve repeated runs.

    Per-pair memo dicts are keyed by the interned integer
    ``src_rank * n_ranks + dst_rank`` (see :meth:`pair_key`) rather
    than a ``(src, dst)`` tuple: the engine consults them once per
    message, and integer hashing avoids allocating a key tuple per
    lookup on the hot path.
    """

    #: Registry name; also used in reports.
    name: str = "abstract"
    #: True when arrival() is a pure function of (src, dst, nbytes,
    #: start) -- no cross-message state (documentation flag; macro-op
    #: eligibility itself is keyed on the exact AlphaBetaDelivery type).
    analytic: bool = False

    def bind(self, machine: Machine, rank_map: Sequence[int]) -> None:
        self.machine = machine
        self.rank_map = list(rank_map)
        self._n_ranks = len(self.rank_map)
        self.reset()

    def pair_key(self, src_rank: int, dst_rank: int) -> int:
        """Interned (src, dst) key for per-pair memos (valid after bind)."""
        return src_rank * self._n_ranks + dst_rank

    def fresh(self) -> "DeliveryModel":
        """A model instance safe to bind to a new concurrent run.

        The engine calls this once per :meth:`Engine.run` so that two
        interleaved runs of one :class:`Engine` never share mutable
        per-run state (link occupancy timelines, memos).  The default
        re-instantiates the class when it takes no constructor
        arguments; stateful models with required arguments should
        override this, and fall back to sharing ``self`` otherwise
        (the pre-existing behaviour).
        """
        try:
            return type(self)()
        except TypeError:
            return self

    def reset(self) -> None:
        """Clear per-run mutable state (called by :meth:`bind`)."""

    @abstractmethod
    def arrival(self, src_rank: int, dst_rank: int, nbytes: float, start: float) -> float:
        """Virtual time ``nbytes`` from ``src_rank`` becomes available
        at ``dst_rank`` for a transfer starting at ``start``."""

    def overhead(self, src_rank: int, dst_rank: int) -> float:
        """Sender-side CPU cost of injecting one message."""
        return self.machine.link.latency_s if src_rank != dst_rank else 0.0


class AlphaBetaDelivery(DeliveryModel):
    """Independent per-message alpha-beta charging (the seed model).

    Per pair the fixed part of the Hockney cost
    (``alpha + hops * tau``) is memoised, so a repeat transfer costs
    one dict probe, one add and one divide -- float-identical to
    calling :meth:`LinkModel.message_time` because the memo preserves
    its evaluation order.

    This model is *analytic*: ``arrival()`` is a pure, stationary
    function of ``(src, dst, nbytes, start)`` with no cross-message
    state, which is exactly what lets the engine's collective macro-op
    path (:mod:`repro.simmpi.macro`) evaluate whole collectives in
    closed form.  The engine keys that eligibility on this *exact*
    type: a subclass may override ``arrival()`` with history-dependent
    behaviour (as the contention model does) and then macro-ops stay
    off.
    """

    name = "alphabeta"
    #: Arrival is history-free; see class docstring.
    analytic = True

    def reset(self) -> None:
        # Hop counts between mapped ranks are looked up constantly; memoise.
        self._hops: Dict[int, int] = {}
        # pair key -> alpha + hops * tau (0.0 for the 0-hop self-send,
        # which LinkModel charges as a pure memcpy with no startup).
        self._fixed: Dict[int, float] = {}
        self._bw = self.machine.link.bandwidth_bytes_per_s

    def hops(self, src_rank: int, dst_rank: int) -> int:
        key = src_rank * self._n_ranks + dst_rank
        cached = self._hops.get(key)
        if cached is None:
            cached = self.machine.topology.hops(
                self.rank_map[src_rank], self.rank_map[dst_rank]
            )
            self._hops[key] = cached
        return cached

    def arrival(self, src_rank: int, dst_rank: int, nbytes: float, start: float) -> float:
        key = src_rank * self._n_ranks + dst_rank
        fixed = self._fixed.get(key)
        if fixed is None:
            link = self.machine.link
            hops = self.hops(src_rank, dst_rank)
            fixed = 0.0 if hops == 0 else link.latency_s + hops * link.per_hop_s
            self._fixed[key] = fixed
        return start + (fixed + nbytes / self._bw)


class ContentionAwareDelivery(DeliveryModel):
    """Serialise concurrent transfers on shared link occupancy.

    Per transfer: the header reaches the destination at
    ``start + alpha + hops * tau``; the payload then needs every link on
    the routed path for ``nbytes / beta`` seconds, starting no earlier
    than the moment all of them are free.  Transfers are granted links
    in event order (deterministic), and a completed transfer marks its
    links busy until its end time.  With no competing traffic this
    degenerates to exactly the alpha-beta time.
    """

    name = "contention"

    def reset(self) -> None:
        #: (low, high) link -> virtual time the link becomes free.
        self._free: Dict[Tuple[int, int], float] = {}
        self._routes: Dict[int, List[tuple]] = {}

    def _links(self, src_rank: int, dst_rank: int) -> List[tuple]:
        key = src_rank * self._n_ranks + dst_rank
        cached = self._routes.get(key)
        if cached is None:
            cached = path_links(
                self.machine.topology.route(
                    self.rank_map[src_rank], self.rank_map[dst_rank]
                )
            )
            self._routes[key] = cached
        return cached

    def link_occupancy(self) -> Dict[Tuple[int, int], float]:
        """Busy-until time per link (inspection/reporting aid)."""
        return dict(self._free)

    def arrival(self, src_rank: int, dst_rank: int, nbytes: float, start: float) -> float:
        link = self.machine.link
        links = self._links(src_rank, dst_rank)
        if not links:  # self-send: local memcpy, no wires involved
            return start + link.message_time(nbytes, 0)
        begin = start + link.latency_s + len(links) * link.per_hop_s
        for key in links:
            occupied = self._free.get(key, 0.0)
            if occupied > begin:
                begin = occupied
        end = begin + nbytes / link.bandwidth_bytes_per_s
        for key in links:
            self._free[key] = end
        return end


#: Name -> class registry consumed by :func:`resolve_delivery`.
DELIVERY_MODELS = {
    AlphaBetaDelivery.name: AlphaBetaDelivery,
    ContentionAwareDelivery.name: ContentionAwareDelivery,
}


def resolve_delivery(spec: Union[str, DeliveryModel]) -> DeliveryModel:
    """Accept a model instance or a registered name."""
    if isinstance(spec, DeliveryModel):
        return spec
    try:
        return DELIVERY_MODELS[spec]()
    except (KeyError, TypeError):
        raise ConfigurationError(
            f"unknown delivery model {spec!r}; expected one of "
            f"{sorted(DELIVERY_MODELS)} or a DeliveryModel instance"
        ) from None
