"""Per-rank simulation state and the unified request-handle table.

One :class:`RankState` consolidates everything the engine used to keep
in parallel per-rank lists: the virtual clock, aggregate statistics,
lifecycle flags, the queues of unmatched eager messages and parked
rendezvous senders, and the **handle table** -- a dict keyed by handle
id holding every outstanding non-blocking request (posted receives and
in-progress sends alike).  The dict replaces the old linear
``find_slot``/``slots.remove`` scans with O(1) lookup and removal, and
its insertion order *is* MPI post order, which the matching rules rely
on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.simmpi.requests import ANY_SOURCE, ANY_TAG, InFlight
from repro.simmpi.trace import RankStats
from repro.util.errors import CommunicationError


@dataclass
class ReceiveSlot:
    """One outstanding posted receive."""

    handle_id: int
    source: int
    tag: int
    msg: Optional[InFlight] = None
    #: True while the owning rank is blocked in a wait on this handle.
    waiting: bool = False
    blocked_since: float = 0.0

    def matches(self, msg: InFlight) -> bool:
        if self.source != ANY_SOURCE and self.source != msg.source:
            return False
        if self.tag != ANY_TAG and self.tag != msg.tag:
            return False
        return True

    @property
    def ready(self) -> bool:
        """A message is bound: a wait on this handle can complete."""
        return self.msg is not None

    def completion_time(self, now: float) -> float:
        return max(now, self.msg.arrival_time)


@dataclass
class SendHandle:
    """One outstanding non-blocking send."""

    handle_id: int
    dest: int
    tag: int
    nbytes: float
    #: Virtual time the sender's CPU is clear of this send; None while
    #: a rendezvous isend is still parked awaiting its handshake.
    complete_at: Optional[float] = None
    waiting: bool = False
    blocked_since: float = 0.0
    #: Causal edge for span tracing (set only when tracing): the
    #: rendezvous handshake that completed this handle remotely.
    hs_cause: Any = None

    @property
    def ready(self) -> bool:
        return self.complete_at is not None

    def completion_time(self, now: float) -> float:
        return max(now, self.complete_at)


Handle = Union[ReceiveSlot, SendHandle]


@dataclass
class ParkedSend:
    """A rendezvous send waiting for its matching receive to be posted.

    ``handle`` is set for non-blocking sends (the sender keeps running
    and synchronises via the handle); ``None`` means the sender is
    blocked in the send itself.
    """

    source: int
    dest: int
    tag: int
    payload: Any
    nbytes: float
    seq: int
    park_time: float
    send_time: float
    handle: Optional[SendHandle] = None


@dataclass
class RankState:
    """Everything the engine tracks for one rank."""

    rank: int
    stats: RankStats
    clock: float = 0.0
    finished: bool = False
    failed: bool = False
    #: Rank is inside a blocking wait (recv/wait/waitany or a parked
    #: blocking rendezvous send).
    blocked: bool = False
    #: Unified handle table: handle id -> outstanding request.
    handles: Dict[int, Handle] = field(default_factory=dict)
    #: Unmatched eager arrivals addressed to this rank, in post order.
    pending: List[InFlight] = field(default_factory=list)
    #: Rendezvous senders parked *at this destination*, in post order.
    parked: List[ParkedSend] = field(default_factory=list)
    #: Handle ids of an in-progress waitany, or None.
    anywait: Optional[List[int]] = None
    _next_handle: int = 0

    def new_handle_id(self) -> int:
        hid = self._next_handle
        self._next_handle += 1
        return hid

    def add_handle(self, handle: Handle) -> None:
        self.handles[handle.handle_id] = handle

    def require_handle(self, handle_id: int) -> Handle:
        try:
            return self.handles[handle_id]
        except KeyError:
            raise CommunicationError(
                f"rank {self.rank} waits on unknown or already-completed "
                f"request handle {handle_id}"
            ) from None

    def pop_handle(self, handle_id: int) -> Handle:
        return self.handles.pop(handle_id)

    def receive_slots(self) -> Iterator[ReceiveSlot]:
        """Posted receives in post order (dict insertion order)."""
        for handle in self.handles.values():
            if isinstance(handle, ReceiveSlot):
                yield handle

    def fail(self, time: float) -> None:
        """Node death: freeze the clock, drop all outstanding requests."""
        self.failed = True
        self.finished = True
        self.blocked = False
        self.stats.finish_time = time
        self.clock = max(self.clock, time)
        self.handles.clear()
        self.anywait = None
