"""Columnar per-rank simulation state and the unified handle table.

The engine's numeric hot state -- virtual clocks, lifecycle flags, and
the :class:`~repro.simmpi.trace.RankStats` accumulators -- lives in one
:class:`MachineState`: parallel numpy arrays indexed by rank (structure
of arrays, one column per field).  Whole-machine operations (macro-op
commits, stats finalization, makespan reduction) become single array
expressions instead of per-object loops, which is what lets the
simulator hold its footprint at 10^4..10^6 ranks.

:class:`RankState` is a thin per-rank **view** over those columns: its
``clock``/``finished``/``failed``/``blocked`` properties and its
``stats`` attribute (a :class:`RankStatsView`) read and write the
shared arrays, so the protocol, waitgraph, fault, and obs layers keep
working unchanged through the same attribute API the old per-object
state exposed.  The engine's fused handlers bypass the properties and
index the columns directly; both routes touch the same storage, so
they can never disagree.

Alongside the columns each rank keeps genuinely per-rank *object*
state: the **handle table** -- a dict keyed by handle id holding every
outstanding non-blocking request (posted receives and in-progress
sends alike) -- plus ``rslots`` (just the posted receives, in post
order, so message matching scans exactly the right objects), the
queues of unmatched eager messages and parked rendezvous senders, and
the waitany/collective parking markers.

Everything here is a plain ``__slots__`` class: slots and handle
objects are allocated per message and per posted receive, so they sit
directly on the engine's fast path.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Union

import numpy as np

from repro.simmpi.requests import ANY_SOURCE, ANY_TAG, InFlight
from repro.simmpi.trace import RankStats
from repro.util.errors import CommunicationError


class ReceiveSlot:
    """One outstanding posted receive."""

    __slots__ = ("handle_id", "source", "tag", "msg", "waiting", "blocked_since")

    def __init__(
        self,
        handle_id: int,
        source: int,
        tag: int,
        msg: Optional[InFlight] = None,
        waiting: bool = False,
        blocked_since: float = 0.0,
    ):
        self.handle_id = handle_id
        self.source = source
        self.tag = tag
        self.msg = msg
        #: True while the owning rank is blocked in a wait on this handle.
        self.waiting = waiting
        self.blocked_since = blocked_since

    def matches(self, msg: InFlight) -> bool:
        if self.source != ANY_SOURCE and self.source != msg.source:
            return False
        if self.tag != ANY_TAG and self.tag != msg.tag:
            return False
        return True

    @property
    def ready(self) -> bool:
        """A message is bound: a wait on this handle can complete."""
        return self.msg is not None

    def completion_time(self, now: float) -> float:
        return max(now, self.msg.arrival_time)

    def __repr__(self) -> str:
        return (
            f"ReceiveSlot(handle_id={self.handle_id}, source={self.source}, "
            f"tag={self.tag}, msg={self.msg!r}, waiting={self.waiting})"
        )


class SendHandle:
    """One outstanding non-blocking send."""

    __slots__ = (
        "handle_id", "dest", "tag", "nbytes",
        "complete_at", "waiting", "blocked_since", "hs_cause",
    )

    def __init__(
        self,
        handle_id: int,
        dest: int,
        tag: int,
        nbytes: float,
        complete_at: Optional[float] = None,
        waiting: bool = False,
        blocked_since: float = 0.0,
        hs_cause: Any = None,
    ):
        self.handle_id = handle_id
        self.dest = dest
        self.tag = tag
        self.nbytes = nbytes
        #: Virtual time the sender's CPU is clear of this send; None while
        #: a rendezvous isend is still parked awaiting its handshake.
        self.complete_at = complete_at
        self.waiting = waiting
        self.blocked_since = blocked_since
        #: Causal edge for span tracing (set only when tracing): the
        #: rendezvous handshake that completed this handle remotely.
        self.hs_cause = hs_cause

    @property
    def ready(self) -> bool:
        return self.complete_at is not None

    def completion_time(self, now: float) -> float:
        return max(now, self.complete_at)

    def __repr__(self) -> str:
        return (
            f"SendHandle(handle_id={self.handle_id}, dest={self.dest}, "
            f"tag={self.tag}, nbytes={self.nbytes}, complete_at={self.complete_at})"
        )


Handle = Union[ReceiveSlot, SendHandle]


class ParkedSend:
    """A rendezvous send waiting for its matching receive to be posted.

    ``handle`` is set for non-blocking sends (the sender keeps running
    and synchronises via the handle); ``None`` means the sender is
    blocked in the send itself.
    """

    __slots__ = (
        "source", "dest", "tag", "payload", "nbytes",
        "seq", "park_time", "send_time", "handle",
    )

    def __init__(
        self,
        source: int,
        dest: int,
        tag: int,
        payload: Any,
        nbytes: float,
        seq: int,
        park_time: float,
        send_time: float,
        handle: Optional[SendHandle] = None,
    ):
        self.source = source
        self.dest = dest
        self.tag = tag
        self.payload = payload
        self.nbytes = nbytes
        self.seq = seq
        self.park_time = park_time
        self.send_time = send_time
        self.handle = handle

    def __repr__(self) -> str:
        return (
            f"ParkedSend(source={self.source}, dest={self.dest}, tag={self.tag}, "
            f"nbytes={self.nbytes}, park_time={self.park_time})"
        )


class MachineState:
    """Structure-of-arrays state for every rank of one run.

    One float64/int64/bool column per field, indexed by rank.  Values
    stored here are always *plain* Python numbers written through
    ``arr[i] = v`` and read back with ``arr.item(i)`` (or ``tolist()``
    in bulk), so nothing that leaves this class carries a numpy scalar
    type into the event loop's heap tuples or float arithmetic --
    float64 round-trips exactly, and int64 holds every count the
    simulator can produce.
    """

    __slots__ = (
        "n", "clock", "finished", "failed", "blocked",
        "compute_time", "comm_time", "idle_time",
        "messages_sent", "bytes_sent", "messages_received",
        "bytes_received", "finish_time",
    )

    def __init__(self, n: int):
        self.n = n
        self.clock = np.zeros(n, dtype=np.float64)
        self.finished = np.zeros(n, dtype=np.bool_)
        self.failed = np.zeros(n, dtype=np.bool_)
        self.blocked = np.zeros(n, dtype=np.bool_)
        self.compute_time = np.zeros(n, dtype=np.float64)
        self.comm_time = np.zeros(n, dtype=np.float64)
        self.idle_time = np.zeros(n, dtype=np.float64)
        self.messages_sent = np.zeros(n, dtype=np.int64)
        #: Bytes columns are float64 (RankStats declares bytes as float);
        #: the values are exact -- payload sizes are integers well below
        #: 2**53 -- so int and float comparisons agree everywhere.
        self.bytes_sent = np.zeros(n, dtype=np.float64)
        self.messages_received = np.zeros(n, dtype=np.int64)
        self.bytes_received = np.zeros(n, dtype=np.float64)
        self.finish_time = np.zeros(n, dtype=np.float64)

    def makespan(self) -> float:
        """Latest rank clock, as a plain float (one array reduction)."""
        return float(self.clock.max()) if self.n else 0.0

    def finalize_stats(self) -> List[RankStats]:
        """Materialise per-rank :class:`RankStats` from the columns.

        One ``tolist()`` per column (plain Python numbers out), then a
        single zip -- the vectorised replacement for reading eight
        attributes off every rank object.
        """
        rows = zip(
            self.compute_time.tolist(),
            self.comm_time.tolist(),
            self.idle_time.tolist(),
            self.messages_sent.tolist(),
            self.bytes_sent.tolist(),
            self.messages_received.tolist(),
            self.bytes_received.tolist(),
            self.finish_time.tolist(),
        )
        return [
            RankStats(
                rank=r,
                compute_time=ct,
                comm_time=cm,
                idle_time=it,
                messages_sent=ms,
                bytes_sent=bs,
                messages_received=mr,
                bytes_received=br,
                finish_time=ft,
            )
            for r, (ct, cm, it, ms, bs, mr, br, ft) in enumerate(rows)
        ]

    def lazy_stats(self) -> "LazyRankStats":
        """Column-backed stats sequence that defers materialisation.

        Closed-form runs finish with 10^5..10^6 perfectly good stats
        *columns*; building a million :class:`RankStats` objects to put
        in the result would cost more time and memory than the whole
        priced epoch.  The lazy sequence keeps the columns and builds a
        ``RankStats`` row only when one is indexed.
        """
        return LazyRankStats(self)


class LazyRankStats:
    """Read-only sequence of :class:`RankStats` backed by the columns.

    Behaves like the list :meth:`MachineState.finalize_stats` returns
    -- ``len``, indexing, slicing, iteration, and elementwise ``==``
    against any sequence -- but each row is constructed on access from
    the :class:`MachineState` arrays, so holding the result of a
    10^6-rank run costs thirteen arrays, not a million dataclasses.
    """

    __slots__ = ("_ms",)

    def __init__(self, ms: MachineState):
        self._ms = ms

    def __len__(self) -> int:
        return self._ms.n

    def __getitem__(self, index):
        ms = self._ms
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(ms.n))]
        i = int(index)
        if i < 0:
            i += ms.n
        if not 0 <= i < ms.n:
            raise IndexError("rank index out of range")
        return RankStats(
            rank=i,
            compute_time=ms.compute_time.item(i),
            comm_time=ms.comm_time.item(i),
            idle_time=ms.idle_time.item(i),
            messages_sent=ms.messages_sent.item(i),
            bytes_sent=ms.bytes_sent.item(i),
            messages_received=ms.messages_received.item(i),
            bytes_received=ms.bytes_received.item(i),
            finish_time=ms.finish_time.item(i),
        )

    def __iter__(self):
        for i in range(self._ms.n):
            yield self[i]

    def __eq__(self, other) -> bool:
        try:
            n = len(other)
        except TypeError:
            return NotImplemented
        if n != len(self):
            return False
        return all(a == b for a, b in zip(self, other))

    __hash__ = None

    def __repr__(self) -> str:
        return f"LazyRankStats(n={len(self)})"


class RankStatsView:
    """Per-rank window onto the :class:`MachineState` stats columns.

    Exposes the exact :class:`~repro.simmpi.trace.RankStats` attribute
    API (including ``busy_time``/``accounted_time``) so the protocol
    and obs layers keep accumulating through ``stats.comm_time += dt``
    unchanged; every access reads or writes the shared arrays.
    """

    __slots__ = ("ms", "rank")

    def __init__(self, ms: MachineState, rank: int):
        self.ms = ms
        self.rank = rank

    @property
    def compute_time(self) -> float:
        return self.ms.compute_time.item(self.rank)

    @compute_time.setter
    def compute_time(self, v: float) -> None:
        self.ms.compute_time[self.rank] = v

    @property
    def comm_time(self) -> float:
        return self.ms.comm_time.item(self.rank)

    @comm_time.setter
    def comm_time(self, v: float) -> None:
        self.ms.comm_time[self.rank] = v

    @property
    def idle_time(self) -> float:
        return self.ms.idle_time.item(self.rank)

    @idle_time.setter
    def idle_time(self, v: float) -> None:
        self.ms.idle_time[self.rank] = v

    @property
    def messages_sent(self) -> int:
        return self.ms.messages_sent.item(self.rank)

    @messages_sent.setter
    def messages_sent(self, v: int) -> None:
        self.ms.messages_sent[self.rank] = v

    @property
    def bytes_sent(self) -> float:
        return self.ms.bytes_sent.item(self.rank)

    @bytes_sent.setter
    def bytes_sent(self, v: float) -> None:
        self.ms.bytes_sent[self.rank] = v

    @property
    def messages_received(self) -> int:
        return self.ms.messages_received.item(self.rank)

    @messages_received.setter
    def messages_received(self, v: int) -> None:
        self.ms.messages_received[self.rank] = v

    @property
    def bytes_received(self) -> float:
        return self.ms.bytes_received.item(self.rank)

    @bytes_received.setter
    def bytes_received(self, v: float) -> None:
        self.ms.bytes_received[self.rank] = v

    @property
    def finish_time(self) -> float:
        return self.ms.finish_time.item(self.rank)

    @finish_time.setter
    def finish_time(self, v: float) -> None:
        self.ms.finish_time[self.rank] = v

    @property
    def busy_time(self) -> float:
        """Compute plus communication time (excludes idle gaps)."""
        return self.compute_time + self.comm_time

    @property
    def accounted_time(self) -> float:
        """Compute + comm + idle; equals ``finish_time`` per rank (up
        to float accumulation error), asserted in tests."""
        return self.compute_time + self.comm_time + self.idle_time

    def snapshot(self) -> RankStats:
        """A detached :class:`RankStats` copy of this rank's row."""
        return RankStats(
            rank=self.rank,
            compute_time=self.compute_time,
            comm_time=self.comm_time,
            idle_time=self.idle_time,
            messages_sent=self.messages_sent,
            bytes_sent=self.bytes_sent,
            messages_received=self.messages_received,
            bytes_received=self.bytes_received,
            finish_time=self.finish_time,
        )

    def __repr__(self) -> str:
        return (
            f"RankStatsView(rank={self.rank}, compute={self.compute_time}, "
            f"comm={self.comm_time}, idle={self.idle_time})"
        )


class RankState:
    """Everything the engine tracks for one rank: a view over the
    :class:`MachineState` columns plus the rank's own object state."""

    __slots__ = (
        "ms", "rank", "stats",
        "handles", "rslots", "pending", "parked", "anywait", "collective",
        "_next_handle",
    )

    def __init__(self, rank: int, ms: MachineState):
        self.ms = ms
        self.rank = rank
        self.stats = RankStatsView(ms, rank)
        #: Unified handle table: handle id -> outstanding request.
        self.handles: Dict[int, Handle] = {}
        #: Posted receives only, same insertion (= MPI post) order as
        #: ``handles``; the message-matching scan reads this directly.
        self.rslots: Dict[int, ReceiveSlot] = {}
        #: Unmatched eager arrivals addressed to this rank, in post order.
        self.pending: List[InFlight] = []
        #: Rendezvous senders parked *at this destination*, in post order.
        self.parked: List[ParkedSend] = []
        #: Handle ids of an in-progress waitany, or None.
        self.anywait: Optional[List[int]] = None
        #: Key of the macro collective this rank is parked in (engine
        #: gather key), or None; consulted by the wait-for graph so a
        #: deadlock report can say *which* collective never completed.
        self.collective: Optional[tuple] = None
        self._next_handle = 0

    # Column-backed scalars.  The engine's fused handlers index the
    # arrays directly; these properties serve every other layer.

    @property
    def clock(self) -> float:
        return self.ms.clock.item(self.rank)

    @clock.setter
    def clock(self, v: float) -> None:
        self.ms.clock[self.rank] = v

    @property
    def finished(self) -> bool:
        return self.ms.finished.item(self.rank)

    @finished.setter
    def finished(self, v: bool) -> None:
        self.ms.finished[self.rank] = v

    @property
    def failed(self) -> bool:
        return self.ms.failed.item(self.rank)

    @failed.setter
    def failed(self, v: bool) -> None:
        self.ms.failed[self.rank] = v

    @property
    def blocked(self) -> bool:
        """Rank is inside a blocking wait (recv/wait/waitany or a
        parked blocking rendezvous send)."""
        return self.ms.blocked.item(self.rank)

    @blocked.setter
    def blocked(self, v: bool) -> None:
        self.ms.blocked[self.rank] = v

    def new_handle_id(self) -> int:
        hid = self._next_handle
        self._next_handle = hid + 1
        return hid

    def add_handle(self, handle: Handle) -> None:
        self.handles[handle.handle_id] = handle
        if type(handle) is ReceiveSlot:
            self.rslots[handle.handle_id] = handle

    def require_handle(self, handle_id: int) -> Handle:
        try:
            return self.handles[handle_id]
        except KeyError:
            raise CommunicationError(
                f"rank {self.rank} waits on unknown or already-completed "
                f"request handle {handle_id}"
            ) from None

    def pop_handle(self, handle_id: int) -> Handle:
        self.rslots.pop(handle_id, None)
        return self.handles.pop(handle_id)

    def receive_slots(self) -> Iterable[ReceiveSlot]:
        """Posted receives in post order (dict insertion order)."""
        return self.rslots.values()

    def fail(self, time: float) -> None:
        """Node death: freeze the clock, drop all outstanding requests."""
        ms = self.ms
        r = self.rank
        ms.failed[r] = True
        ms.finished[r] = True
        ms.blocked[r] = False
        ms.finish_time[r] = time
        if time > ms.clock.item(r):
            ms.clock[r] = time
        self.handles.clear()
        self.rslots.clear()
        # A dead rank posts no further receives, so eager messages
        # already queued here can never match; drop them so no later
        # matching scan (or memory) ever sees a dead rank's inbox.
        self.pending.clear()
        # ``parked`` is deliberately NOT cleared: the entries left after
        # ``_fail_rank`` strips the dead rank's own sends belong to
        # still-*live* senders blocked in rendezvous sends to this rank.
        # They can never transfer (no receive will be posted), but the
        # wait-for graph walks every destination's parked queue to
        # explain the resulting deadlock -- clearing them here would
        # turn "rank 3 blocked on rendezvous send to dead rank 1" into
        # an unexplained hang.
        self.anywait = None
        self.collective = None

    def __repr__(self) -> str:
        return (
            f"RankState(rank={self.rank}, clock={self.clock}, "
            f"finished={self.finished}, failed={self.failed}, "
            f"blocked={self.blocked}, handles={len(self.handles)})"
        )
