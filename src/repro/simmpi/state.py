"""Per-rank simulation state and the unified request-handle table.

One :class:`RankState` consolidates everything the engine used to keep
in parallel per-rank lists: the virtual clock, aggregate statistics,
lifecycle flags, the queues of unmatched eager messages and parked
rendezvous senders, and the **handle table** -- a dict keyed by handle
id holding every outstanding non-blocking request (posted receives and
in-progress sends alike).  The dict replaces the old linear
``find_slot``/``slots.remove`` scans with O(1) lookup and removal, and
its insertion order *is* MPI post order, which the matching rules rely
on.

Alongside the unified table the state keeps ``rslots``, an
insertion-ordered dict of just the posted receives.  Message matching
scans only receives, and filtering them out of the mixed handle table
with an ``isinstance`` per handle was one of the hottest lines in the
engine; the second dict trades one extra O(1) insert/remove per handle
for a scan over exactly the right objects.

Everything here is a plain ``__slots__`` class: these objects are
allocated per message and per posted receive, so they sit directly on
the engine's fast path.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Union

from repro.simmpi.requests import ANY_SOURCE, ANY_TAG, InFlight
from repro.simmpi.trace import RankStats
from repro.util.errors import CommunicationError


class ReceiveSlot:
    """One outstanding posted receive."""

    __slots__ = ("handle_id", "source", "tag", "msg", "waiting", "blocked_since")

    def __init__(
        self,
        handle_id: int,
        source: int,
        tag: int,
        msg: Optional[InFlight] = None,
        waiting: bool = False,
        blocked_since: float = 0.0,
    ):
        self.handle_id = handle_id
        self.source = source
        self.tag = tag
        self.msg = msg
        #: True while the owning rank is blocked in a wait on this handle.
        self.waiting = waiting
        self.blocked_since = blocked_since

    def matches(self, msg: InFlight) -> bool:
        if self.source != ANY_SOURCE and self.source != msg.source:
            return False
        if self.tag != ANY_TAG and self.tag != msg.tag:
            return False
        return True

    @property
    def ready(self) -> bool:
        """A message is bound: a wait on this handle can complete."""
        return self.msg is not None

    def completion_time(self, now: float) -> float:
        return max(now, self.msg.arrival_time)

    def __repr__(self) -> str:
        return (
            f"ReceiveSlot(handle_id={self.handle_id}, source={self.source}, "
            f"tag={self.tag}, msg={self.msg!r}, waiting={self.waiting})"
        )


class SendHandle:
    """One outstanding non-blocking send."""

    __slots__ = (
        "handle_id", "dest", "tag", "nbytes",
        "complete_at", "waiting", "blocked_since", "hs_cause",
    )

    def __init__(
        self,
        handle_id: int,
        dest: int,
        tag: int,
        nbytes: float,
        complete_at: Optional[float] = None,
        waiting: bool = False,
        blocked_since: float = 0.0,
        hs_cause: Any = None,
    ):
        self.handle_id = handle_id
        self.dest = dest
        self.tag = tag
        self.nbytes = nbytes
        #: Virtual time the sender's CPU is clear of this send; None while
        #: a rendezvous isend is still parked awaiting its handshake.
        self.complete_at = complete_at
        self.waiting = waiting
        self.blocked_since = blocked_since
        #: Causal edge for span tracing (set only when tracing): the
        #: rendezvous handshake that completed this handle remotely.
        self.hs_cause = hs_cause

    @property
    def ready(self) -> bool:
        return self.complete_at is not None

    def completion_time(self, now: float) -> float:
        return max(now, self.complete_at)

    def __repr__(self) -> str:
        return (
            f"SendHandle(handle_id={self.handle_id}, dest={self.dest}, "
            f"tag={self.tag}, nbytes={self.nbytes}, complete_at={self.complete_at})"
        )


Handle = Union[ReceiveSlot, SendHandle]


class ParkedSend:
    """A rendezvous send waiting for its matching receive to be posted.

    ``handle`` is set for non-blocking sends (the sender keeps running
    and synchronises via the handle); ``None`` means the sender is
    blocked in the send itself.
    """

    __slots__ = (
        "source", "dest", "tag", "payload", "nbytes",
        "seq", "park_time", "send_time", "handle",
    )

    def __init__(
        self,
        source: int,
        dest: int,
        tag: int,
        payload: Any,
        nbytes: float,
        seq: int,
        park_time: float,
        send_time: float,
        handle: Optional[SendHandle] = None,
    ):
        self.source = source
        self.dest = dest
        self.tag = tag
        self.payload = payload
        self.nbytes = nbytes
        self.seq = seq
        self.park_time = park_time
        self.send_time = send_time
        self.handle = handle

    def __repr__(self) -> str:
        return (
            f"ParkedSend(source={self.source}, dest={self.dest}, tag={self.tag}, "
            f"nbytes={self.nbytes}, park_time={self.park_time})"
        )


class RankState:
    """Everything the engine tracks for one rank."""

    __slots__ = (
        "rank", "stats", "clock", "finished", "failed", "blocked",
        "handles", "rslots", "pending", "parked", "anywait", "collective",
        "_next_handle",
    )

    def __init__(self, rank: int, stats: RankStats):
        self.rank = rank
        self.stats = stats
        self.clock = 0.0
        self.finished = False
        self.failed = False
        #: Rank is inside a blocking wait (recv/wait/waitany or a parked
        #: blocking rendezvous send).
        self.blocked = False
        #: Unified handle table: handle id -> outstanding request.
        self.handles: Dict[int, Handle] = {}
        #: Posted receives only, same insertion (= MPI post) order as
        #: ``handles``; the message-matching scan reads this directly.
        self.rslots: Dict[int, ReceiveSlot] = {}
        #: Unmatched eager arrivals addressed to this rank, in post order.
        self.pending: List[InFlight] = []
        #: Rendezvous senders parked *at this destination*, in post order.
        self.parked: List[ParkedSend] = []
        #: Handle ids of an in-progress waitany, or None.
        self.anywait: Optional[List[int]] = None
        #: Key of the macro collective this rank is parked in (engine
        #: gather key), or None; consulted by the wait-for graph so a
        #: deadlock report can say *which* collective never completed.
        self.collective: Optional[tuple] = None
        self._next_handle = 0

    def new_handle_id(self) -> int:
        hid = self._next_handle
        self._next_handle += 1
        return hid

    def add_handle(self, handle: Handle) -> None:
        self.handles[handle.handle_id] = handle
        if type(handle) is ReceiveSlot:
            self.rslots[handle.handle_id] = handle

    def require_handle(self, handle_id: int) -> Handle:
        try:
            return self.handles[handle_id]
        except KeyError:
            raise CommunicationError(
                f"rank {self.rank} waits on unknown or already-completed "
                f"request handle {handle_id}"
            ) from None

    def pop_handle(self, handle_id: int) -> Handle:
        self.rslots.pop(handle_id, None)
        return self.handles.pop(handle_id)

    def receive_slots(self) -> Iterable[ReceiveSlot]:
        """Posted receives in post order (dict insertion order)."""
        return self.rslots.values()

    def fail(self, time: float) -> None:
        """Node death: freeze the clock, drop all outstanding requests."""
        self.failed = True
        self.finished = True
        self.blocked = False
        self.stats.finish_time = time
        self.clock = max(self.clock, time)
        self.handles.clear()
        self.rslots.clear()
        self.anywait = None
        self.collective = None

    def __repr__(self) -> str:
        return (
            f"RankState(rank={self.rank}, clock={self.clock}, "
            f"finished={self.finished}, failed={self.failed}, "
            f"blocked={self.blocked}, handles={len(self.handles)})"
        )
