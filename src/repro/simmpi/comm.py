"""Rank-side communication facade.

Each rank program receives a :class:`Comm`.  Every operation is a
generator to be driven with ``yield from``::

    def program(comm):
        data = np.full(4, comm.rank, dtype=float)
        total = yield from comm.allreduce(data)
        yield from comm.compute(flops=1e6)
        if comm.rank == 0:
            yield from comm.send(total, dest=1, tag=7)
        elif comm.rank == 1:
            msg = yield from comm.recv(source=0, tag=7)
        return total.sum()

The facade is deliberately close to MPI's lowercase (pickle-object)
interface from mpi4py, which is what the ASTA software-tools effort the
paper describes eventually standardised into.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Sequence, Union

import numpy as np

from repro.simmpi import collectives as _coll
from repro.simmpi import stencil as _stencil
from repro.simmpi.requests import (
    ANY_SOURCE,
    ANY_TAG,
    COLLECTIVE_TAG_BASE,
    ComputeReq,
    IrecvReq,
    IsendReq,
    RecvReq,
    SendReq,
    WaitanyReq,
    WaitReq,
    validate_compute,
)
from repro.util.errors import CommunicationError


class _NullScope:
    """Shared no-op context manager: ``comm.phase`` when not tracing."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class _PhaseScope:
    """Pushes/pops one label on the comm's phase stack."""

    __slots__ = ("_comm", "_name")

    def __init__(self, comm: "Comm", name: str):
        self._comm = comm
        self._name = name

    def __enter__(self) -> None:
        self._comm._phases.append(self._name)

    def __exit__(self, *exc: Any) -> bool:
        self._comm._phases.pop()
        return False


class Comm:
    """Communicator bound to one rank of a simulated machine.

    The primitive operations reuse one *scratch request* per request
    type instead of allocating a fresh object per call: the engine
    always consumes a request's fields before the yielding generator
    resumes, so by the time the next operation refills the scratch the
    previous use is complete.  Request allocation was the single
    largest per-event cost in the engine's hot loop.
    """

    __slots__ = (
        "rank", "size", "machine", "_rng", "_streams", "_coll_seq", "_phases",
        "_tracing", "_macro", "_send_req", "_isend_req", "_recv_req",
        "_irecv_req", "_wait_req", "_compute_req",
    )

    def __init__(
        self,
        rank: int,
        size: int,
        machine,
        rng: Optional[np.random.Generator] = None,
        *,
        streams=None,
    ):
        self.rank = rank
        self.size = size
        self.machine = machine
        # Independent per-rank random stream: either given concretely, or
        # derived O(1) from a RankStreams source on first access (most
        # rank programs never touch comm.rng, so lazy bring-up skips the
        # PCG64 construction entirely).
        self._rng = rng
        self._streams = streams
        # Collective sequence number: gives every collective invocation
        # a distinct internal tag space so that back-to-back collectives
        # can never cross-match (sense reversal, generalised).
        self._coll_seq = 0
        # Phase-label stack consumed by span tracing (see phase()).
        # The engine flips _tracing on before the rank programs start;
        # untraced runs get the shared no-op scope.
        self._phases: list = []
        self._tracing = False
        # The engine flips _macro on when collectives may be evaluated
        # as engine-level macro events (untraced, plain alpha-beta
        # delivery, no fault injection); see repro.simmpi.macro.
        self._macro = False
        # Per-rank scratch requests (see class docstring).
        self._send_req = SendReq()
        self._isend_req = IsendReq()
        self._recv_req = RecvReq()
        self._irecv_req = IrecvReq()
        self._wait_req = WaitReq(0)
        self._compute_req = ComputeReq(seconds=0.0)

    # -- per-rank random stream ----------------------------------------------

    @property
    def rng(self) -> np.random.Generator:
        """Independent per-rank random stream (derived on first access)."""
        rng = self._rng
        if rng is None:
            if self._streams is None:
                raise CommunicationError(
                    f"rank {self.rank} communicator has no random stream source"
                )
            rng = self._rng = self._streams[self.rank]
        return rng

    @rng.setter
    def rng(self, value: np.random.Generator) -> None:
        self._rng = value

    # -- phase labelling ------------------------------------------------------

    def phase(self, name: str):
        """Label the enclosed operations for span tracing.

        Purely local bookkeeping -- no communication, and a shared no-op
        when the engine is not tracing.  Nests: the effective label is
        the ``/``-joined stack (``"panel/bcast"``), and the collective
        library pushes its own labels, so a user phase around a
        broadcast shows up as ``myphase/bcast``::

            with comm.phase("halo"):
                yield from comm.send(ghost, up, tag=0)
        """
        if not self._tracing:
            return _NULL_SCOPE
        return _PhaseScope(self, name)

    def current_phase(self) -> Optional[str]:
        """The effective phase label right now (None outside phases)."""
        if not self._phases:
            return None
        return "/".join(self._phases)

    # -- identity helpers ---------------------------------------------------

    def is_root(self, root: int = 0) -> bool:
        """True on the designated root rank."""
        return self.rank == root

    def next_tag_block(self) -> int:
        """Reserve a fresh block of internal tags for one collective.

        All ranks execute the same sequence of collectives on a given
        communicator (an MPI correctness requirement), so the per-rank
        counters stay aligned and every rank derives the same block.
        """
        self._coll_seq += 1
        return COLLECTIVE_TAG_BASE - self._coll_seq * _coll._TAG_STRIDE

    def group(self, members: Sequence[int]) -> "GroupComm":
        """A sub-communicator over ``members`` (global ranks).

        Purely local construction: every member must compute the same
        ``members`` list deterministically (e.g. the rows of a process
        grid).  The calling rank must be a member.
        """
        from repro.simmpi.group import GroupComm

        return GroupComm(self, members)

    # -- collective-internal scratch access -----------------------------------
    #
    # The collective library yields these pre-filled scratch requests
    # *directly* instead of delegating through send()/recv() generators:
    # one less generator frame per resume, and no result translation
    # when only the payload is consumed.  Coordinates are already wire
    # coordinates (the GroupComm overrides translate), and nbytes is
    # reset because the scratch may hold a stale user override.

    def _fill_send(self, payload: Any, dest: int, tag: int) -> SendReq:
        req = self._send_req
        req.dest = dest
        req.payload = payload
        req.tag = tag
        req.nbytes = None
        return req

    def _fill_isend(self, payload: Any, dest: int, tag: int) -> IsendReq:
        req = self._isend_req
        req.dest = dest
        req.payload = payload
        req.tag = tag
        req.nbytes = None
        return req

    def _fill_recv(self, source: int, tag: int) -> RecvReq:
        req = self._recv_req
        req.source = source
        req.tag = tag
        return req

    def _fill_wait(self, handle: int) -> WaitReq:
        req = self._wait_req
        req.handle = handle
        return req

    def _fill_compute(self, flops: float) -> ComputeReq:
        """Scratch flops-charge for internal hot loops; callers own the
        validation :meth:`compute` would do (``flops >= 0``)."""
        req = self._compute_req
        req.flops = flops
        req.seconds = None
        req.efficiency = None
        return req

    # -- primitive operations -------------------------------------------------

    def send(
        self,
        payload: Any,
        dest: int,
        tag: int = 0,
        nbytes: Optional[float] = None,
    ) -> Generator:
        """Eager buffered send; completes after the startup overhead."""
        if not 0 <= dest < self.size:
            raise CommunicationError(
                f"send dest {dest} out of range for size {self.size}"
            )
        req = self._send_req
        req.dest = dest
        req.payload = payload
        req.tag = tag
        req.nbytes = nbytes
        yield req
        req.payload = None  # do not pin the buffer past the send

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Blocking receive; returns the :class:`Message`."""
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise CommunicationError(
                f"recv source {source} out of range for size {self.size}"
            )
        req = self._recv_req
        req.source = source
        req.tag = tag
        msg = yield req
        return msg

    def isend(
        self,
        payload: Any,
        dest: int,
        tag: int = 0,
        nbytes: Optional[float] = None,
    ) -> Generator:
        """Non-blocking send: returns a handle for :meth:`wait`.

        An eager isend costs the same as :meth:`send` (the CPU still
        injects the message) and its handle is immediately complete.
        The benefit appears above the rendezvous threshold: where a
        blocking send stalls until the receiver posts, an isend returns
        at once and only the :meth:`wait` synchronises with the
        handshake, so independent work overlaps the wait::

            h = yield from comm.isend(big_block, dest=right)
            yield from comm.compute(flops=...)      # overlap
            yield from comm.wait(h)
        """
        if not 0 <= dest < self.size:
            raise CommunicationError(
                f"isend dest {dest} out of range for size {self.size}"
            )
        req = self._isend_req
        req.dest = dest
        req.payload = payload
        req.tag = tag
        req.nbytes = nbytes
        handle = yield req
        req.payload = None  # do not pin the buffer past the post
        return handle

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Non-blocking receive: returns a handle for :meth:`wait`.

        Posting is free; the message (if already queued) is bound to the
        handle immediately, enabling communication/computation overlap::

            handle = yield from comm.irecv(source=left)
            yield from comm.compute(flops=...)      # overlap
            msg = yield from comm.wait(handle)
        """
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise CommunicationError(
                f"irecv source {source} out of range for size {self.size}"
            )
        req = self._irecv_req
        req.source = source
        req.tag = tag
        handle = yield req
        return handle

    def wait(self, handle: int) -> Generator:
        """Complete one outstanding request.

        Returns the :class:`Message` for a receive handle, ``None`` for
        a send handle.
        """
        req = self._wait_req
        req.handle = handle
        msg = yield req
        return msg

    def waitall(self, handles) -> Generator:
        """Complete several outstanding requests; returns their results
        (messages for receives, ``None`` for sends) in handle order."""
        out = []
        req = self._wait_req
        for handle in handles:
            req.handle = handle
            msg = yield req
            out.append(msg)
        return out

    def waitany(self, handles) -> Generator:
        """Complete exactly one of several outstanding requests.

        Returns ``(index, result)`` where ``index`` is the position in
        ``handles`` of the request that finished first (earliest known
        completion, ties by list order -- a deterministic refinement of
        ``MPI_Waitany``) and ``result`` is its message (``None`` for a
        send handle).  The remaining handles stay outstanding.
        """
        result = yield WaitanyReq(handles=tuple(handles))
        return result

    def sendrecv(
        self,
        payload: Any,
        dest: int,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
        nbytes: Optional[float] = None,
    ) -> Generator:
        """Combined shift operation (safe under eager sends)."""
        yield from self.send(payload, dest, sendtag, nbytes)
        msg = yield from self.recv(source, recvtag)
        return msg

    def compute(
        self,
        flops: Optional[float] = None,
        seconds: Optional[float] = None,
        efficiency: Optional[float] = None,
    ) -> Generator:
        """Charge local work to the rank's virtual clock."""
        validate_compute(flops, seconds)
        req = self._compute_req
        req.flops = flops
        req.seconds = seconds
        req.efficiency = efficiency
        yield req

    # -- collectives (delegated to repro.simmpi.collectives) -----------------

    def barrier(self) -> Generator:
        """Dissemination barrier: all ranks synchronise."""
        return _coll.barrier(self)

    def bcast(self, value: Any, root: int = 0, algorithm: str = "tree") -> Generator:
        """Broadcast ``value`` from ``root``; every rank returns it."""
        return _coll.bcast(self, value, root, algorithm)

    def reduce(
        self,
        value: Any,
        op: Union[str, Callable] = "sum",
        root: int = 0,
    ) -> Generator:
        """Combine values onto ``root`` (others return None)."""
        return _coll.reduce(self, value, op, root)

    def allreduce(
        self,
        value: Any,
        op: Union[str, Callable] = "sum",
        algorithm: str = "reduce_bcast",
    ) -> Generator:
        """Combine values; every rank returns the result."""
        return _coll.allreduce(self, value, op, algorithm)

    def gather(self, value: Any, root: int = 0, algorithm: str = "tree") -> Generator:
        """Collect one value per rank onto ``root`` as a rank-ordered list."""
        return _coll.gather(self, value, root, algorithm)

    def allgather(self, value: Any, algorithm: str = "ring") -> Generator:
        """Collect one value per rank onto every rank."""
        return _coll.allgather(self, value, algorithm)

    def scatter(
        self, values: Optional[Sequence[Any]], root: int = 0, algorithm: str = "tree"
    ) -> Generator:
        """Distribute ``values[i]`` from ``root`` to rank ``i``."""
        return _coll.scatter(self, values, root, algorithm)

    def alltoall(self, values: Sequence[Any], algorithm: str = "cyclic") -> Generator:
        """Personalised exchange: rank i's ``values[j]`` goes to rank j."""
        return _coll.alltoall(self, values, algorithm)

    def scan(self, value: Any, op: Union[str, Callable] = "sum") -> Generator:
        """Inclusive prefix reduction: rank r returns op(v_0 .. v_r)."""
        return _coll.scan(self, value, op)

    def reduce_scatter(
        self, values: Sequence[Any], op: Union[str, Callable] = "sum"
    ) -> Generator:
        """Reduce ``values[j]`` across ranks; rank j keeps element j."""
        return _coll.reduce_scatter(self, values, op)

    # -- stencil phases (delegated to repro.simmpi.stencil) ------------------

    def exchange(
        self, spec: "_stencil.StencilSpec", payloads: Sequence[Any]
    ) -> Generator:
        """Declared neighbor-exchange stencil phase: send
        ``payloads[j]`` toward ``spec.offsets[j]``, return the received
        payloads per offset (``None`` where an open-grid offset has no
        peer).  Collective in shape -- every rank calls it with the
        same spec -- and priced in closed form under engine macro-ops
        (see :mod:`repro.simmpi.stencil`)."""
        return _stencil.exchange(self, spec, payloads)


class CommTable:
    """Lazy per-rank :class:`Comm` materialization for one run.

    Bring-up registers only the table (O(1)); a rank's communicator is
    built the first time that rank is resumed.  Engine-level flags set
    before the run (tracing, macro-ops) are applied at materialization,
    so a late-built Comm is indistinguishable from an eagerly-built one.
    Under a macro certificate or a closed-form run, ranks that are never
    resumed never get a Comm (or an rng, or a generator frame) at all --
    their clocks and stats live in the columnar ``MachineState``.
    """

    __slots__ = ("size", "machine", "streams", "tracing", "macro", "_comms",
                 "materialized")

    def __init__(self, size: int, machine, streams):
        self.size = size
        self.machine = machine
        #: RankStreams source shared by every materialized Comm.
        self.streams = streams
        self.tracing = False
        self.macro = False
        self._comms: list = [None] * size
        #: How many ranks have materialized so far (observability).
        self.materialized = 0

    def __len__(self) -> int:
        return self.size

    def peek(self, rank: int) -> Optional[Comm]:
        """The rank's Comm if already materialized, else None."""
        return self._comms[rank]

    def __getitem__(self, rank: int) -> Comm:
        comm = self._comms[rank]
        if comm is None:
            comm = Comm(rank, self.size, self.machine, streams=self.streams)
            comm._tracing = self.tracing
            comm._macro = self.macro
            self._comms[rank] = comm
            self.materialized += 1
        return comm

    def materialize_all(self) -> None:
        """Eagerly build every rank's Comm with concrete rng streams.

        This is the A/B reference path (``Engine(lazy=False)``): one
        batched stream derivation, then p communicator objects up front,
        exactly what the pre-lazy engine did at bring-up.
        """
        gens = self.streams.generators()
        comms = self._comms
        for rank in range(self.size):
            if comms[rank] is None:
                comm = Comm(rank, self.size, self.machine, gens[rank])
                comm._tracing = self.tracing
                comm._macro = self.macro
                comms[rank] = comm
                self.materialized += 1
            elif comms[rank]._rng is None:
                comms[rank]._rng = gens[rank]
