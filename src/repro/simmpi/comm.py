"""Rank-side communication facade.

Each rank program receives a :class:`Comm`.  Every operation is a
generator to be driven with ``yield from``::

    def program(comm):
        data = np.full(4, comm.rank, dtype=float)
        total = yield from comm.allreduce(data)
        yield from comm.compute(flops=1e6)
        if comm.rank == 0:
            yield from comm.send(total, dest=1, tag=7)
        elif comm.rank == 1:
            msg = yield from comm.recv(source=0, tag=7)
        return total.sum()

The facade is deliberately close to MPI's lowercase (pickle-object)
interface from mpi4py, which is what the ASTA software-tools effort the
paper describes eventually standardised into.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Sequence, Union

import numpy as np

from repro.simmpi import collectives as _coll
from repro.simmpi.requests import (
    ANY_SOURCE,
    ANY_TAG,
    ComputeReq,
    IrecvReq,
    IsendReq,
    RecvReq,
    SendReq,
    WaitanyReq,
    WaitReq,
)
from repro.util.errors import CommunicationError


class _NullScope:
    """Shared no-op context manager: ``comm.phase`` when not tracing."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class _PhaseScope:
    """Pushes/pops one label on the comm's phase stack."""

    __slots__ = ("_comm", "_name")

    def __init__(self, comm: "Comm", name: str):
        self._comm = comm
        self._name = name

    def __enter__(self) -> None:
        self._comm._phases.append(self._name)

    def __exit__(self, *exc: Any) -> bool:
        self._comm._phases.pop()
        return False


class Comm:
    """Communicator bound to one rank of a simulated machine."""

    def __init__(self, rank: int, size: int, machine, rng: np.random.Generator):
        self.rank = rank
        self.size = size
        self.machine = machine
        #: Independent per-rank random stream.
        self.rng = rng
        # Collective sequence number: gives every collective invocation
        # a distinct internal tag space so that back-to-back collectives
        # can never cross-match (sense reversal, generalised).
        self._coll_seq = 0
        # Phase-label stack consumed by span tracing (see phase()).
        # The engine flips _tracing on before the rank programs start;
        # untraced runs get the shared no-op scope.
        self._phases: list = []
        self._tracing = False

    # -- phase labelling ------------------------------------------------------

    def phase(self, name: str):
        """Label the enclosed operations for span tracing.

        Purely local bookkeeping -- no communication, and a shared no-op
        when the engine is not tracing.  Nests: the effective label is
        the ``/``-joined stack (``"panel/bcast"``), and the collective
        library pushes its own labels, so a user phase around a
        broadcast shows up as ``myphase/bcast``::

            with comm.phase("halo"):
                yield from comm.send(ghost, up, tag=0)
        """
        if not self._tracing:
            return _NULL_SCOPE
        return _PhaseScope(self, name)

    def current_phase(self) -> Optional[str]:
        """The effective phase label right now (None outside phases)."""
        if not self._phases:
            return None
        return "/".join(self._phases)

    # -- identity helpers ---------------------------------------------------

    def is_root(self, root: int = 0) -> bool:
        """True on the designated root rank."""
        return self.rank == root

    def next_tag_block(self) -> int:
        """Reserve a fresh block of internal tags for one collective.

        All ranks execute the same sequence of collectives on a given
        communicator (an MPI correctness requirement), so the per-rank
        counters stay aligned and every rank derives the same block.
        """
        self._coll_seq += 1
        from repro.simmpi.collectives import _TAG_STRIDE
        from repro.simmpi.requests import COLLECTIVE_TAG_BASE

        return COLLECTIVE_TAG_BASE - self._coll_seq * _TAG_STRIDE

    def group(self, members: Sequence[int]) -> "GroupComm":
        """A sub-communicator over ``members`` (global ranks).

        Purely local construction: every member must compute the same
        ``members`` list deterministically (e.g. the rows of a process
        grid).  The calling rank must be a member.
        """
        from repro.simmpi.group import GroupComm

        return GroupComm(self, members)

    # -- primitive operations -------------------------------------------------

    def send(
        self,
        payload: Any,
        dest: int,
        tag: int = 0,
        nbytes: Optional[float] = None,
    ) -> Generator:
        """Eager buffered send; completes after the startup overhead."""
        if not 0 <= dest < self.size:
            raise CommunicationError(
                f"send dest {dest} out of range for size {self.size}"
            )
        yield SendReq(dest=dest, payload=payload, tag=tag, nbytes=nbytes)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Blocking receive; returns the :class:`Message`."""
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise CommunicationError(
                f"recv source {source} out of range for size {self.size}"
            )
        msg = yield RecvReq(source=source, tag=tag)
        return msg

    def isend(
        self,
        payload: Any,
        dest: int,
        tag: int = 0,
        nbytes: Optional[float] = None,
    ) -> Generator:
        """Non-blocking send: returns a handle for :meth:`wait`.

        An eager isend costs the same as :meth:`send` (the CPU still
        injects the message) and its handle is immediately complete.
        The benefit appears above the rendezvous threshold: where a
        blocking send stalls until the receiver posts, an isend returns
        at once and only the :meth:`wait` synchronises with the
        handshake, so independent work overlaps the wait::

            h = yield from comm.isend(big_block, dest=right)
            yield from comm.compute(flops=...)      # overlap
            yield from comm.wait(h)
        """
        if not 0 <= dest < self.size:
            raise CommunicationError(
                f"isend dest {dest} out of range for size {self.size}"
            )
        handle = yield IsendReq(dest=dest, payload=payload, tag=tag, nbytes=nbytes)
        return handle

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Non-blocking receive: returns a handle for :meth:`wait`.

        Posting is free; the message (if already queued) is bound to the
        handle immediately, enabling communication/computation overlap::

            handle = yield from comm.irecv(source=left)
            yield from comm.compute(flops=...)      # overlap
            msg = yield from comm.wait(handle)
        """
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise CommunicationError(
                f"irecv source {source} out of range for size {self.size}"
            )
        handle = yield IrecvReq(source=source, tag=tag)
        return handle

    def wait(self, handle: int) -> Generator:
        """Complete one outstanding request.

        Returns the :class:`Message` for a receive handle, ``None`` for
        a send handle.
        """
        msg = yield WaitReq(handle=handle)
        return msg

    def waitall(self, handles) -> Generator:
        """Complete several outstanding requests; returns their results
        (messages for receives, ``None`` for sends) in handle order."""
        out = []
        for handle in handles:
            msg = yield WaitReq(handle=handle)
            out.append(msg)
        return out

    def waitany(self, handles) -> Generator:
        """Complete exactly one of several outstanding requests.

        Returns ``(index, result)`` where ``index`` is the position in
        ``handles`` of the request that finished first (earliest known
        completion, ties by list order -- a deterministic refinement of
        ``MPI_Waitany``) and ``result`` is its message (``None`` for a
        send handle).  The remaining handles stay outstanding.
        """
        result = yield WaitanyReq(handles=tuple(handles))
        return result

    def sendrecv(
        self,
        payload: Any,
        dest: int,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
        nbytes: Optional[float] = None,
    ) -> Generator:
        """Combined shift operation (safe under eager sends)."""
        yield from self.send(payload, dest, sendtag, nbytes)
        msg = yield from self.recv(source, recvtag)
        return msg

    def compute(
        self,
        flops: Optional[float] = None,
        seconds: Optional[float] = None,
        efficiency: Optional[float] = None,
    ) -> Generator:
        """Charge local work to the rank's virtual clock."""
        yield ComputeReq(flops=flops, seconds=seconds, efficiency=efficiency)

    # -- collectives (delegated to repro.simmpi.collectives) -----------------

    def barrier(self) -> Generator:
        """Dissemination barrier: all ranks synchronise."""
        return _coll.barrier(self)

    def bcast(self, value: Any, root: int = 0, algorithm: str = "tree") -> Generator:
        """Broadcast ``value`` from ``root``; every rank returns it."""
        return _coll.bcast(self, value, root, algorithm)

    def reduce(
        self,
        value: Any,
        op: Union[str, Callable] = "sum",
        root: int = 0,
    ) -> Generator:
        """Combine values onto ``root`` (others return None)."""
        return _coll.reduce(self, value, op, root)

    def allreduce(
        self,
        value: Any,
        op: Union[str, Callable] = "sum",
        algorithm: str = "reduce_bcast",
    ) -> Generator:
        """Combine values; every rank returns the result."""
        return _coll.allreduce(self, value, op, algorithm)

    def gather(self, value: Any, root: int = 0, algorithm: str = "tree") -> Generator:
        """Collect one value per rank onto ``root`` as a rank-ordered list."""
        return _coll.gather(self, value, root, algorithm)

    def allgather(self, value: Any, algorithm: str = "ring") -> Generator:
        """Collect one value per rank onto every rank."""
        return _coll.allgather(self, value, algorithm)

    def scatter(
        self, values: Optional[Sequence[Any]], root: int = 0, algorithm: str = "tree"
    ) -> Generator:
        """Distribute ``values[i]`` from ``root`` to rank ``i``."""
        return _coll.scatter(self, values, root, algorithm)

    def alltoall(self, values: Sequence[Any], algorithm: str = "cyclic") -> Generator:
        """Personalised exchange: rank i's ``values[j]`` goes to rank j."""
        return _coll.alltoall(self, values, algorithm)

    def scan(self, value: Any, op: Union[str, Callable] = "sum") -> Generator:
        """Inclusive prefix reduction: rank r returns op(v_0 .. v_r)."""
        return _coll.scan(self, value, op)

    def reduce_scatter(
        self, values: Sequence[Any], op: Union[str, Callable] = "sum"
    ) -> Generator:
        """Reduce ``values[j]`` across ranks; rank j keeps element j."""
        return _coll.reduce_scatter(self, values, op)
