"""Post-run analysis: utilisation tables and ASCII timelines.

The Delta's application teams lived off exactly two post-mortem views:
per-node utilisation (who idled?) and message timelines (where did the
wave of work stall?).  This module derives both from a
:class:`~repro.simmpi.engine.SimResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.simmpi.engine import SimResult
from repro.util.errors import SimulationError
from repro.util.tables import render_table
from repro.util.units import format_time


@dataclass(frozen=True)
class RankUtilisation:
    """Busy-time breakdown for one rank."""

    rank: int
    compute_fraction: float
    comm_fraction: float
    idle_fraction: float


def utilisation(result: SimResult) -> List[RankUtilisation]:
    """Per-rank busy breakdown against the run's makespan.

    Idle is whatever the makespan minus compute minus communication
    leaves: time a rank spent finished (or unaccounted overlap).
    """
    makespan = result.time
    out = []
    for stats in result.stats:
        if makespan <= 0:
            out.append(RankUtilisation(stats.rank, 0.0, 0.0, 1.0))
            continue
        comp = stats.compute_time / makespan
        comm = stats.comm_time / makespan
        out.append(
            RankUtilisation(
                rank=stats.rank,
                compute_fraction=comp,
                comm_fraction=comm,
                idle_fraction=max(0.0, 1.0 - comp - comm),
            )
        )
    return out


def utilisation_table(result: SimResult) -> str:
    """Text table of the per-rank breakdown."""
    rows = [
        [u.rank, 100.0 * u.compute_fraction, 100.0 * u.comm_fraction,
         100.0 * u.idle_fraction]
        for u in utilisation(result)
    ]
    return render_table(
        ["Rank", "Compute %", "Comm %", "Idle %"],
        rows,
        title=f"Utilisation over {format_time(result.time)} makespan",
        float_fmt=",.1f",
    )


def load_balance(result: SimResult) -> float:
    """Max over mean busy time across ranks (1.0 = perfectly balanced).

    The standard imbalance metric: the makespan penalty attributable to
    uneven work distribution.
    """
    busy = [s.busy_time for s in result.stats]
    mean = sum(busy) / len(busy)
    if mean == 0:
        return 1.0
    return max(busy) / mean


def message_timeline(result: SimResult, *, width: int = 60) -> str:
    """ASCII send/receive timeline from the message trace.

    Requires the run to have been executed with ``trace=True``; each
    traced message prints as a row with its wire interval marked.
    """
    records = result.tracer.records
    if not records:
        raise SimulationError(
            "no message trace: run the engine with trace=True"
        )
    t_end = max(r.recv_time for r in records) or 1.0
    lines = [f"timeline over {format_time(t_end)} ({len(records)} messages)"]
    for rec in records:
        start = int(width * rec.arrival_time / t_end)
        stop = max(start + 1, int(width * rec.recv_time / t_end))
        stop = min(stop, width)
        bar = " " * start + "#" * (stop - start)
        lines.append(
            f"{rec.source:>4} ->{rec.dest:>4} tag {rec.tag:>5} |{bar:<{width}}|"
        )
    return "\n".join(lines)


def hottest_pairs(result: SimResult, top: int = 5) -> List[tuple]:
    """(source, dest, count) for the most-trafficked rank pairs."""
    counts = result.tracer.by_pair()
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return [(src, dst, n) for (src, dst), n in ranked[:top]]
