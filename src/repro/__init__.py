"""repro: a simulation reproduction of the Federal HPCC Program stack.

The paper this library reproduces -- *High Performance Computing and
Communications Program* (Lee Holcomb, Supercomputing '92) -- is a
programmatic overview: the Touchstone Delta testbed, the NREN network,
the ASTA algorithm effort, and the program's budget and consortia.
Each of those referenced systems is built here as a laptop-scale
simulation (see DESIGN.md for the substitution table):

* :mod:`repro.machine`   -- distributed-memory machine models (Delta et al.)
* :mod:`repro.simmpi`    -- discrete-event message-passing simulator
* :mod:`repro.linalg`    -- distributed LU/SUMMA/CG/FFT + the HPL model
* :mod:`repro.apps`      -- grand-challenge kernels (CFD, ocean, N-body)
* :mod:`repro.network`   -- NREN / consortium wide-area network model
* :mod:`repro.program`   -- agencies, budget, responsibilities, consortia
* :mod:`repro.core`      -- workloads, testbeds, evaluation campaigns

Quickstart::

    from repro.machine import touchstone_delta
    from repro.linalg import delta_linpack

    print(touchstone_delta().describe())
    print(delta_linpack())   # the paper's 13-vs-32 GFLOPS exhibit
"""

__version__ = "1.0.0"

from repro import apps, core, linalg, machine, network, program, simmpi, util

__all__ = [
    "apps",
    "core",
    "linalg",
    "machine",
    "network",
    "program",
    "simmpi",
    "util",
    "__version__",
]
