"""The Concurrent Supercomputing Consortium site network (exhibit T4-5).

The paper's figure shows the Delta at Caltech reached over: NSFnet T1
(1.5 Mbps) and T3 (45 Mbps), ESnet T1, the CASA gigabit testbed's
HIPPI/SONET at 800 Mbps, regional T1s and a 56 kbps regional tail.  The
partner list names DARPA, NSF, NASA, JPL, Caltech, and the Center for
Research on Parallel Computation (Rice, lead institution), among "over
14 government, industry and academia organizations".

Topology details beyond the figure are simplified exactly as the figure
itself says it is ("topologies of represented networks have been
simplified to better illustrate connectivity between CSC sites").
"""

from __future__ import annotations

from repro.network.graph import Site, WanLink, WideAreaNetwork
from repro.network.links import HIPPI_SONET, REGIONAL_56K, T1, T3

#: The machine's home site.
DELTA_SITE = "Caltech (Delta)"


def delta_consortium() -> WideAreaNetwork:
    """Build the consortium network of the T4-5 figure."""
    net = WideAreaNetwork(name="Concurrent Supercomputing Consortium")

    sites = [
        Site(DELTA_SITE, kind="academia"),
        Site("JPL", kind="center"),
        Site("NSFnet backbone", kind="backbone"),
        Site("ESnet backbone", kind="backbone"),
        Site("Regional network", kind="backbone"),
        Site("NSF", kind="government"),
        Site("DARPA", kind="government"),
        Site("NASA centers", kind="government"),
        Site("CRPC (Rice)", kind="academia"),
        Site("DOE laboratories", kind="government"),
        Site("Purdue", kind="academia"),
        Site("Intel SSD", kind="industry"),
        Site("Industry partners", kind="industry"),
        Site("Regional members", kind="academia"),
    ]
    for site in sites:
        net.add_site(site)

    links = [
        # CASA gigabit testbed: the 800 Mbps HIPPI/SONET run to JPL.
        WanLink(DELTA_SITE, "JPL", HIPPI_SONET, distance_km=20),
        # NSFnet attachment, T3 era backbone with T1 tails.
        WanLink(DELTA_SITE, "NSFnet backbone", T3, distance_km=200),
        WanLink("NSFnet backbone", "NSF", T3, distance_km=3700),
        WanLink("NSFnet backbone", "DARPA", T1, distance_km=3700),
        WanLink("NSFnet backbone", "NASA centers", T1, distance_km=600),
        WanLink("NSFnet backbone", "CRPC (Rice)", T1, distance_km=2200),
        WanLink("NSFnet backbone", "Purdue", T1, distance_km=2900),
        # ESnet attachment for the DOE partners.
        WanLink(DELTA_SITE, "ESnet backbone", T1, distance_km=600),
        WanLink("ESnet backbone", "DOE laboratories", T1, distance_km=1500),
        # Regional network tails.
        WanLink(DELTA_SITE, "Regional network", T1, distance_km=50),
        WanLink("Regional network", "Intel SSD", T1, distance_km=1500),
        WanLink("Regional network", "Industry partners", T1, distance_km=300),
        WanLink("Regional network", "Regional members", REGIONAL_56K, distance_km=300),
    ]
    for link in links:
        net.add_link(link)
    return net


#: Paper-quoted link speeds for the funding/benchmark exhibit, Mbps.
PAPER_LINK_SPEEDS_MBPS = {
    "NSFnet T1": 1.5,
    "NSFnet T3": 45.0,
    "ESnet T1": 1.5,
    "CASA HIPPI/SONET": 800.0,
    "Regional T1": 1.5,
    "Regional": 0.056,
}
