"""Utilisation-dependent delay: the M/M/1 view of a shared link.

Transfer estimates elsewhere assume a dedicated link; real NREN links
were shared, and the argument for upgrading was congestion as much as
raw rate.  The standard first-order model treats a link as an M/M/1
queue: with offered load ``rho`` (utilisation in [0, 1)), the expected
sojourn time of a packet of service time ``s`` is

    w(s, rho) = s / (1 - rho)

so latency blows up as utilisation approaches one -- the hockey-stick
curve every capacity-planning memo of the era drew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.network.graph import WideAreaNetwork
from repro.util.errors import NetworkError


def mm1_delay_factor(utilisation: float) -> float:
    """Queueing multiplier 1 / (1 - rho); requires rho in [0, 1)."""
    if not 0.0 <= utilisation < 1.0:
        raise NetworkError(
            f"utilisation must be in [0, 1), got {utilisation}"
        )
    return 1.0 / (1.0 - utilisation)


def loaded_transfer_time(
    network: WideAreaNetwork,
    src: str,
    dst: str,
    nbytes: float,
    utilisation: float,
    *,
    path: Sequence[str] = None,
) -> float:
    """Cut-through transfer time with every link at ``utilisation``.

    A uniform background load is the planning-memo simplification; the
    per-link demand model in :mod:`repro.network.capacity` refines it.
    """
    if nbytes < 0:
        raise NetworkError(f"nbytes must be >= 0, got {nbytes}")
    factor = mm1_delay_factor(utilisation)
    if path is None:
        path = network.widest_path(src, dst)
    links = network.path_links(list(path))
    if not links:
        return 0.0
    latency = sum(l.latency_s for l in links)
    bottleneck = min(l.link_class.throughput_bytes_per_s for l in links)
    return latency * factor + nbytes / (bottleneck / factor)


@dataclass(frozen=True)
class CongestionPoint:
    """One point of a congestion sweep."""

    utilisation: float
    time_s: float
    slowdown: float


def congestion_sweep(
    network: WideAreaNetwork,
    src: str,
    dst: str,
    nbytes: float,
    utilisations: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 0.9, 0.95),
) -> list:
    """Transfer time vs background utilisation (the hockey stick)."""
    base = loaded_transfer_time(network, src, dst, nbytes, 0.0)
    out = []
    for rho in utilisations:
        t = loaded_transfer_time(network, src, dst, nbytes, rho)
        out.append(CongestionPoint(utilisation=rho, time_s=t,
                                   slowdown=t / base if base > 0 else 1.0))
    return out
