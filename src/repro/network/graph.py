"""Site graph for wide-area network simulation.

A :class:`WideAreaNetwork` is a set of named sites joined by typed links
(:mod:`repro.network.links`), with propagation delay per link.  Routing
offers the two classic objectives:

* ``shortest_path`` -- minimise total one-way latency (propagation +
  per-link setup), the interactive-traffic objective;
* ``widest_path`` -- maximise the bottleneck throughput, the
  bulk-transfer objective.

Built on :mod:`networkx` for the graph algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import networkx as nx

from repro.network.links import LinkClass
from repro.util.errors import NetworkError

#: Speed of light in fibre, used to turn distances into delays.
FIBRE_KM_PER_S = 2.0e5


@dataclass(frozen=True)
class Site:
    """A consortium member site."""

    name: str
    kind: str = "center"  # government | industry | academia | center | backbone

    def __post_init__(self) -> None:
        allowed = {"government", "industry", "academia", "center", "backbone"}
        if self.kind not in allowed:
            raise NetworkError(f"unknown site kind {self.kind!r}; allowed: {sorted(allowed)}")


@dataclass(frozen=True)
class WanLink:
    """One edge of the site graph."""

    a: str
    b: str
    link_class: LinkClass
    distance_km: float = 100.0

    @property
    def propagation_s(self) -> float:
        return self.distance_km / FIBRE_KM_PER_S

    @property
    def latency_s(self) -> float:
        """One-way latency contribution: setup plus propagation."""
        return self.link_class.setup_latency_s + self.propagation_s


class WideAreaNetwork:
    """Named site graph with typed links and routing queries."""

    def __init__(self, name: str = "wan"):
        self.name = name
        self._graph = nx.Graph()
        self._sites: Dict[str, Site] = {}

    # -- construction --------------------------------------------------------

    def add_site(self, site: Site) -> None:
        if site.name in self._sites:
            raise NetworkError(f"duplicate site {site.name!r}")
        self._sites[site.name] = site
        self._graph.add_node(site.name)

    def add_link(self, link: WanLink) -> None:
        for end in (link.a, link.b):
            if end not in self._sites:
                raise NetworkError(f"link endpoint {end!r} is not a site")
        if link.a == link.b:
            raise NetworkError(f"self-link at {link.a!r}")
        if self._graph.has_edge(link.a, link.b):
            raise NetworkError(f"duplicate link {link.a!r} -- {link.b!r}")
        self._graph.add_edge(link.a, link.b, link=link)

    def connect(
        self, a: str, b: str, link_class: LinkClass, distance_km: float = 100.0
    ) -> None:
        """Convenience wrapper around :meth:`add_link`."""
        self.add_link(WanLink(a, b, link_class, distance_km))

    # -- introspection ---------------------------------------------------------

    @property
    def sites(self) -> List[Site]:
        return list(self._sites.values())

    def site(self, name: str) -> Site:
        try:
            return self._sites[name]
        except KeyError:
            raise NetworkError(f"unknown site {name!r}") from None

    @property
    def links(self) -> List[WanLink]:
        return [data["link"] for _, _, data in self._graph.edges(data=True)]

    def link_between(self, a: str, b: str) -> WanLink:
        self.site(a), self.site(b)
        data = self._graph.get_edge_data(a, b)
        if data is None:
            raise NetworkError(f"no direct link {a!r} -- {b!r}")
        return data["link"]

    def degree(self, name: str) -> int:
        self.site(name)
        return self._graph.degree[name]

    def is_connected(self) -> bool:
        if len(self._sites) == 0:
            return True
        return nx.is_connected(self._graph)

    # -- routing ---------------------------------------------------------------

    def _check_endpoints(self, src: str, dst: str) -> None:
        self.site(src)
        self.site(dst)
        if not nx.has_path(self._graph, src, dst):
            raise NetworkError(f"no route from {src!r} to {dst!r}")

    def shortest_path(self, src: str, dst: str) -> List[str]:
        """Minimum-latency route (site names, endpoints included)."""
        self._check_endpoints(src, dst)
        return nx.shortest_path(
            self._graph, src, dst,
            weight=lambda u, v, d: d["link"].latency_s,
        )

    def widest_path(self, src: str, dst: str) -> List[str]:
        """Maximum-bottleneck-throughput route.

        Computed by binary search over throughput thresholds (the graphs
        here are small).
        """
        self._check_endpoints(src, dst)
        rates = sorted(
            {data["link"].link_class.throughput_bytes_per_s
             for _, _, data in self._graph.edges(data=True)},
            reverse=True,
        )
        best: Optional[List[str]] = None
        for threshold in rates:
            sub = nx.Graph(
                (u, v, d)
                for u, v, d in self._graph.edges(data=True)
                if d["link"].link_class.throughput_bytes_per_s >= threshold
            )
            if sub.has_node(src) and sub.has_node(dst) and nx.has_path(sub, src, dst):
                best = nx.shortest_path(sub, src, dst)
                break
        if best is None:
            raise NetworkError(f"no route from {src!r} to {dst!r}")  # pragma: no cover
        return best

    def path_links(self, path: List[str]) -> List[WanLink]:
        """The links along a site path."""
        return [self.link_between(u, v) for u, v in zip(path, path[1:])]

    def bottleneck_throughput(self, path: List[str]) -> float:
        """Payload bytes/s of the slowest link on the path."""
        links = self.path_links(path)
        if not links:
            return float("inf")
        return min(l.link_class.throughput_bytes_per_s for l in links)

    def path_latency(self, path: List[str]) -> float:
        """One-way latency along the path."""
        return sum(l.latency_s for l in self.path_links(path))
