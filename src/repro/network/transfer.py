"""Transfer-time and remote-session models over the WAN graph.

These answer the questions the consortium network existed for: how long
does it take a remote partner to move a Delta-sized dataset home, and
can they steer a visualisation interactively?  The models are the
standard first-order ones:

* store-and-forward: each link is traversed completely before the next
  begins -- ``sum(latency_i + bytes / throughput_i)``;
* cut-through (pipelined): the stream flows concurrently on all links,
  limited by the bottleneck -- ``sum(latency_i) + bytes / min(throughput)``.

Cut-through is what packet networks actually approximate, and the gap
between the two is itself instructive output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.network.graph import WideAreaNetwork
from repro.util.errors import NetworkError
from repro.util.units import format_bytes, format_time


@dataclass(frozen=True)
class TransferEstimate:
    """Outcome of a transfer query."""

    src: str
    dst: str
    nbytes: float
    path: List[str]
    time_s: float
    bottleneck_bytes_per_s: float
    mode: str

    @property
    def effective_mbps(self) -> float:
        """Achieved payload rate in Mbit/s."""
        if self.time_s <= 0:
            return float("inf")
        return self.nbytes * 8.0 / self.time_s / 1e6

    def describe(self) -> str:
        return (
            f"{format_bytes(self.nbytes)} {self.src} -> {self.dst} "
            f"via {' / '.join(self.path)}: {format_time(self.time_s)} "
            f"({self.effective_mbps:.2f} Mbps effective, {self.mode})"
        )


def transfer_time(
    network: WideAreaNetwork,
    src: str,
    dst: str,
    nbytes: float,
    *,
    mode: str = "cut_through",
    path: Optional[List[str]] = None,
) -> TransferEstimate:
    """Estimate a bulk transfer.

    Routes on the widest path by default (bulk objective); pass ``path``
    to pin a specific route.
    """
    if nbytes < 0:
        raise NetworkError(f"nbytes must be >= 0, got {nbytes}")
    if mode not in ("cut_through", "store_and_forward"):
        raise NetworkError(f"unknown transfer mode {mode!r}")
    if path is None:
        path = network.widest_path(src, dst)
    else:
        network.path_links(path)  # validates
        if path[0] != src or path[-1] != dst:
            raise NetworkError(
                f"pinned path {path} does not join {src!r} to {dst!r}"
            )

    links = network.path_links(path)
    if not links:
        return TransferEstimate(src, dst, nbytes, path, 0.0, float("inf"), mode)

    if mode == "store_and_forward":
        time_s = sum(
            l.latency_s + nbytes / l.link_class.throughput_bytes_per_s for l in links
        )
    else:
        bottleneck = min(l.link_class.throughput_bytes_per_s for l in links)
        time_s = sum(l.latency_s for l in links) + nbytes / bottleneck
    return TransferEstimate(
        src=src,
        dst=dst,
        nbytes=nbytes,
        path=path,
        time_s=time_s,
        bottleneck_bytes_per_s=min(
            l.link_class.throughput_bytes_per_s for l in links
        ),
        mode=mode,
    )


@dataclass(frozen=True)
class SessionEstimate:
    """Interactive remote-visualisation feasibility."""

    frame_bytes: float
    achievable_fps: float
    round_trip_s: float
    interactive: bool


def remote_session(
    network: WideAreaNetwork,
    src: str,
    dst: str,
    *,
    frame_bytes: float = 1.0e6,
    required_fps: float = 10.0,
) -> SessionEstimate:
    """Can a partner at ``dst`` steer a visualisation served from ``src``?

    A frame stream needs ``frame_bytes * fps`` of bottleneck throughput;
    interactivity additionally wants a sub-200 ms round trip.
    """
    if frame_bytes <= 0 or required_fps <= 0:
        raise NetworkError("frame_bytes and required_fps must be positive")
    path = network.widest_path(src, dst)
    bottleneck = network.bottleneck_throughput(path)
    latency = network.path_latency(path)
    fps = bottleneck / frame_bytes
    return SessionEstimate(
        frame_bytes=frame_bytes,
        achievable_fps=fps,
        round_trip_s=2.0 * latency,
        interactive=(fps >= required_fps and 2.0 * latency <= 0.2),
    )
