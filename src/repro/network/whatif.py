"""Upgrade what-if analysis: the NREN investment argument.

The NREN component's pitch was quantitative: moving the community from
T1 tails to T3 and then gigabit service changes which collaborations are
feasible.  This module rebuilds a network with selected links upgraded
and compares transfer estimates before and after.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.network.graph import WanLink, WideAreaNetwork
from repro.network.links import LinkClass
from repro.network.transfer import TransferEstimate, transfer_time
from repro.util.errors import NetworkError


def upgraded_network(
    network: WideAreaNetwork,
    should_upgrade: Callable[[WanLink], bool],
    new_class: LinkClass,
) -> WideAreaNetwork:
    """Copy ``network`` with every link passing the predicate re-typed.

    The original network is untouched.
    """
    out = WideAreaNetwork(name=f"{network.name} (upgraded to {new_class.name})")
    for site in network.sites:
        out.add_site(site)
    for link in network.links:
        cls = new_class if should_upgrade(link) else link.link_class
        out.add_link(WanLink(link.a, link.b, cls, link.distance_km))
    return out


def upgrade_all_below(
    network: WideAreaNetwork, threshold_bps: float, new_class: LinkClass
) -> WideAreaNetwork:
    """Upgrade every link slower than ``threshold_bps``."""
    if threshold_bps <= 0:
        raise NetworkError(f"threshold must be positive, got {threshold_bps}")
    return upgraded_network(
        network,
        lambda link: link.link_class.rate_bps < threshold_bps,
        new_class,
    )


@dataclass(frozen=True)
class UpgradeComparison:
    """Before/after for one transfer."""

    before: TransferEstimate
    after: TransferEstimate

    @property
    def speedup(self) -> float:
        if self.after.time_s <= 0:
            return float("inf")
        return self.before.time_s / self.after.time_s


def compare_transfer(
    before: WideAreaNetwork,
    after: WideAreaNetwork,
    src: str,
    dst: str,
    nbytes: float,
) -> UpgradeComparison:
    """Same transfer on two network generations."""
    return UpgradeComparison(
        before=transfer_time(before, src, dst, nbytes),
        after=transfer_time(after, src, dst, nbytes),
    )


def feasibility_frontier(
    network: WideAreaNetwork,
    src: str,
    dst: str,
    *,
    deadline_s: float = 3600.0,
) -> float:
    """Largest dataset (bytes) movable from src to dst within the
    deadline -- the 'overnight dataset' metric used to argue for NREN.
    """
    if deadline_s <= 0:
        raise NetworkError(f"deadline must be positive, got {deadline_s}")
    path = network.widest_path(src, dst)
    latency = network.path_latency(path)
    if latency >= deadline_s:
        return 0.0
    return (deadline_s - latency) * network.bottleneck_throughput(path)
