"""Wide-area link classes of the 1992 NREN era.

The Delta consortium figure (exhibit T4-5) annotates its site graph with
exactly these classes; the NREN program's goal was the jump from the
T1/T3 backbone to gigabit research networks (CASA's HIPPI-over-SONET at
800 Mbps being the flagship testbed).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigurationError
from repro.util.units import format_bandwidth, kbps, mbps


@dataclass(frozen=True)
class LinkClass:
    """A WAN service class.

    Attributes
    ----------
    name:
        Service designation as the paper writes it.
    rate_bps:
        Line rate in bits/s.
    setup_latency_s:
        Per-transfer protocol setup cost (connection establishment,
        routing); charged once per link on a path.
    efficiency:
        Fraction of line rate achievable by a bulk transfer (protocol
        overheads, window limits of period TCP stacks).
    """

    name: str
    rate_bps: float
    setup_latency_s: float = 0.010
    efficiency: float = 0.80

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ConfigurationError(f"rate must be positive, got {self.rate_bps}")
        if self.setup_latency_s < 0:
            raise ConfigurationError("setup latency must be >= 0")
        if not 0 < self.efficiency <= 1:
            raise ConfigurationError(
                f"efficiency must be in (0, 1], got {self.efficiency}"
            )

    @property
    def throughput_bytes_per_s(self) -> float:
        """Achievable payload bytes/s."""
        return self.rate_bps * self.efficiency / 8.0

    def describe(self) -> str:
        return f"{self.name} ({format_bandwidth(self.rate_bps)})"


# The classes named on the consortium figure.
REGIONAL_56K = LinkClass("Regional 56 kbps", kbps(56), setup_latency_s=0.050, efficiency=0.70)
T1 = LinkClass("T1", mbps(1.5), setup_latency_s=0.020, efficiency=0.80)
T3 = LinkClass("T3", mbps(45.0), setup_latency_s=0.015, efficiency=0.80)
HIPPI_SONET = LinkClass("HIPPI/SONET", mbps(800.0), setup_latency_s=0.002, efficiency=0.90)
#: The NREN objective: a full gigabit service.
GIGABIT = LinkClass("Gigabit NREN", mbps(1000.0), setup_latency_s=0.002, efficiency=0.90)

#: Registry used by benches and the what-if analysis.
LINK_CLASSES = {
    "56k": REGIONAL_56K,
    "t1": T1,
    "t3": T3,
    "hippi": HIPPI_SONET,
    "gigabit": GIGABIT,
}


def get_link_class(name: str) -> LinkClass:
    """Look up a link class by registry key."""
    try:
        return LINK_CLASSES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown link class {name!r}; available: {sorted(LINK_CLASSES)}"
        ) from None
