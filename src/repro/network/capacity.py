"""Capacity planning: route a demand matrix, find the bottleneck link.

The NREN build-out question in operational form: given expected traffic
between consortium sites (bytes/s averaged over the day), which link
saturates first, and what single upgrade buys the most headroom?

Demands are routed on widest paths (bulk traffic); per-link utilisation
is offered load over payload throughput.  The planner then ranks links
by utilisation and can re-evaluate after a candidate upgrade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.network.graph import WanLink, WideAreaNetwork
from repro.network.links import LinkClass
from repro.network.whatif import upgraded_network
from repro.util.errors import NetworkError

#: A demand matrix: (src site, dst site) -> offered bytes/s.
DemandMatrix = Dict[Tuple[str, str], float]


def _link_key(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class LinkLoad:
    """Utilisation of one link under a demand matrix."""

    a: str
    b: str
    offered_bytes_per_s: float
    capacity_bytes_per_s: float

    @property
    def utilisation(self) -> float:
        return self.offered_bytes_per_s / self.capacity_bytes_per_s

    @property
    def saturated(self) -> bool:
        return self.utilisation >= 1.0


def route_demands(
    network: WideAreaNetwork, demands: DemandMatrix
) -> List[LinkLoad]:
    """Accumulate per-link offered load, widest-path routing.

    Returns loads sorted by utilisation, hottest first.
    """
    offered: Dict[Tuple[str, str], float] = {}
    for (src, dst), rate in demands.items():
        if rate < 0:
            raise NetworkError(f"negative demand {rate} for {src}->{dst}")
        if rate == 0 or src == dst:
            continue
        path = network.widest_path(src, dst)
        for u, v in zip(path, path[1:]):
            key = _link_key(u, v)
            offered[key] = offered.get(key, 0.0) + rate

    loads = []
    for link in network.links:
        key = _link_key(link.a, link.b)
        loads.append(
            LinkLoad(
                a=key[0],
                b=key[1],
                offered_bytes_per_s=offered.get(key, 0.0),
                capacity_bytes_per_s=link.link_class.throughput_bytes_per_s,
            )
        )
    loads.sort(key=lambda l: l.utilisation, reverse=True)
    return loads


def bottleneck(network: WideAreaNetwork, demands: DemandMatrix) -> LinkLoad:
    """The hottest link under the demand matrix."""
    loads = route_demands(network, demands)
    if not loads:
        raise NetworkError("network has no links")
    return loads[0]


@dataclass(frozen=True)
class UpgradePlan:
    """Outcome of a single-link upgrade evaluation."""

    link: Tuple[str, str]
    new_class_name: str
    before_peak_utilisation: float
    after_peak_utilisation: float

    @property
    def headroom_gain(self) -> float:
        return self.before_peak_utilisation - self.after_peak_utilisation


def best_single_upgrade(
    network: WideAreaNetwork,
    demands: DemandMatrix,
    new_class: LinkClass,
) -> UpgradePlan:
    """Try upgrading each link in turn; keep the one that most reduces
    the network's peak utilisation.

    Demands are re-routed after each candidate upgrade (a faster link
    attracts traffic), so the answer accounts for induced shifts.
    """
    before = bottleneck(network, demands).utilisation
    best: UpgradePlan = None
    for link in network.links:
        target = (link.a, link.b)

        def is_target(l: WanLink, target=target) -> bool:
            return {l.a, l.b} == set(target)

        candidate = upgraded_network(network, is_target, new_class)
        after = bottleneck(candidate, demands).utilisation
        plan = UpgradePlan(
            link=_link_key(*target),
            new_class_name=new_class.name,
            before_peak_utilisation=before,
            after_peak_utilisation=after,
        )
        if best is None or plan.after_peak_utilisation < best.after_peak_utilisation:
            best = plan
    if best is None:
        raise NetworkError("network has no links to upgrade")
    return best
