"""Wide-area (NREN / consortium) network simulator."""

from repro.network.capacity import (
    DemandMatrix,
    LinkLoad,
    UpgradePlan,
    best_single_upgrade,
    bottleneck,
    route_demands,
)
from repro.network.consortium_net import (
    DELTA_SITE,
    PAPER_LINK_SPEEDS_MBPS,
    delta_consortium,
)
from repro.network.graph import FIBRE_KM_PER_S, Site, WanLink, WideAreaNetwork
from repro.network.links import (
    GIGABIT,
    HIPPI_SONET,
    LINK_CLASSES,
    REGIONAL_56K,
    T1,
    T3,
    LinkClass,
    get_link_class,
)
from repro.network.queueing import (
    CongestionPoint,
    congestion_sweep,
    loaded_transfer_time,
    mm1_delay_factor,
)
from repro.network.transfer import (
    SessionEstimate,
    TransferEstimate,
    remote_session,
    transfer_time,
)
from repro.network.whatif import (
    UpgradeComparison,
    compare_transfer,
    feasibility_frontier,
    upgrade_all_below,
    upgraded_network,
)

__all__ = [
    "DemandMatrix",
    "LinkLoad",
    "UpgradePlan",
    "best_single_upgrade",
    "bottleneck",
    "route_demands",
    "CongestionPoint",
    "congestion_sweep",
    "loaded_transfer_time",
    "mm1_delay_factor",
    "DELTA_SITE",
    "PAPER_LINK_SPEEDS_MBPS",
    "delta_consortium",
    "FIBRE_KM_PER_S",
    "Site",
    "WanLink",
    "WideAreaNetwork",
    "GIGABIT",
    "HIPPI_SONET",
    "LINK_CLASSES",
    "REGIONAL_56K",
    "T1",
    "T3",
    "LinkClass",
    "get_link_class",
    "SessionEstimate",
    "TransferEstimate",
    "remote_session",
    "transfer_time",
    "UpgradeComparison",
    "compare_transfer",
    "feasibility_frontier",
    "upgrade_all_below",
    "upgraded_network",
]
