"""Command-line interface: regenerate any paper exhibit from a shell.

Installed as ``python -m repro``.  Subcommands map one-to-one onto the
exhibits and evaluation tools::

    python -m repro machines                 # the testbed roster
    python -m repro linpack --order 25000    # exhibit T4-4a
    python -m repro funding                  # exhibit T4-3
    python -m repro responsibilities         # exhibit T4-2
    python -m repro network --gigabytes 1    # exhibit T4-5
    python -m repro trajectory               # the teraops projection
    python -m repro scaling --workload cfd --ranks 1,2,4,8
    python -m repro challenges               # Grand Challenge registry
    python -m repro lint examples            # static rank-program checks
    python -m repro profile lu --export trace.json   # critical path + trace
    python -m repro serve --port 8732        # simulation-as-a-service API
    python -m repro cache stats              # run-cache management
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.util.errors import ReproError


def _cmd_machines(args) -> str:
    from repro.machine import PRESETS, get_machine

    lines = []
    for name in sorted(PRESETS):
        lines.append(f"[{name}] {get_machine(name).describe()}")
    return "\n".join(lines)


def _cmd_linpack(args) -> str:
    from repro.linalg import HPLModel, delta_linpack
    from repro.machine import touchstone_delta
    from repro.util.tables import render_table

    point = delta_linpack(args.order)
    model = HPLModel(touchstone_delta())
    sweep = model.sweep(sorted({1000, 5000, 10000, args.order}))
    table = render_table(
        ["Order", "GFLOPS", "% of peak", "Time (s)"],
        [[p.n, p.gflops, 100 * p.fraction_of_peak, p.time_s] for p in sweep],
        title="Touchstone Delta LINPACK model",
        float_fmt=",.2f",
    )
    return (
        f"peak {point['peak_gflops']:.1f} GFLOPS; LINPACK at n={args.order}: "
        f"{point['linpack_gflops']:.2f} GFLOPS\n\n{table}"
    )


def _cmd_funding(args) -> str:
    from repro.program.budget import render

    return render()


def _cmd_responsibilities(args) -> str:
    from repro.program.responsibilities import render, validate_matrix

    validate_matrix()
    return render()


def _cmd_network(args) -> str:
    from repro.network import DELTA_SITE, delta_consortium, transfer_time
    from repro.util.tables import render_table
    from repro.util.units import format_time

    net = delta_consortium()
    nbytes = args.gigabytes * 1e9
    rows = []
    for site in net.sites:
        if site.name == DELTA_SITE:
            continue
        est = transfer_time(net, DELTA_SITE, site.name, nbytes)
        rows.append([site.name, est.effective_mbps, format_time(est.time_s)])
    rows.sort(key=lambda r: -r[1])
    return render_table(
        ["Partner", "Eff. Mbps", f"{args.gigabytes:g} GB transfer"],
        rows,
        title="Consortium reachability of the Delta",
        float_fmt=",.2f",
    )


def _cmd_trajectory(args) -> str:
    from repro.machine import darpa_mpp_series
    from repro.program import fit_machines, teraflops_year, trajectory_table
    from repro.util.tables import render_table

    series = darpa_mpp_series()
    fit = fit_machines(series)
    table = render_table(
        ["Year", "Projected GF", "Installed GF"],
        [[y, proj, inst if inst else ""] for y, proj, inst in
         trajectory_table(series, horizon=args.horizon)],
        title="Teraops trajectory",
        float_fmt=",.1f",
    )
    return (
        f"{table}\n\ngrowth {fit.annual_growth:.2f}x/yr; "
        f"1 TFLOPS projected {teraflops_year(series):.1f}"
    )


def _cmd_scaling(args) -> str:
    from repro.core import WORKLOADS, scaling_study, scaling_table, amdahl_summary
    from repro.machine import get_machine

    try:
        factory = WORKLOADS[args.workload]
    except KeyError:
        raise ReproError(
            f"unknown workload {args.workload!r}; available: {sorted(WORKLOADS)}"
        ) from None
    ranks = [int(x) for x in args.ranks.split(",")]
    study = scaling_study(factory(), get_machine(args.machine), ranks,
                          seed=args.seed)
    return scaling_table(study) + "\n\n" + amdahl_summary(study)


def _cmd_sweep(args) -> str:
    import json

    from repro.sweep import (
        Lu2dPoint,
        RunCache,
        config_from_dict,
        get_workload,
        run_sweep,
    )
    from repro.util.errors import ConfigurationError
    from repro.util.tables import render_table

    try:
        entry = get_workload(args.workload)
    except ConfigurationError as exc:
        raise ReproError(str(exc)) from None

    if args.points is not None:
        try:
            raw_points = json.loads(args.points)
        except ValueError as exc:
            raise ReproError(f"--points is not valid JSON: {exc}") from None
        if not isinstance(raw_points, list) or not raw_points:
            raise ReproError("--points must be a non-empty JSON list of config objects")
        try:
            configs = [config_from_dict(entry.config_type, p) for p in raw_points]
        except (ConfigurationError, TypeError) as exc:
            raise ReproError(f"bad --points entry: {exc}") from None
        labels = []
        for p in raw_points:
            text = json.dumps(p, sort_keys=True, separators=(",", ":"))
            labels.append(text if len(text) <= 42 else text[:39] + "...")
        title = f"{entry.name} sweep: {len(configs)} point(s)"
    elif entry.name == "lu2d":
        configs = []
        for spec in args.grids.split(","):
            try:
                prows, pcols = (int(x) for x in spec.lower().split("x"))
            except ValueError:
                raise ReproError(
                    f"bad grid {spec!r}: expected PRxPC, e.g. 8x16"
                ) from None
            configs.append(
                Lu2dPoint(
                    prows=prows,
                    pcols=pcols,
                    n=args.order,
                    nb=args.nb,
                    machine=args.machine,
                    overlap=args.overlap,
                )
            )
        labels = [f"{c.prows}x{c.pcols}" for c in configs]
        title = f"lu2d sweep: n={args.order}, nb={args.nb}, machine={args.machine}"
    else:
        raise ReproError(
            f"workload {entry.name!r} needs --points (a JSON list of "
            f"{entry.config_type.__name__} config objects); "
            "--grids only shapes lu2d sweeps"
        )

    cache = RunCache(args.cache_dir) if args.cache else None
    results = run_sweep(
        configs, entry.fn, workers=args.workers, seed=args.seed, cache=cache
    )
    rows = [
        [
            label,
            r["ranks"],
            r["virtual_time_s"],
            r["messages"],
            r["events"],
            r["wall_s"],
            r["events_per_sec"],
        ]
        for label, r in zip(labels, results)
    ]
    table = render_table(
        ["Point", "Ranks", "Virtual (s)", "Messages", "Events", "Wall (s)", "Events/s"],
        rows,
        title=title,
        float_fmt=",.4f",
    )
    if not all(r.get("exact", True) for r in results):
        raise ReproError("sweep point diverged from the serial factorisation")
    cache_info = {"enabled": cache is not None}
    if cache is not None:
        cache_info.update(cache.stats())
        table += (
            f"\n\ncache {args.cache_dir}: "
            f"{cache.hits} hit(s), {cache.misses} miss(es)"
        )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(
                {
                    "workload": entry.name,
                    "results": {
                        label: r for label, r in zip(labels, results)
                    },
                    "cache": cache_info,
                },
                fh,
                indent=2,
                sort_keys=True,
            )
        table += f"\n\nwrote {args.json}"
    return table


def _cmd_serve(args) -> str:
    from repro.serve import run_server

    run_server(
        host=args.host,
        port=args.port,
        backend=args.backend,
        workers=args.workers,
        cache_dir=None if args.no_cache else args.cache_dir,
        shards=args.shards,
        max_jobs=args.max_jobs,
    )
    return ""


def _cmd_cache(args) -> str:
    import json

    from repro.sweep import RunCache, parse_age
    from repro.util.tables import render_table

    cache = RunCache(args.cache_dir)
    if args.cache_command == "stats":
        info = cache.disk_stats()
        if args.json:
            return json.dumps(info, indent=2, sort_keys=True)
        rows = [[schema, count] for schema, count in sorted(info["by_schema"].items())]
        table = render_table(
            ["Schema", "Entries"],
            rows or [["-", 0]],
            title=f"run cache {info['dir']}: {info['entries']} entr"
                  f"{'y' if info['entries'] == 1 else 'ies'}, {info['bytes']:,} bytes",
        )
        return (
            f"{table}\n\ncurrent schema {info['schema_version']}; "
            f"{info['stale_entries']} stale entr"
            f"{'y' if info['stale_entries'] == 1 else 'ies'}"
        )
    report = cache.prune(parse_age(args.older_than))
    if args.json:
        return json.dumps(report, indent=2, sort_keys=True)
    return (
        f"pruned {report['dir']}: removed {report['removed']} entr"
        f"{'y' if report['removed'] == 1 else 'ies'} "
        f"({report['bytes_freed']:,} bytes), kept {report['kept']}"
    )


def _cmd_goals(args) -> str:
    from repro.program.goals import render

    return render()


def _cmd_challenges(args) -> str:
    from repro.program import GRAND_CHALLENGES, validate_registry
    from repro.util.tables import render_table

    validate_registry()
    return render_table(
        ["Grand Challenge", "Agencies", "Proxy", "Pattern"],
        [[gc.name, ", ".join(gc.agencies), gc.proxy_workload, gc.pattern]
         for gc in GRAND_CHALLENGES],
        title="Grand Challenge registry",
        align_right_from=99,
    )


def _cmd_lint(args):
    from repro.analyze import (
        RULES,
        analyze_paths,
        format_findings,
        format_findings_json,
    )

    if args.list_rules:
        return "\n".join(
            f"{r.code} {r.name} ({r.severity}): {r.summary}"
            + (" [symbolic]" if r.symbolic else "")
            for r in RULES.values()
        )
    if not args.paths:
        raise ReproError("lint: no paths given (or use --list-rules)")
    findings = analyze_paths(
        args.paths, select=args.select,
        symbolic=args.symbolic, n_ranks=args.ranks,
    )
    if args.json:
        return format_findings_json(findings), (1 if findings else 0)
    return format_findings(findings), (1 if findings else 0)


def _cmd_certify(args):
    import json

    from repro.analyze.certify import bundled_certificate, certify_macro

    if args.program in ("ocean", "summa"):
        certificate = bundled_certificate(args.program, args.ranks)
    else:
        try:
            with open(args.program, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            raise ReproError(f"certify: cannot read {args.program}: {exc}") from None
        certificate = certify_macro(source, args.ranks)
    return json.dumps(certificate.to_dict(), indent=2, sort_keys=False)


def _cmd_profile(args):
    from repro.machine import get_machine
    from repro.obs import PROFILES, profile_report, run_profile, write_chrome_trace

    if args.list:
        return "\n".join(sorted(PROFILES))
    if not args.workload:
        raise ReproError("profile: no workload given (or use --list)")
    res = run_profile(
        args.workload,
        get_machine(args.machine),
        ranks=args.ranks,
        size=args.size,
        overlap=args.overlap,
        eager_threshold_bytes=args.eager_threshold,
        delivery=args.delivery,
        seed=args.seed,
    )
    out = profile_report(res, top=args.top, timeline=args.timeline)
    if args.export:
        write_chrome_trace(res, args.export)
        out += (
            f"\nwrote Chrome trace to {args.export} "
            "(load in chrome://tracing or ui.perfetto.dev)"
        )
    return out


def _cmd_profile_summary(args) -> str:
    """One traced run, one line: the ``repro all`` teaser."""
    from repro.machine import get_machine
    from repro.obs import profile_summary_line, run_profile

    res = run_profile("summa", get_machine("delta"), ranks=16, size=64)
    return profile_summary_line("summa 4x4 on the Delta", res)


def _cmd_all(args) -> str:
    """Every exhibit, in paper order, as one report."""
    sections = [
        ("T4-1  GOALS AND APPROACH", _cmd_goals),
        ("T4-2  RESPONSIBILITIES", _cmd_responsibilities),
        ("T4-3  FUNDING FY 92-93", _cmd_funding),
        ("T4-4  MACHINES AND LINPACK", _cmd_machines),
        ("", _cmd_linpack),
        ("T4-5  CONSORTIUM NETWORK", _cmd_network),
        ("TERAOPS TRAJECTORY", _cmd_trajectory),
        ("GRAND CHALLENGES", _cmd_challenges),
        ("PROFILE", _cmd_profile_summary),
    ]
    out = []
    for title, fn in sections:
        if title:
            out.append("=" * 72)
            out.append(title)
            out.append("=" * 72)
        out.append(fn(args))
        out.append("")
    return "\n".join(out)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the HPCC paper's exhibits from the "
                    "simulation library.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("machines", help="testbed machine roster").set_defaults(
        func=_cmd_machines
    )

    linpack = sub.add_parser("linpack", help="exhibit T4-4a (Delta LINPACK)")
    linpack.add_argument("--order", type=int, default=25_000)
    linpack.set_defaults(func=_cmd_linpack)

    sub.add_parser("funding", help="exhibit T4-3 (FY92-93 table)").set_defaults(
        func=_cmd_funding
    )
    sub.add_parser(
        "responsibilities", help="exhibit T4-2 (agency matrix)"
    ).set_defaults(func=_cmd_responsibilities)

    network = sub.add_parser("network", help="exhibit T4-5 (consortium WAN)")
    network.add_argument("--gigabytes", type=float, default=1.0)
    network.set_defaults(func=_cmd_network)

    trajectory = sub.add_parser("trajectory", help="teraops projection")
    trajectory.add_argument("--horizon", type=int, default=1996)
    trajectory.set_defaults(func=_cmd_trajectory)

    scaling = sub.add_parser("scaling", help="run a scaling study")
    scaling.add_argument("--workload", default="cfd")
    scaling.add_argument("--machine", default="delta")
    scaling.add_argument("--ranks", default="1,2,4,8")
    scaling.add_argument("--seed", type=int, default=0)
    scaling.set_defaults(func=_cmd_scaling)

    lint = sub.add_parser(
        "lint",
        help="static communication-correctness checks over rank programs",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="Python files or directories to analyse",
    )
    lint.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all), e.g. W001,W004",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )
    lint.add_argument(
        "--symbolic", action="store_true",
        help="also run the cross-rank symbolic rules (W007-W010)",
    )
    lint.add_argument(
        "--ranks", type=int, default=8, metavar="N",
        help="world size the symbolic pass instantiates (default 8)",
    )
    lint.add_argument(
        "--json", action="store_true",
        help="emit findings as JSON lines instead of human-readable text",
    )
    lint.set_defaults(func=_cmd_lint)

    certify = sub.add_parser(
        "certify",
        help="prove a rank program macro-pure; print its certificate",
    )
    certify.add_argument(
        "program",
        help="a bundled program name (ocean, summa) or a Python file "
             "containing one rank program",
    )
    certify.add_argument(
        "--ranks", type=int, default=8, metavar="N",
        help="world size to certify at (default 8)",
    )
    certify.set_defaults(func=_cmd_certify)

    profile = sub.add_parser(
        "profile",
        help="trace a workload, report its critical path, export traces",
    )
    profile.add_argument(
        "workload", nargs="?", default=None,
        help="named workload (see --list), e.g. lu, summa, cg, ocean",
    )
    profile.add_argument("--machine", default="delta")
    profile.add_argument(
        "--ranks", type=int, default=0,
        help="rank count (0 = workload default)",
    )
    profile.add_argument(
        "--size", type=int, default=0,
        help="problem size (0 = workload default)",
    )
    profile.add_argument(
        "--overlap", action="store_true",
        help="use the non-blocking (overlapped) communication variant",
    )
    profile.add_argument(
        "--eager-threshold", type=float, default=float("inf"), metavar="BYTES",
        help="rendezvous protocol above this message size",
    )
    profile.add_argument(
        "--delivery", default="alphabeta", choices=["alphabeta", "contention"],
    )
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument(
        "--export", metavar="PATH",
        help="write a Chrome trace_event JSON to PATH",
    )
    profile.add_argument(
        "--timeline", action="store_true",
        help="append the plain-text per-rank timeline",
    )
    profile.add_argument(
        "--top", type=int, default=5,
        help="entries in the elongation / phase reports",
    )
    profile.add_argument(
        "--list", action="store_true", help="list available workloads"
    )
    profile.set_defaults(func=_cmd_profile)

    sweep = sub.add_parser(
        "sweep",
        help="fan a workload sweep over worker processes (deterministic)",
    )
    sweep.add_argument(
        "--workload", default="lu2d",
        help="registered workload name (lu2d, collectives, halo, ...)",
    )
    sweep.add_argument(
        "--points", default=None, metavar="JSON",
        help="JSON list of workload config objects, e.g. "
             '\'[{"ranks": 16}, {"ranks": 32}]\' (overrides --grids; '
             "required for non-lu2d workloads)",
    )
    sweep.add_argument(
        "--grids", default="4x4,8x8,8x16",
        help="comma-separated lu2d process grids, e.g. 4x4,8x16,16x32",
    )
    sweep.add_argument(
        "--order", type=int, default=96, help="matrix order per point"
    )
    sweep.add_argument("--nb", type=int, default=2, help="block size")
    sweep.add_argument("--machine", default="delta")
    sweep.add_argument(
        "--overlap", action="store_true",
        help="use the non-blocking broadcast variant",
    )
    sweep.add_argument(
        "--workers", type=int, default=None,
        help="process count (default: all cores); results do not depend on it",
    )
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument(
        "--json", metavar="PATH", help="also write results as JSON to PATH"
    )
    sweep.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=False,
        help="serve identical (config, seed) points from the run cache "
             "and store fresh ones (--no-cache disables)",
    )
    sweep.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="run-cache directory (default: .repro-cache)",
    )
    sweep.set_defaults(func=_cmd_sweep)

    serve = sub.add_parser(
        "serve",
        help="run the simulation-as-a-service job server (HTTP/JSON)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8732)
    serve.add_argument(
        "--backend", default="pool", choices=["pool", "inprocess"],
        help="execution backend: persistent process pool (default) or "
             "in-process threads",
    )
    serve.add_argument(
        "--workers", type=int, default=None,
        help="backend worker count (default: all cores for pool, 1 for inprocess)",
    )
    serve.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="run N independent backend instances behind consistent-hash "
             "routing on the point cache key (N >= 2; default: unsharded)",
    )
    serve.add_argument(
        "--max-jobs", type=int, default=1024, metavar="N",
        help="job-table cap: oldest finished jobs are evicted beyond N "
             "(default: 1024; 0 disables eviction)",
    )
    serve.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="run-cache directory identical submissions are answered from",
    )
    serve.add_argument(
        "--no-cache", action="store_true",
        help="disable the run cache (in-flight coalescing still applies)",
    )
    serve.set_defaults(func=_cmd_serve)

    cache = sub.add_parser(
        "cache",
        help="inspect or prune the content-addressed run cache",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="entry count, bytes on disk, schema mix"
    )
    cache_prune = cache_sub.add_parser(
        "prune", help="delete entries not touched within --older-than"
    )
    cache_prune.add_argument(
        "--older-than", default="0s", metavar="AGE",
        help="age like 3600, 30m, 12h, 7d (default 0s: everything)",
    )
    for sub_parser in (cache_stats, cache_prune):
        sub_parser.add_argument(
            "--cache-dir", default=".repro-cache", metavar="DIR",
            help="run-cache directory (default: .repro-cache)",
        )
        sub_parser.add_argument(
            "--json", action="store_true",
            help="emit machine-readable JSON instead of a table",
        )
    cache.set_defaults(func=_cmd_cache)

    sub.add_parser("challenges", help="Grand Challenge registry").set_defaults(
        func=_cmd_challenges
    )
    sub.add_parser(
        "goals", help="exhibit T4-1 (goals, quotes, approach)"
    ).set_defaults(func=_cmd_goals)

    everything = sub.add_parser("all", help="every exhibit as one report")
    everything.add_argument("--order", type=int, default=25_000)
    everything.add_argument("--gigabytes", type=float, default=1.0)
    everything.add_argument("--horizon", type=int, default=1996)
    everything.set_defaults(func=_cmd_all)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        result = args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    # Commands that drive CI (lint) return (text, exit_code).
    text, code = result if isinstance(result, tuple) else (result, 0)
    print(text)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
