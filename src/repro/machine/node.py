"""Compute-node model.

A node is characterised by the three numbers that drive every
performance estimate in this library: peak floating-point rate, local
memory, and a sustained-fraction describing how much of peak a tuned
dense kernel (DGEMM-class) actually achieves.  The Intel i860 nodes of
the Touchstone Delta are the reference point: 60.6 MFLOPS peak double
precision, 16 MB memory, and roughly 60-70 % of peak on tuned BLAS-3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one compute node.

    Attributes
    ----------
    name:
        Processor designation, e.g. ``"Intel i860 XR"``.
    peak_flops:
        Peak double-precision rate in flop/s.
    memory_bytes:
        Local memory per node in bytes.
    sustained_fraction:
        Fraction of peak achieved by tuned dense kernels (0 < f <= 1).
        Used as the default efficiency when charging compute time.
    clock_hz:
        Processor clock, informational.
    """

    name: str
    peak_flops: float
    memory_bytes: float
    sustained_fraction: float = 0.65
    clock_hz: float = 0.0

    def __post_init__(self) -> None:
        if self.peak_flops <= 0:
            raise ConfigurationError(f"peak_flops must be positive, got {self.peak_flops}")
        if self.memory_bytes <= 0:
            raise ConfigurationError(f"memory_bytes must be positive, got {self.memory_bytes}")
        if not 0 < self.sustained_fraction <= 1:
            raise ConfigurationError(
                f"sustained_fraction must be in (0, 1], got {self.sustained_fraction}"
            )

    @property
    def sustained_flops(self) -> float:
        """Sustained dense-kernel rate in flop/s."""
        return self.peak_flops * self.sustained_fraction

    def compute_time(self, flops: float, efficiency: float = None) -> float:
        """Seconds to execute ``flops`` operations on this node.

        ``efficiency`` overrides the node's sustained fraction; pass 1.0
        to charge at theoretical peak.
        """
        if flops < 0:
            raise ConfigurationError(f"flops must be non-negative, got {flops}")
        frac = self.sustained_fraction if efficiency is None else efficiency
        if not 0 < frac <= 1:
            raise ConfigurationError(f"efficiency must be in (0, 1], got {frac}")
        return flops / (self.peak_flops * frac)
