"""Submesh allocation: how the Delta was actually shared.

The Delta had no timesharing -- users received rectangular *submeshes*
of the 16 x 33 node grid and ran alone on them.  The operational
problems that came with that model are reproduced here:

* :class:`SubmeshAllocator` -- first-fit rectangle allocation with
  release, utilisation, and external-fragmentation metrics (a free
  area that fits no requested rectangle is the Delta operator's
  classic complaint);
* :func:`simulate_fcfs` -- a deterministic event-driven simulation of
  a first-come-first-served job queue with head-of-line blocking, the
  scheduling policy of the era.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class Allocation:
    """A granted rectangular submesh."""

    alloc_id: int
    row0: int
    col0: int
    rows: int
    cols: int

    @property
    def n_nodes(self) -> int:
        return self.rows * self.cols


class SubmeshAllocator:
    """First-fit rectangular allocator over an R x C mesh."""

    def __init__(self, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise ConfigurationError(
                f"mesh must be at least 1x1, got {rows}x{cols}"
            )
        self.rows = rows
        self.cols = cols
        self._busy = np.zeros((rows, cols), dtype=bool)
        self._allocations: Dict[int, Allocation] = {}
        self._next_id = 1

    # -- queries ---------------------------------------------------------

    @property
    def total_nodes(self) -> int:
        return self.rows * self.cols

    @property
    def busy_nodes(self) -> int:
        return int(self._busy.sum())

    @property
    def utilisation(self) -> float:
        return self.busy_nodes / self.total_nodes

    def largest_free_rectangle(self) -> int:
        """Area of the largest all-free rectangle (histogram method)."""
        best = 0
        heights = np.zeros(self.cols, dtype=int)
        for r in range(self.rows):
            free_row = ~self._busy[r]
            heights = np.where(free_row, heights + 1, 0)
            # Largest rectangle in histogram via the standard stack scan.
            stack: List[int] = []
            for c in range(self.cols + 1):
                h = int(heights[c]) if c < self.cols else 0
                while stack and int(heights[stack[-1]]) >= h:
                    top = stack.pop()
                    left = stack[-1] + 1 if stack else 0
                    width = c - left
                    best = max(best, int(heights[top]) * width)
                if c < self.cols:
                    stack.append(c)
        return best

    def external_fragmentation(self) -> float:
        """1 - (largest free rectangle / free nodes): the share of free
        capacity unusable by a request the size of the biggest hole."""
        free = self.total_nodes - self.busy_nodes
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free_rectangle() / free

    # -- allocation -------------------------------------------------------

    def can_fit(self, rows: int, cols: int) -> bool:
        return self._find(rows, cols) is not None

    def _find(self, rows: int, cols: int) -> Optional[Tuple[int, int]]:
        if rows < 1 or cols < 1:
            raise ConfigurationError(
                f"request must be at least 1x1, got {rows}x{cols}"
            )
        if rows > self.rows or cols > self.cols:
            return None
        # First fit, row-major scan over anchor positions.
        for r in range(self.rows - rows + 1):
            for c in range(self.cols - cols + 1):
                if not self._busy[r:r + rows, c:c + cols].any():
                    return (r, c)
        return None

    def allocate(self, rows: int, cols: int) -> Optional[Allocation]:
        """Grant a rows x cols submesh, or None if nothing fits."""
        spot = self._find(rows, cols)
        if spot is None:
            return None
        r, c = spot
        alloc = Allocation(self._next_id, r, c, rows, cols)
        self._next_id += 1
        self._busy[r:r + rows, c:c + cols] = True
        self._allocations[alloc.alloc_id] = alloc
        return alloc

    def release(self, alloc_id: int) -> None:
        try:
            alloc = self._allocations.pop(alloc_id)
        except KeyError:
            raise ConfigurationError(f"unknown allocation id {alloc_id}") from None
        self._busy[
            alloc.row0:alloc.row0 + alloc.rows,
            alloc.col0:alloc.col0 + alloc.cols,
        ] = False

    def node_ids(self, alloc: Allocation) -> List[int]:
        """Mesh node ids (row-major over the full mesh) of a submesh."""
        return [
            (alloc.row0 + i) * self.cols + (alloc.col0 + j)
            for i in range(alloc.rows)
            for j in range(alloc.cols)
        ]


# ---------------------------------------------------------------------------
# FCFS queue simulation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Job:
    """A batch job requesting a submesh for a duration."""

    name: str
    rows: int
    cols: int
    duration_s: float
    arrival_s: float = 0.0

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigurationError(f"{self.name}: bad shape {self.rows}x{self.cols}")
        if self.duration_s <= 0:
            raise ConfigurationError(f"{self.name}: duration must be positive")
        if self.arrival_s < 0:
            raise ConfigurationError(f"{self.name}: arrival must be >= 0")


@dataclass(frozen=True)
class JobRecord:
    """Outcome of one job in the schedule."""

    job: Job
    start_s: float
    end_s: float

    @property
    def wait_s(self) -> float:
        return self.start_s - self.job.arrival_s


@dataclass
class ScheduleResult:
    """Outcome of an FCFS run."""

    records: List[JobRecord]
    makespan_s: float
    #: Node-seconds used over node-seconds available until makespan.
    utilisation: float

    def mean_wait_s(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.wait_s for r in self.records) / len(self.records)

    def record_for(self, name: str) -> JobRecord:
        for rec in self.records:
            if rec.job.name == name:
                return rec
        raise ConfigurationError(f"no job named {name!r} in schedule")


def _predict_head_start(
    allocator: "SubmeshAllocator",
    running: List[Tuple[float, int, int, Job]],
    head: Job,
    now: float,
    *,
    extra: Optional[Tuple[float, Allocation]] = None,
) -> float:
    """When could ``head`` first start if nothing new were admitted?

    Replays the committed completions (plus ``extra``, a tentative
    backfill) on a scratch copy of the busy grid in end-time order.
    Exact under the conservative policy, because only releases happen
    before the head starts.
    """
    scratch = np.array(allocator._busy, copy=True)

    def fits() -> bool:
        R, C = head.rows, head.cols
        for r in range(scratch.shape[0] - R + 1):
            for c in range(scratch.shape[1] - C + 1):
                if not scratch[r:r + R, c:c + C].any():
                    return True
        return False

    events: List[Tuple[float, Allocation]] = [
        (end, allocator._allocations[alloc_id])
        for end, _, alloc_id, _ in running
    ]
    if extra is not None:
        events.append(extra)
    events.sort(key=lambda e: e[0])

    if fits():
        return now
    for end, alloc in events:
        scratch[
            alloc.row0:alloc.row0 + alloc.rows,
            alloc.col0:alloc.col0 + alloc.cols,
        ] = False
        if fits():
            return max(end, now)
    return float("inf")  # pragma: no cover - head larger than the mesh


def simulate_backfill(rows: int, cols: int, jobs: Sequence[Job]) -> ScheduleResult:
    """Conservative (no-harm) backfilling.

    Like FCFS, except that when the queue head cannot start, a later
    job may jump ahead **only if** admitting it provably does not delay
    the head's predicted start -- the guarantee EASY backfilling made
    famous, evaluated here with exact (deterministic) runtimes.
    """
    allocator = SubmeshAllocator(rows, cols)
    for job in jobs:
        if job.rows > rows or job.cols > cols:
            raise ConfigurationError(
                f"{job.name}: {job.rows}x{job.cols} exceeds the {rows}x{cols} mesh"
            )
    pending = sorted(jobs, key=lambda j: (j.arrival_s, j.name))
    queue: List[Job] = []
    running: List[Tuple[float, int, int, Job]] = []
    records: List[JobRecord] = []
    now = 0.0
    seq = 0
    i = 0
    node_seconds = 0.0

    def start(job: Job, alloc: Allocation) -> None:
        nonlocal seq, node_seconds
        seq += 1
        end = now + job.duration_s
        heapq.heappush(running, (end, seq, alloc.alloc_id, job))
        records.append(JobRecord(job=job, start_s=now, end_s=end))
        node_seconds += job.rows * job.cols * job.duration_s

    def try_start() -> None:
        # FCFS phase: launch from the head while it fits.
        while queue:
            alloc = allocator.allocate(queue[0].rows, queue[0].cols)
            if alloc is None:
                break
            start(queue.pop(0), alloc)
        if not queue:
            return
        # Backfill phase: later jobs may start if they cannot delay the
        # head's predicted start.
        head = queue[0]
        baseline = _predict_head_start(allocator, list(running), head, now)
        idx = 1
        while idx < len(queue):
            candidate = queue[idx]
            spot = allocator._find(candidate.rows, candidate.cols)
            if spot is None:
                idx += 1
                continue
            tentative = Allocation(-1, spot[0], spot[1],
                                   candidate.rows, candidate.cols)
            # Temporarily mark the tentative rectangle busy for the
            # prediction, releasing it at the candidate's end time.
            r, c = spot
            allocator._busy[r:r + candidate.rows, c:c + candidate.cols] = True
            with_candidate = _predict_head_start(
                allocator, list(running), head, now,
                extra=(now + candidate.duration_s, tentative),
            )
            allocator._busy[r:r + candidate.rows, c:c + candidate.cols] = False
            if with_candidate <= baseline:
                alloc = allocator.allocate(candidate.rows, candidate.cols)
                start(candidate, alloc)
                queue.pop(idx)
            else:
                idx += 1

    while i < len(pending) or queue or running:
        next_arrival = pending[i].arrival_s if i < len(pending) else float("inf")
        next_completion = running[0][0] if running else float("inf")
        now = min(next_arrival, next_completion)
        while running and running[0][0] <= now:
            _, _, alloc_id, _ = heapq.heappop(running)
            allocator.release(alloc_id)
        while i < len(pending) and pending[i].arrival_s <= now:
            queue.append(pending[i])
            i += 1
        try_start()

    makespan = max((r.end_s for r in records), default=0.0)
    capacity = rows * cols * makespan if makespan > 0 else 1.0
    return ScheduleResult(
        records=records,
        makespan_s=makespan,
        utilisation=node_seconds / capacity,
    )


def simulate_fcfs(rows: int, cols: int, jobs: Sequence[Job]) -> ScheduleResult:
    """Run an FCFS (head-of-line blocking) schedule to completion.

    Jobs start in arrival order; the queue head waits until its
    rectangle fits, and nothing behind it may overtake -- exactly the
    policy whose fragmentation pathologies drove later research into
    backfilling.
    """
    allocator = SubmeshAllocator(rows, cols)
    for job in jobs:
        if job.rows > rows or job.cols > cols:
            raise ConfigurationError(
                f"{job.name}: {job.rows}x{job.cols} exceeds the {rows}x{cols} mesh"
            )
    pending = sorted(jobs, key=lambda j: (j.arrival_s, j.name))
    queue: List[Job] = []
    running: List[Tuple[float, int, int, Job]] = []  # (end, seq, alloc_id, job)
    records: List[JobRecord] = []
    now = 0.0
    seq = 0
    i = 0
    node_seconds = 0.0

    def try_start() -> None:
        nonlocal seq, node_seconds
        while queue:
            job = queue[0]
            alloc = allocator.allocate(job.rows, job.cols)
            if alloc is None:
                return  # head-of-line blocks
            queue.pop(0)
            seq += 1
            end = now + job.duration_s
            heapq.heappush(running, (end, seq, alloc.alloc_id, job))
            records.append(JobRecord(job=job, start_s=now, end_s=end))
            node_seconds += job.rows * job.cols * job.duration_s

    while i < len(pending) or queue or running:
        # Next event: job arrival or job completion.
        next_arrival = pending[i].arrival_s if i < len(pending) else float("inf")
        next_completion = running[0][0] if running else float("inf")
        now = min(next_arrival, next_completion)
        if now == float("inf"):  # pragma: no cover - queue stuck is impossible
            raise ConfigurationError("scheduler made no progress")
        while running and running[0][0] <= now:
            _, _, alloc_id, _ = heapq.heappop(running)
            allocator.release(alloc_id)
        while i < len(pending) and pending[i].arrival_s <= now:
            queue.append(pending[i])
            i += 1
        try_start()

    makespan = max((r.end_s for r in records), default=0.0)
    capacity = rows * cols * makespan if makespan > 0 else 1.0
    return ScheduleResult(
        records=records,
        makespan_s=makespan,
        utilisation=node_seconds / capacity,
    )
