"""Machine presets: the DARPA Touchstone series and its contemporaries.

Parameters are drawn from the paper's Delta slide (528 numeric
processors, 32 GFLOPS peak, installed at Caltech) and from the publicly
documented characteristics of the era's machines.  Where the paper gives
a number we match it exactly (peak = 528 x 60.6 MFLOPS = 32.0 GFLOPS);
where it does not, we use the accepted published figures (NX message
latency ~72 us, ~12-25 MB/s channels, 16 MB i860 nodes).

These presets are the "testbeds" the HPCC program approach slide calls
for establishing; everything downstream (LINPACK model, grand-challenge
scaling, evaluation campaigns) is parameterised by them.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.machine.links import LinkModel
from repro.machine.machine import Machine
from repro.machine.node import NodeSpec
from repro.machine.topology import FullyConnected, Hypercube, Mesh2D
from repro.util.errors import ConfigurationError
from repro.util.units import mflops, mib, microseconds, mb_per_s

# The i860 XR at 40 MHz: one multiply-add pipe, 60 MFLOPS nominal double
# precision.  528 numeric nodes x 60.6 MFLOPS = 32.0 GFLOPS, the paper's
# headline peak.
I860_XR = NodeSpec(
    name="Intel i860 XR (40 MHz)",
    peak_flops=mflops(60.6),
    memory_bytes=mib(16),
    sustained_fraction=0.62,
    clock_hz=40e6,
)

# i860 XP at 50 MHz for the Paragon-class follow-on.
I860_XP = NodeSpec(
    name="Intel i860 XP (50 MHz)",
    peak_flops=mflops(75.0),
    memory_bytes=mib(32),
    sustained_fraction=0.62,
    clock_hz=50e6,
)

# SPARC + vector units, CM-5 class node (quoted 128 MFLOPS peak w/ VUs).
CM5_NODE = NodeSpec(
    name="SPARC + 4 vector units",
    peak_flops=mflops(128.0),
    memory_bytes=mib(32),
    sustained_fraction=0.55,
    clock_hz=32e6,
)

# A single Cray Y-MP C90-class vector processor: 16 CPUs sharing memory.
YMP_CPU = NodeSpec(
    name="Cray Y-MP vector CPU",
    peak_flops=mflops(333.0),
    memory_bytes=mib(256),
    sustained_fraction=0.85,  # vector machines ran dense kernels near peak
    clock_hz=166e6,
)


def touchstone_delta() -> Machine:
    """The Intel Touchstone Delta at Caltech (1991).

    528 numeric i860 nodes on a 16 x 33 two-dimensional mesh with
    wormhole Mesh Routing Chips.  The paper's claims: world's fastest
    installed supercomputer, 32 GFLOPS peak, 13 GFLOPS on LINPACK of
    order 25 000.
    """
    return Machine(
        name="Intel Touchstone Delta",
        node=I860_XR,
        topology=Mesh2D(16, 33),
        link=LinkModel(
            latency_s=microseconds(72.0),
            bandwidth_bytes_per_s=mb_per_s(12.0),
            per_hop_s=microseconds(0.05),
        ),
        year=1991,
    )


def intel_ipsc860(dimension: int = 7) -> Machine:
    """The iPSC/860 "Touchstone Gamma" hypercube (1990), Delta's
    predecessor in the DARPA series.  Default 128 nodes (dimension 7).
    """
    if not 0 <= dimension <= 7:
        raise ConfigurationError(
            f"iPSC/860 shipped in dimensions 0..7 (<=128 nodes), got {dimension}"
        )
    return Machine(
        name="Intel iPSC/860 (Touchstone Gamma)",
        node=I860_XR,
        topology=Hypercube(dimension),
        link=LinkModel(
            latency_s=microseconds(90.0),
            bandwidth_bytes_per_s=mb_per_s(2.8),
            per_hop_s=microseconds(10.0),  # DCM store-and-forward heritage
        ),
        year=1990,
    )


def intel_paragon(rows: int = 16, cols: int = 64) -> Machine:
    """Paragon XP/S-class machine (1992-93): the Delta's productised
    successor with i860 XP nodes and a much faster mesh."""
    return Machine(
        name="Intel Paragon XP/S",
        node=I860_XP,
        topology=Mesh2D(rows, cols),
        link=LinkModel(
            latency_s=microseconds(40.0),
            bandwidth_bytes_per_s=mb_per_s(175.0),
            per_hop_s=microseconds(0.04),
        ),
        year=1992,
    )


def cm5(n_nodes: int = 512) -> Machine:
    """Thinking Machines CM-5 class system on a fat-tree.

    The fat tree is approximated by a fully connected topology with the
    measured per-link point-to-point parameters: the CM-5 data network
    gave near-uniform latency regardless of placement, which is the
    property the approximation preserves.
    """
    if n_nodes < 1:
        raise ConfigurationError(f"CM-5 size must be >= 1, got {n_nodes}")
    return Machine(
        name="Thinking Machines CM-5",
        node=CM5_NODE,
        topology=FullyConnected(n_nodes),
        link=LinkModel(
            latency_s=microseconds(86.0),
            bandwidth_bytes_per_s=mb_per_s(9.0),
            per_hop_s=microseconds(0.0),
        ),
        year=1992,
    )


def cray_ymp(n_cpus: int = 16) -> Machine:
    """Cray Y-MP C90-class shared-memory vector machine.

    The conventional-supercomputer baseline the HPCC program's MPP
    testbeds were racing: few, very fast vector CPUs over shared
    memory (modelled as an ideal crossbar with memory-copy "links").
    """
    if not 1 <= n_cpus <= 16:
        raise ConfigurationError(f"Y-MP C90 had 1..16 CPUs, got {n_cpus}")
    return Machine(
        name="Cray Y-MP C90",
        node=YMP_CPU,
        topology=FullyConnected(n_cpus),
        link=LinkModel(
            latency_s=microseconds(1.0),
            bandwidth_bytes_per_s=mb_per_s(1000.0),
            per_hop_s=0.0,
        ),
        year=1991,
    )


# Registry: name -> zero-argument constructor, used by examples/benches.
PRESETS: Dict[str, Callable[[], Machine]] = {
    "delta": touchstone_delta,
    "ipsc860": intel_ipsc860,
    "paragon": intel_paragon,
    "cm5": cm5,
    "ymp": cray_ymp,
}


def get_machine(name: str) -> Machine:
    """Look up a preset machine by registry name."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown machine preset {name!r}; available: {sorted(PRESETS)}"
        ) from None
    return factory()


def darpa_mpp_series() -> List[Machine]:
    """The DARPA-funded MPP progression the Delta slide places itself in,
    in chronological order."""
    return [intel_ipsc860(), touchstone_delta(), intel_paragon()]
