"""Static contention analysis of communication patterns.

The alpha-beta simulator charges each message independently; this
module answers the complementary question real mesh machines forced:
when a pattern's routed paths pile onto the same wire, what does the
*shared* wire impose?  For a pattern (a list of (src, dst, nbytes)
messages assumed concurrent):

* per-link byte loads along deterministic routes,
* the serialisation lower bound -- the hottest link's bytes over its
  bandwidth (no schedule can beat it),
* the bisection lower bound for patterns that move B bytes across the
  machine's bisection.

Comparing the bounds across topologies reproduces the mesh-vs-hypercube
table that decided the Touchstone series' wiring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.machine.machine import Machine
from repro.machine.topology import Topology
from repro.util.errors import ConfigurationError

#: A concurrent communication pattern.
Pattern = Sequence[Tuple[int, int, float]]


def path_links(path: Sequence[int]) -> List[tuple]:
    """Undirected (low, high) link keys along a routed path.

    The shared link-key convention between this static analyzer and the
    simulator's contention-aware delivery model -- both must count the
    same wires or the simulated makespan could undercut the bound.
    """
    return [(u, v) if u < v else (v, u) for u, v in zip(path, path[1:])]


def link_byte_loads(topology: Topology, pattern: Pattern) -> Dict[tuple, float]:
    """Bytes traversing each undirected link under deterministic routing."""
    loads: Dict[tuple, float] = {}
    for src, dst, nbytes in pattern:
        if nbytes < 0:
            raise ConfigurationError(f"negative message size {nbytes}")
        if src == dst:
            continue
        for key in path_links(topology.route(src, dst)):
            loads[key] = loads.get(key, 0.0) + nbytes
    return loads


@dataclass(frozen=True)
class ContentionReport:
    """Bounds for one pattern on one machine."""

    machine: str
    topology_kind: str
    n_messages: int
    total_bytes: float
    max_link_bytes: float
    serialisation_bound_s: float
    bisection_bound_s: float

    @property
    def binding_bound_s(self) -> float:
        return max(self.serialisation_bound_s, self.bisection_bound_s)


def analyse(machine: Machine, pattern: Pattern) -> ContentionReport:
    """Compute contention lower bounds for a concurrent pattern."""
    loads = link_byte_loads(machine.topology, pattern)
    max_link = max(loads.values()) if loads else 0.0
    bw = machine.link.bandwidth_bytes_per_s

    total = sum(n for _, _, n in pattern)
    # Bisection bound: bytes that *must* cross a balanced cut.  We use
    # the node-index cut (first half vs second half), which matches the
    # bisection_width convention of the topologies here.
    half = machine.n_nodes // 2
    crossing = sum(
        n for s, d, n in pattern if (s < half) != (d < half)
    )
    bis_width = machine.topology.bisection_width()
    bis_bw = bis_width * bw if bis_width else float("inf")

    return ContentionReport(
        machine=machine.name,
        topology_kind=machine.topology.kind,
        n_messages=len(pattern),
        total_bytes=total,
        max_link_bytes=max_link,
        serialisation_bound_s=max_link / bw,
        bisection_bound_s=crossing / bis_bw if crossing else 0.0,
    )


def all_to_all_pattern(p: int, nbytes: float) -> List[Tuple[int, int, float]]:
    """Every rank sends ``nbytes`` to every other rank (FFT transpose)."""
    if p < 1:
        raise ConfigurationError(f"p must be >= 1, got {p}")
    return [(s, d, nbytes) for s in range(p) for d in range(p) if s != d]


def ring_shift_pattern(p: int, nbytes: float) -> List[Tuple[int, int, float]]:
    """Rank i sends to rank (i+1) mod p (halo/pipeline step)."""
    if p < 1:
        raise ConfigurationError(f"p must be >= 1, got {p}")
    if p == 1:
        return []
    return [(i, (i + 1) % p, nbytes) for i in range(p)]


def transpose_pattern(prows: int, pcols: int, nbytes: float) -> List[Tuple[int, int, float]]:
    """Grid transpose: rank (i, j) sends to rank (j, i) (square grids)."""
    if prows != pcols:
        raise ConfigurationError(
            f"transpose pattern needs a square grid, got {prows}x{pcols}"
        )
    out = []
    for i in range(prows):
        for j in range(pcols):
            if i != j:
                out.append((i * pcols + j, j * pcols + i, nbytes))
    return out
