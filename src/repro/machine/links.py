"""Hockney alpha-beta model for interconnect links.

Message time between two nodes ``h`` hops apart carrying ``n`` bytes:

    t(n, h) = alpha + h * tau + n / beta_bw

where ``alpha`` is the software startup latency (dominant on 1992
machines: ~72 us on the Touchstone Delta's NX layer), ``tau`` the
per-hop wormhole routing delay (tens of nanoseconds -- wormhole routing
made distance almost free, which is why the Delta could use a 2-D mesh
at all), and ``beta_bw`` the link bandwidth in bytes/s.

The model also exposes ``n_half``, Hockney's half-performance message
length: the message size at which half of asymptotic bandwidth is
achieved.  It is a standard single-number summary of how
latency-dominated an interconnect is.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class LinkModel:
    """Alpha-beta (Hockney) point-to-point cost model.

    Attributes
    ----------
    latency_s:
        Software + hardware startup cost per message, seconds.
    bandwidth_bytes_per_s:
        Asymptotic per-link bandwidth, bytes/s.
    per_hop_s:
        Additional delay per routed hop (wormhole header latency).
    """

    latency_s: float
    bandwidth_bytes_per_s: float
    per_hop_s: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ConfigurationError(f"latency must be >= 0, got {self.latency_s}")
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigurationError(
                f"bandwidth must be positive, got {self.bandwidth_bytes_per_s}"
            )
        if self.per_hop_s < 0:
            raise ConfigurationError(f"per-hop delay must be >= 0, got {self.per_hop_s}")

    def message_time(self, nbytes: float, hops: int = 1) -> float:
        """Seconds to deliver ``nbytes`` across ``hops`` links."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        if hops < 0:
            raise ConfigurationError(f"hops must be >= 0, got {hops}")
        if hops == 0:
            # Self-send: modelled as a memcpy at link bandwidth with no
            # network startup; a small constant keeps times monotone.
            return nbytes / self.bandwidth_bytes_per_s
        return self.latency_s + hops * self.per_hop_s + nbytes / self.bandwidth_bytes_per_s

    @property
    def n_half(self) -> float:
        """Half-performance message length in bytes (Hockney n_1/2)."""
        return self.latency_s * self.bandwidth_bytes_per_s

    def effective_bandwidth(self, nbytes: float, hops: int = 1) -> float:
        """Achieved bytes/s for a message of ``nbytes`` (reporting aid)."""
        t = self.message_time(nbytes, hops)
        if t == 0:
            return float("inf")
        return nbytes / t
