"""Interconnect topologies with deterministic routing.

Every topology numbers its nodes ``0 .. n_nodes-1`` and provides:

* ``neighbors(node)`` -- directly connected nodes,
* ``route(src, dst)`` -- the deterministic path the hardware router
  would take (dimension-ordered for meshes/tori, e-cube for
  hypercubes), returned as the full node sequence including endpoints,
* ``hops(src, dst)`` -- path length in links,
* ``diameter()`` and ``bisection_width()`` -- the two aggregate numbers
  that distinguish the DARPA MPP series designs (mesh vs hypercube was
  the live architectural argument of 1991-92; wormhole routing is what
  let the Delta pick the mesh).

Routes are what the message-passing simulator charges hop latency for,
and what contention analysis counts link load over.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.util.errors import TopologyError


class Topology(ABC):
    """Abstract interconnect: a named graph over ranks 0..n-1."""

    #: human-readable kind, e.g. "mesh2d"
    kind: str = "abstract"

    @property
    @abstractmethod
    def n_nodes(self) -> int:
        """Number of nodes in the topology."""

    @abstractmethod
    def neighbors(self, node: int) -> List[int]:
        """Nodes one link away from ``node``."""

    @abstractmethod
    def route(self, src: int, dst: int) -> List[int]:
        """Deterministic routed path from ``src`` to ``dst`` inclusive."""

    @abstractmethod
    def diameter(self) -> int:
        """Maximum hop count between any node pair."""

    @abstractmethod
    def bisection_width(self) -> int:
        """Number of links cut by a balanced bisection."""

    # -- derived helpers ----------------------------------------------------

    def check_node(self, node: int) -> None:
        """Raise :class:`TopologyError` unless ``node`` is in range."""
        if not 0 <= node < self.n_nodes:
            raise TopologyError(
                f"node {node} outside topology of {self.n_nodes} nodes"
            )

    def hops(self, src: int, dst: int) -> int:
        """Number of links on the routed path (0 for self)."""
        return len(self.route(src, dst)) - 1

    def hops_array(self, srcs: "np.ndarray", dsts: "np.ndarray") -> "np.ndarray":
        """Vectorised :meth:`hops` over parallel arrays of node ids.

        The macro-op evaluator prices whole collective rounds at once
        through this.  Node ids must be valid (callers hold ranks the
        engine already validated); the regular topologies override the
        generic loop with closed-form integer arithmetic that matches
        :meth:`hops` exactly.
        """
        return np.fromiter(
            (self.hops(int(s), int(d)) for s, d in zip(srcs, dsts)),
            dtype=np.int64,
            count=len(srcs),
        )

    def links(self) -> Iterator[Tuple[int, int]]:
        """All undirected links, each reported once as (low, high)."""
        for u in range(self.n_nodes):
            for v in self.neighbors(u):
                if u < v:
                    yield (u, v)

    def average_hops(self) -> float:
        """Mean routed hop count over all ordered pairs of distinct nodes.

        O(n^2) -- fine for the machine sizes simulated here; aggregate
        reporting only.
        """
        n = self.n_nodes
        if n < 2:
            return 0.0
        total = 0
        for s in range(n):
            for d in range(n):
                if s != d:
                    total += self.hops(s, d)
        return total / (n * (n - 1))


class Mesh2D(Topology):
    """2-D mesh with dimension-ordered (X-then-Y) routing.

    The Touchstone Delta's topology: node ``(r, c)`` has id
    ``r * cols + c``; messages route along the row first, then the
    column, matching the Delta's Mesh Routing Chips.
    """

    kind = "mesh2d"

    def __init__(self, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise TopologyError(f"mesh shape must be >= 1x1, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols

    @property
    def n_nodes(self) -> int:
        return self.rows * self.cols

    def coords(self, node: int) -> Tuple[int, int]:
        """(row, col) of a node id."""
        self.check_node(node)
        return divmod(node, self.cols)

    def node_at(self, row: int, col: int) -> int:
        """Node id at (row, col)."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise TopologyError(
                f"({row}, {col}) outside {self.rows}x{self.cols} mesh"
            )
        return row * self.cols + col

    def neighbors(self, node: int) -> List[int]:
        r, c = self.coords(node)
        out = []
        if c > 0:
            out.append(self.node_at(r, c - 1))
        if c < self.cols - 1:
            out.append(self.node_at(r, c + 1))
        if r > 0:
            out.append(self.node_at(r - 1, c))
        if r < self.rows - 1:
            out.append(self.node_at(r + 1, c))
        return out

    def route(self, src: int, dst: int) -> List[int]:
        r0, c0 = self.coords(src)
        r1, c1 = self.coords(dst)
        path = [src]
        c = c0
        step = 1 if c1 > c0 else -1
        while c != c1:
            c += step
            path.append(self.node_at(r0, c))
        r = r0
        step = 1 if r1 > r0 else -1
        while r != r1:
            r += step
            path.append(self.node_at(r, c1))
        return path

    def hops(self, src: int, dst: int) -> int:
        # Manhattan distance; cheaper than materialising the route.
        r0, c0 = self.coords(src)
        r1, c1 = self.coords(dst)
        return abs(r0 - r1) + abs(c0 - c1)

    def hops_array(self, srcs: "np.ndarray", dsts: "np.ndarray") -> "np.ndarray":
        r0, c0 = np.divmod(np.asarray(srcs, dtype=np.int64), self.cols)
        r1, c1 = np.divmod(np.asarray(dsts, dtype=np.int64), self.cols)
        return np.abs(r0 - r1) + np.abs(c0 - c1)

    def diameter(self) -> int:
        return (self.rows - 1) + (self.cols - 1)

    def bisection_width(self) -> int:
        # Cut across the longer dimension's midline.
        if self.cols >= self.rows:
            return self.rows if self.cols > 1 else 0
        return self.cols


class Torus2D(Mesh2D):
    """2-D torus: mesh plus wraparound links, dimension-ordered routing
    taking the shorter way around each ring."""

    kind = "torus2d"

    def __init__(self, rows: int, cols: int):
        super().__init__(rows, cols)

    def neighbors(self, node: int) -> List[int]:
        r, c = self.coords(node)
        out = {
            self.node_at(r, (c - 1) % self.cols),
            self.node_at(r, (c + 1) % self.cols),
            self.node_at((r - 1) % self.rows, c),
            self.node_at((r + 1) % self.rows, c),
        }
        out.discard(node)  # degenerate 1-wide dimensions self-loop
        return sorted(out)

    @staticmethod
    def _ring_step(frm: int, to: int, size: int) -> int:
        """+1/-1 step along the shorter arc of a ring (ties go +1)."""
        forward = (to - frm) % size
        backward = (frm - to) % size
        return 1 if forward <= backward else -1

    def route(self, src: int, dst: int) -> List[int]:
        r0, c0 = self.coords(src)
        r1, c1 = self.coords(dst)
        path = [src]
        c = c0
        if c0 != c1:
            step = self._ring_step(c0, c1, self.cols)
            while c != c1:
                c = (c + step) % self.cols
                path.append(self.node_at(r0, c))
        r = r0
        if r0 != r1:
            step = self._ring_step(r0, r1, self.rows)
            while r != r1:
                r = (r + step) % self.rows
                path.append(self.node_at(r, c1))
        return path

    def hops(self, src: int, dst: int) -> int:
        r0, c0 = self.coords(src)
        r1, c1 = self.coords(dst)
        dc = min((c1 - c0) % self.cols, (c0 - c1) % self.cols)
        dr = min((r1 - r0) % self.rows, (r0 - r1) % self.rows)
        return dc + dr

    def hops_array(self, srcs: "np.ndarray", dsts: "np.ndarray") -> "np.ndarray":
        r0, c0 = np.divmod(np.asarray(srcs, dtype=np.int64), self.cols)
        r1, c1 = np.divmod(np.asarray(dsts, dtype=np.int64), self.cols)
        dc = np.minimum((c1 - c0) % self.cols, (c0 - c1) % self.cols)
        dr = np.minimum((r1 - r0) % self.rows, (r0 - r1) % self.rows)
        return dc + dr

    def diameter(self) -> int:
        return self.rows // 2 + self.cols // 2

    def bisection_width(self) -> int:
        # Wraparound doubles the cut relative to the mesh.
        if self.cols >= self.rows:
            return 2 * self.rows if self.cols > 2 else self.rows
        return 2 * self.cols if self.rows > 2 else self.cols


class Hypercube(Topology):
    """Binary hypercube with e-cube (ascending-dimension) routing.

    The iPSC/860 "Gamma" topology, the Delta's predecessor in the DARPA
    Touchstone series.
    """

    kind = "hypercube"

    def __init__(self, dimension: int):
        if dimension < 0:
            raise TopologyError(f"hypercube dimension must be >= 0, got {dimension}")
        if dimension > 20:
            raise TopologyError(f"hypercube dimension {dimension} unreasonably large")
        self.dimension = dimension

    @property
    def n_nodes(self) -> int:
        return 1 << self.dimension

    def neighbors(self, node: int) -> List[int]:
        self.check_node(node)
        return [node ^ (1 << d) for d in range(self.dimension)]

    def route(self, src: int, dst: int) -> List[int]:
        self.check_node(src)
        self.check_node(dst)
        path = [src]
        cur = src
        diff = src ^ dst
        for d in range(self.dimension):
            if diff & (1 << d):
                cur ^= 1 << d
                path.append(cur)
        return path

    def hops(self, src: int, dst: int) -> int:
        self.check_node(src)
        self.check_node(dst)
        return bin(src ^ dst).count("1")

    def hops_array(self, srcs: "np.ndarray", dsts: "np.ndarray") -> "np.ndarray":
        diff = np.asarray(srcs, dtype=np.int64) ^ np.asarray(dsts, dtype=np.int64)
        total = np.zeros_like(diff)
        for d in range(self.dimension):  # popcount, dimension <= 20
            total += (diff >> d) & 1
        return total

    def diameter(self) -> int:
        return self.dimension

    def bisection_width(self) -> int:
        return self.n_nodes // 2 if self.dimension > 0 else 0


class Ring(Topology):
    """1-D ring, shorter-arc routing.  Degenerates to a single node."""

    kind = "ring"

    def __init__(self, n: int):
        if n < 1:
            raise TopologyError(f"ring size must be >= 1, got {n}")
        self._n = n

    @property
    def n_nodes(self) -> int:
        return self._n

    def neighbors(self, node: int) -> List[int]:
        self.check_node(node)
        if self._n == 1:
            return []
        if self._n == 2:
            return [1 - node]
        return sorted({(node - 1) % self._n, (node + 1) % self._n})

    def route(self, src: int, dst: int) -> List[int]:
        self.check_node(src)
        self.check_node(dst)
        if src == dst:
            return [src]
        step = Torus2D._ring_step(src, dst, self._n)
        path = [src]
        cur = src
        while cur != dst:
            cur = (cur + step) % self._n
            path.append(cur)
        return path

    def hops(self, src: int, dst: int) -> int:
        self.check_node(src)
        self.check_node(dst)
        d = abs(src - dst)
        return min(d, self._n - d)

    def hops_array(self, srcs: "np.ndarray", dsts: "np.ndarray") -> "np.ndarray":
        d = np.abs(np.asarray(srcs, dtype=np.int64) - np.asarray(dsts, dtype=np.int64))
        return np.minimum(d, self._n - d)

    def diameter(self) -> int:
        return self._n // 2

    def bisection_width(self) -> int:
        return 2 if self._n > 2 else max(self._n - 1, 0)


class FullyConnected(Topology):
    """Idealised crossbar: every pair one hop apart.

    Used as the "zero network cost structure" baseline in ablations and
    as the model for shared-memory vector machines (Cray Y-MP class)
    where the interconnect is the memory system.
    """

    kind = "full"

    def __init__(self, n: int):
        if n < 1:
            raise TopologyError(f"size must be >= 1, got {n}")
        self._n = n

    @property
    def n_nodes(self) -> int:
        return self._n

    def neighbors(self, node: int) -> List[int]:
        self.check_node(node)
        return [i for i in range(self._n) if i != node]

    def route(self, src: int, dst: int) -> List[int]:
        self.check_node(src)
        self.check_node(dst)
        return [src] if src == dst else [src, dst]

    def hops(self, src: int, dst: int) -> int:
        self.check_node(src)
        self.check_node(dst)
        return 0 if src == dst else 1

    def hops_array(self, srcs: "np.ndarray", dsts: "np.ndarray") -> "np.ndarray":
        return (
            np.asarray(srcs, dtype=np.int64) != np.asarray(dsts, dtype=np.int64)
        ).astype(np.int64)

    def diameter(self) -> int:
        return 1 if self._n > 1 else 0

    def bisection_width(self) -> int:
        half = self._n // 2
        return half * (self._n - half)


def link_loads(topology: Topology, pairs: Sequence[Tuple[int, int]]) -> dict:
    """Count how many routed paths traverse each undirected link.

    ``pairs`` is a sequence of (src, dst) messages; the return maps
    (low, high) links to message counts.  Used for contention analysis
    in the collectives ablation.
    """
    loads: dict = {}
    for src, dst in pairs:
        path = topology.route(src, dst)
        for u, v in zip(path, path[1:]):
            key = (u, v) if u < v else (v, u)
            loads[key] = loads.get(key, 0) + 1
    return loads
