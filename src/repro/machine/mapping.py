"""Rank-to-node placement strategies.

On a mesh machine, *where* logical ranks land physically changes every
hop count.  The Delta's users controlled this with submesh allocation;
getting it wrong turned nearest-neighbour halo exchanges into
cross-machine traffic.  These strategies produce ``rank_map`` arguments
for :class:`~repro.simmpi.engine.Engine`:

* ``row_major`` -- the identity default;
* ``snake`` -- boustrophedon rows, keeping consecutive ranks adjacent
  even across row boundaries (good for 1-D ring/strip codes on meshes);
* ``blocked`` -- tiles a 2-D process grid onto a submesh so grid
  neighbours are mesh neighbours (the right mapping for 2-D halos);
* ``random`` -- the adversarial baseline showing what placement is
  worth.
"""

from __future__ import annotations

from typing import List

from repro.machine.topology import Mesh2D, Topology
from repro.util.errors import ConfigurationError
from repro.util.rng import resolve_rng


def row_major(n_ranks: int, topology: Topology) -> List[int]:
    """Identity placement: rank i on node i."""
    _check(n_ranks, topology)
    return list(range(n_ranks))


def snake(n_ranks: int, topology: Topology) -> List[int]:
    """Boustrophedon placement on a 2-D mesh.

    Rank order walks row 0 left-to-right, row 1 right-to-left, and so
    on, so |rank_i - rank_{i+1}| is always one mesh hop.
    """
    _check(n_ranks, topology)
    if not isinstance(topology, Mesh2D):
        raise ConfigurationError("snake placement needs a Mesh2D topology")
    order = []
    for r in range(topology.rows):
        cols = range(topology.cols)
        if r % 2:
            cols = reversed(cols)
        for c in cols:
            order.append(topology.node_at(r, c))
    return order[:n_ranks]


def blocked(prows: int, pcols: int, topology: Topology) -> List[int]:
    """Place a row-major ``prows x pcols`` process grid contiguously on
    a mesh: grid coordinate (i, j) -> mesh node (i, j).

    Requires the mesh to be at least as large in both dimensions.
    """
    if not isinstance(topology, Mesh2D):
        raise ConfigurationError("blocked placement needs a Mesh2D topology")
    if prows > topology.rows or pcols > topology.cols:
        raise ConfigurationError(
            f"{prows}x{pcols} grid does not fit a "
            f"{topology.rows}x{topology.cols} mesh"
        )
    return [
        topology.node_at(i, j) for i in range(prows) for j in range(pcols)
    ]


def random_placement(n_ranks: int, topology: Topology, seed: int = 0) -> List[int]:
    """Uniform random node assignment (the pathological baseline)."""
    _check(n_ranks, topology)
    rng = resolve_rng(seed)
    nodes = rng.permutation(topology.n_nodes)[:n_ranks]
    return [int(x) for x in nodes]


def _check(n_ranks: int, topology: Topology) -> None:
    if not 1 <= n_ranks <= topology.n_nodes:
        raise ConfigurationError(
            f"{n_ranks} ranks do not fit a topology of {topology.n_nodes} nodes"
        )


def neighbour_hop_cost(rank_map: List[int], topology: Topology) -> float:
    """Mean mesh hops between consecutive ranks under a placement.

    The figure of merit for strip/ring codes: 1.0 means every logical
    neighbour is a physical neighbour.
    """
    if len(rank_map) < 2:
        return 0.0
    total = sum(
        topology.hops(a, b) for a, b in zip(rank_map, rank_map[1:])
    )
    # Periodic codes also wrap last -> first.
    total += topology.hops(rank_map[-1], rank_map[0])
    return total / len(rank_map)
