"""Parallel I/O subsystem model.

The Delta's mesh had dedicated I/O nodes on its edges running the
Concurrent File System; aggregate bandwidth came from striping across
them.  Checkpointing economics (:mod:`repro.core.resilience`) and any
output-bound workload hinge on this number, so it gets its own model:

    write_time(bytes) = startup + bytes / (n_io_nodes * per_node_bw)

with an efficiency factor for striping overheads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class IOSubsystem:
    """Striped I/O array attached to a machine."""

    n_io_nodes: int
    per_node_bandwidth_bytes_per_s: float
    startup_s: float = 0.05
    striping_efficiency: float = 0.85

    def __post_init__(self) -> None:
        if self.n_io_nodes < 1:
            raise ConfigurationError(
                f"need at least one I/O node, got {self.n_io_nodes}"
            )
        if self.per_node_bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("per-node bandwidth must be positive")
        if self.startup_s < 0:
            raise ConfigurationError("startup must be >= 0")
        if not 0 < self.striping_efficiency <= 1:
            raise ConfigurationError(
                f"striping efficiency must be in (0, 1], got "
                f"{self.striping_efficiency}"
            )

    @property
    def aggregate_bandwidth_bytes_per_s(self) -> float:
        """Achievable striped throughput."""
        return (
            self.n_io_nodes
            * self.per_node_bandwidth_bytes_per_s
            * self.striping_efficiency
        )

    def write_time(self, nbytes: float) -> float:
        """Seconds to write ``nbytes`` striped across the array."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        return self.startup_s + nbytes / self.aggregate_bandwidth_bytes_per_s

    def read_time(self, nbytes: float) -> float:
        """Symmetric read model."""
        return self.write_time(nbytes)


def delta_cfs() -> IOSubsystem:
    """The Delta's Concurrent File System: 16 I/O nodes delivering
    roughly 10 MB/s aggregate in practice."""
    return IOSubsystem(
        n_io_nodes=16,
        per_node_bandwidth_bytes_per_s=0.75e6,
        startup_s=0.1,
        striping_efficiency=0.85,
    )


def paragon_pfs() -> IOSubsystem:
    """Paragon-generation parallel file system: wider stripe, faster
    nodes."""
    return IOSubsystem(
        n_io_nodes=64,
        per_node_bandwidth_bytes_per_s=3.0e6,
        startup_s=0.05,
        striping_efficiency=0.85,
    )
