"""Distributed-memory machine models: nodes, topologies, links, presets."""

from repro.machine.allocator import (
    Allocation,
    Job,
    JobRecord,
    ScheduleResult,
    SubmeshAllocator,
    simulate_backfill,
    simulate_fcfs,
)
from repro.machine.contention import (
    ContentionReport,
    all_to_all_pattern,
    analyse,
    link_byte_loads,
    ring_shift_pattern,
    transpose_pattern,
)
from repro.machine.io import IOSubsystem, delta_cfs, paragon_pfs
from repro.machine.links import LinkModel
from repro.machine.machine import Machine
from repro.machine.mapping import (
    blocked,
    neighbour_hop_cost,
    random_placement,
    row_major,
    snake,
)
from repro.machine.node import NodeSpec
from repro.machine.presets import (
    PRESETS,
    cm5,
    cray_ymp,
    darpa_mpp_series,
    get_machine,
    intel_ipsc860,
    intel_paragon,
    touchstone_delta,
)
from repro.machine.topology import (
    FullyConnected,
    Hypercube,
    Mesh2D,
    Ring,
    Topology,
    Torus2D,
    link_loads,
)

__all__ = [
    "Allocation",
    "Job",
    "JobRecord",
    "ScheduleResult",
    "SubmeshAllocator",
    "simulate_backfill",
    "simulate_fcfs",
    "IOSubsystem",
    "delta_cfs",
    "paragon_pfs",
    "ContentionReport",
    "all_to_all_pattern",
    "analyse",
    "link_byte_loads",
    "ring_shift_pattern",
    "transpose_pattern",
    "LinkModel",
    "Machine",
    "NodeSpec",
    "blocked",
    "neighbour_hop_cost",
    "random_placement",
    "row_major",
    "snake",
    "PRESETS",
    "cm5",
    "cray_ymp",
    "darpa_mpp_series",
    "get_machine",
    "intel_ipsc860",
    "intel_paragon",
    "touchstone_delta",
    "FullyConnected",
    "Hypercube",
    "Mesh2D",
    "Ring",
    "Topology",
    "Torus2D",
    "link_loads",
]
