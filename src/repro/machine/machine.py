"""Machine assembly: nodes + topology + link model.

A :class:`Machine` is the static description the simulator and every
analytic performance model consume.  It answers the questions the
paper's Delta slide answers -- peak rate, node count -- plus the derived
quantities (bisection bandwidth, message times) that determine how the
grand-challenge codes scale on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.machine.links import LinkModel
from repro.machine.node import NodeSpec
from repro.machine.topology import Topology
from repro.util.errors import ConfigurationError
from repro.util.units import as_gflops, format_rate


@dataclass(frozen=True)
class Machine:
    """A homogeneous distributed-memory machine.

    Attributes
    ----------
    name:
        Marketing/series designation, e.g. ``"Intel Touchstone Delta"``.
    node:
        Per-node compute/memory description.
    topology:
        Interconnect graph with deterministic routing.
    link:
        Alpha-beta cost model applied along routed paths.
    year:
        Installation year, used by the MPP-series exhibit.
    """

    name: str
    node: NodeSpec
    topology: Topology
    link: LinkModel
    year: int = 1991

    def __post_init__(self) -> None:
        if self.topology.n_nodes < 1:
            raise ConfigurationError("machine must have at least one node")

    # -- aggregate capability -------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of compute nodes."""
        return self.topology.n_nodes

    @property
    def peak_flops(self) -> float:
        """Aggregate peak rate in flop/s (paper quotes 32 GFLOPS for Delta)."""
        return self.n_nodes * self.node.peak_flops

    @property
    def peak_gflops(self) -> float:
        """Aggregate peak in GFLOPS, for reporting."""
        return as_gflops(self.peak_flops)

    @property
    def total_memory_bytes(self) -> float:
        """Aggregate memory in bytes."""
        return self.n_nodes * self.node.memory_bytes

    @property
    def bisection_bandwidth_bytes_per_s(self) -> float:
        """Bisection bandwidth: cut width times per-link bandwidth."""
        return self.topology.bisection_width() * self.link.bandwidth_bytes_per_s

    # -- cost primitives (consumed by simmpi and analytic models) --------

    def compute_time(self, flops: float, efficiency: Optional[float] = None) -> float:
        """Seconds for one node to execute ``flops`` operations."""
        return self.node.compute_time(flops, efficiency)

    def ptp_time(self, src: int, dst: int, nbytes: float) -> float:
        """Seconds to move ``nbytes`` from rank ``src`` to rank ``dst``
        along the routed path."""
        self.topology.check_node(src)
        self.topology.check_node(dst)
        return self.link.message_time(nbytes, self.topology.hops(src, dst))

    def neighbor_time(self, nbytes: float) -> float:
        """Seconds for a single-hop (nearest-neighbour) message."""
        return self.link.message_time(nbytes, 1)

    # -- derived convenience ---------------------------------------------

    def subset(self, n: int, topology: Optional[Topology] = None) -> "Machine":
        """A machine using only ``n`` of this machine's nodes.

        The Delta was routinely space-shared into submeshes; scaling
        studies run the same node/link parameters at varying n.  If
        ``topology`` is not given, a best-effort near-square mesh (or
        the original topology class when it fits exactly) is built.
        """
        if not 1 <= n <= self.n_nodes:
            raise ConfigurationError(
                f"subset size {n} not in [1, {self.n_nodes}]"
            )
        if topology is None:
            from repro.machine.topology import Mesh2D

            rows = 1
            for r in range(int(n**0.5), 0, -1):
                if n % r == 0:
                    rows = r
                    break
            topology = Mesh2D(rows, n // rows)
        if topology.n_nodes != n:
            raise ConfigurationError(
                f"replacement topology has {topology.n_nodes} nodes, wanted {n}"
            )
        return Machine(
            name=self.name,  # identity preserved; n_nodes carries the size
            node=self.node,
            topology=topology,
            link=self.link,
            year=self.year,
        )

    def describe(self) -> str:
        """One-paragraph text summary used by reports and examples."""
        return (
            f"{self.name} ({self.year}): {self.n_nodes} x {self.node.name} "
            f"on a {self.topology.kind} interconnect; "
            f"peak {format_rate(self.peak_flops)}, "
            f"{self.total_memory_bytes / 2**20:.0f} MiB total memory, "
            f"link {self.link.bandwidth_bytes_per_s / 1e6:.1f} MB/s at "
            f"{self.link.latency_s * 1e6:.0f} us latency."
        )
