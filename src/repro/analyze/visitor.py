"""AST extraction: from a module tree to per-rank-program models.

The repo's rank programs are generator functions taking a communicator
(conventionally the parameter ``comm``; sub-communicators are created
with ``row_comm = comm.group(...)``) and driving every communication
coroutine with ``yield from``.  This module finds those functions and
distils each into a :class:`ProgramModel`: the flat list of
communication calls with the context the rules need --

* was the call wrapped in ``yield from``;
* how many enclosing ``if`` branches test ``comm.rank`` directly
  (``comm.rank == 0``, ``comm.is_root()``);
* which straight-line block the call sits in, and at which index
  (for ordering rules like the symmetric-send check);
* the call's arguments mapped to parameter names, and the names its
  result was bound to (for handle-leak tracking);
* the set of *rank-derived* ("tainted") local names, computed as a
  fixpoint over assignments whose right side mentions ``comm.rank`` or
  an already-tainted name -- this is how ``other = 1 - comm.rank`` or
  Cannon's ``left = rank_at(i, j - 1)`` are recognised as symmetric
  peers.

Scope is intentionally name-based and per-function (no inter-procedural
analysis): the cost of a false negative is a missed warning, while the
rules themselves are written to keep false positives near zero on the
repo's own idioms.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

#: Comm methods that return generators and MUST be driven with
#: ``yield from`` (rule W001's universe).
COMM_COROUTINES = frozenset(
    {
        "send",
        "recv",
        "isend",
        "irecv",
        "wait",
        "waitall",
        "waitany",
        "sendrecv",
        "compute",
        "barrier",
        "bcast",
        "reduce",
        "allreduce",
        "gather",
        "allgather",
        "scatter",
        "alltoall",
        "scan",
        "reduce_scatter",
    }
)

#: Collective operations: every rank of the communicator must call them
#: the same number of times (rule W003's universe).
COLLECTIVES = frozenset(
    {
        "barrier",
        "bcast",
        "reduce",
        "allreduce",
        "gather",
        "allgather",
        "scatter",
        "alltoall",
        "scan",
        "reduce_scatter",
    }
)

#: Positional-argument names per method, mirroring
#: :class:`repro.simmpi.comm.Comm`'s signatures (rules read arguments
#: by name regardless of how the call spelled them).
SIGNATURES: Dict[str, Tuple[str, ...]] = {
    "send": ("payload", "dest", "tag", "nbytes"),
    "isend": ("payload", "dest", "tag", "nbytes"),
    "recv": ("source", "tag"),
    "irecv": ("source", "tag"),
    "wait": ("handle",),
    "waitall": ("handles",),
    "waitany": ("handles",),
    "sendrecv": ("payload", "dest", "source", "sendtag", "recvtag", "nbytes"),
}


@dataclass
class CommCall:
    """One communication call site inside a rank program."""

    method: str
    line: int
    #: 0-based column offset of the call expression.
    col: int
    comm_name: str
    #: Parameter name -> argument expression (positional args resolved
    #: through :data:`SIGNATURES`).
    args: Dict[str, ast.expr]
    #: The call was the operand of a ``yield from``.
    yielded: bool
    #: Number of enclosing ``if`` statements whose test reads
    #: ``comm.rank`` / ``comm.is_root()`` directly.
    rank_cond_depth: int
    #: Identity of the statement list containing the call's statement.
    block_id: int
    #: Position of the call's statement within that block.
    block_index: int
    #: Names the call's result was assigned to (``h = yield from ...``).
    targets: Tuple[str, ...] = ()
    #: Name of the list the result was appended to, if the statement was
    #: ``lst.append(yield from comm.isend(...))``.
    appended_to: Optional[str] = None


@dataclass
class ProgramModel:
    """Everything the rules need to know about one rank program."""

    name: str
    filename: str
    line: int
    comm_names: Set[str]
    calls: List[CommCall] = field(default_factory=list)
    #: Local names derived (transitively) from ``comm.rank``.
    tainted: Set[str] = field(default_factory=set)
    #: Names that appear in a ``return`` statement (handles escaping to
    #: the caller are the caller's responsibility).
    returned_names: Set[str] = field(default_factory=set)
    #: name -> set of container names it was appended/inserted into.
    flows: Dict[str, Set[str]] = field(default_factory=dict)

    def flows_into(self, name: str) -> Set[str]:
        """Transitive closure of :attr:`flows` starting at ``name``."""
        seen: Set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for target in self.flows.get(current, ()):
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen


# ---------------------------------------------------------------------------
# helpers over expressions
# ---------------------------------------------------------------------------

def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _mentions_rank(node: ast.AST, comm_names: Set[str]) -> bool:
    """True when the expression reads ``comm.rank`` or ``comm.is_root``
    directly (``comm`` being any known communicator name)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in ("rank", "is_root"):
            if isinstance(sub.value, ast.Name) and sub.value.id in comm_names:
                return True
    return False


def is_rank_symmetric(expr: ast.AST, model: ProgramModel) -> bool:
    """A peer expression is *rank-symmetric* when it depends on the
    caller's own rank -- directly (``1 - comm.rank``) or through a
    tainted name (``other``, Cannon's ``left``/``right``)."""
    if _mentions_rank(expr, model.comm_names):
        return True
    return bool(_names_in(expr) & model.tainted)


def constant_int(expr: Optional[ast.AST]) -> Optional[int]:
    """The expression's integer value if it is a literal (handling the
    unary minus in ``-1``), else None."""
    if expr is None:
        return None
    if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
        return expr.value
    if (
        isinstance(expr, ast.UnaryOp)
        and isinstance(expr.op, ast.USub)
        and isinstance(expr.operand, ast.Constant)
        and isinstance(expr.operand.value, int)
    ):
        return -expr.operand.value
    return None


def is_wildcard(expr: Optional[ast.AST], wildcard_names: Tuple[str, ...]) -> bool:
    """Omitted argument, literal ``-1``, or the named constant."""
    if expr is None:
        return True
    if constant_int(expr) == -1:
        return True
    if isinstance(expr, ast.Name) and expr.id in wildcard_names:
        return True
    if isinstance(expr, ast.Attribute) and expr.attr in wildcard_names:
        return True
    return False


# ---------------------------------------------------------------------------
# program discovery and model construction
# ---------------------------------------------------------------------------

def _comm_params(fn: ast.AST) -> Set[str]:
    """Communicator-like parameter names of a function definition."""
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    return {n for n in names if n == "comm" or n.endswith("_comm")}


def iter_program_defs(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    """All function definitions (at any nesting) that take a
    communicator parameter -- the linter's unit of analysis."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _comm_params(node):
                yield node


def _comm_call(node: ast.expr, comm_names: Set[str]) -> Optional[Tuple[str, str]]:
    """``(comm_name, method)`` when the expression is a communication
    call on a known communicator (including the chained
    ``comm.group(...).bcast(...)`` form), else None."""
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
        return None
    method = node.func.attr
    if method not in COMM_COROUTINES:
        return None
    owner = node.func.value
    if isinstance(owner, ast.Name) and owner.id in comm_names:
        return owner.id, method
    if (
        isinstance(owner, ast.Call)
        and isinstance(owner.func, ast.Attribute)
        and owner.func.attr == "group"
        and isinstance(owner.func.value, ast.Name)
        and owner.func.value.id in comm_names
    ):
        return owner.func.value.id, method
    return None


def _map_args(method: str, call: ast.Call) -> Dict[str, ast.expr]:
    mapped: Dict[str, ast.expr] = {}
    signature = SIGNATURES.get(method, ())
    for position, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if position < len(signature):
            mapped[signature[position]] = arg
    for keyword in call.keywords:
        if keyword.arg is not None:
            mapped[keyword.arg] = keyword.value
    return mapped


def _target_names(target: ast.expr) -> Tuple[str, ...]:
    if isinstance(target, ast.Name):
        return (target.id,)
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            if isinstance(element, ast.Starred):
                element = element.value
            if isinstance(element, ast.Name):
                names.append(element.id)
        return tuple(names)
    return ()


class _ModelBuilder:
    """Drives the block-structured walk that fills a ProgramModel."""

    def __init__(self, fn: ast.FunctionDef, filename: str):
        self.fn = fn
        self.model = ProgramModel(
            name=fn.name,
            filename=filename,
            line=fn.lineno,
            comm_names=_comm_params(fn),
        )
        self._block_counter = 0
        self._yielded_calls: Set[int] = set()

    # -- prepasses ----------------------------------------------------------

    def _collect_comm_aliases(self) -> None:
        """Fixpoint: names assigned from ``<comm>.group(...)`` are
        communicators too."""
        changed = True
        while changed:
            changed = False
            for node in ast.walk(self.fn):
                if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                    continue
                value = node.value
                if isinstance(value, ast.YieldFrom):
                    value = value.value
                if (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr == "group"
                    and isinstance(value.func.value, ast.Name)
                    and value.func.value.id in self.model.comm_names
                ):
                    for name in _target_names(node.targets[0]):
                        if name not in self.model.comm_names:
                            self.model.comm_names.add(name)
                            changed = True

    def _collect_taint(self) -> None:
        """Fixpoint: names whose defining expression mentions
        ``comm.rank`` (or an already-tainted name) are rank-derived."""
        model = self.model
        changed = True
        while changed:
            changed = False
            for node in ast.walk(self.fn):
                targets: List[ast.expr] = []
                value: Optional[ast.AST] = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AugAssign):
                    targets, value = [node.target], node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                if value is None:
                    continue
                if _mentions_rank(value, model.comm_names) or (
                    _names_in(value) & model.tainted
                ):
                    for target in targets:
                        for name in _target_names(target):
                            if name not in model.tainted:
                                model.tainted.add(name)
                                changed = True

    def _collect_yielded(self) -> None:
        for node in ast.walk(self.fn):
            if isinstance(node, ast.YieldFrom):
                self._yielded_calls.add(id(node.value))

    def _collect_returns(self) -> None:
        for node in ast.walk(self.fn):
            if isinstance(node, ast.Return) and node.value is not None:
                self.model.returned_names |= _names_in(node.value)

    # -- the structured walk ------------------------------------------------

    def build(self) -> ProgramModel:
        self._collect_comm_aliases()
        self._collect_taint()
        self._collect_yielded()
        self._collect_returns()
        self._walk_block(self.fn.body, rank_depth=0)
        return self.model

    def _next_block_id(self) -> int:
        self._block_counter += 1
        return self._block_counter

    def _is_rank_test(self, test: ast.expr) -> bool:
        return _mentions_rank(test, self.model.comm_names)

    def _walk_block(self, stmts: List[ast.stmt], rank_depth: int) -> None:
        block_id = self._next_block_id()
        for index, stmt in enumerate(stmts):
            self._walk_stmt(stmt, rank_depth, block_id, index)

    def _walk_stmt(
        self, stmt: ast.stmt, rank_depth: int, block_id: int, index: int
    ) -> None:
        if isinstance(stmt, ast.If):
            depth = rank_depth + (1 if self._is_rank_test(stmt.test) else 0)
            self._scan_expr(stmt.test, rank_depth, block_id, index)
            self._walk_block(stmt.body, depth)
            if stmt.orelse:
                self._walk_block(stmt.orelse, depth)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.iter, rank_depth, block_id, index)
            self._walk_block(stmt.body, rank_depth)
            if stmt.orelse:
                self._walk_block(stmt.orelse, rank_depth)
        elif isinstance(stmt, ast.While):
            self._scan_expr(stmt.test, rank_depth, block_id, index)
            self._walk_block(stmt.body, rank_depth)
            if stmt.orelse:
                self._walk_block(stmt.orelse, rank_depth)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_expr(item.context_expr, rank_depth, block_id, index)
            self._walk_block(stmt.body, rank_depth)
        elif isinstance(stmt, ast.Try):
            self._walk_block(stmt.body, rank_depth)
            for handler in stmt.handlers:
                self._walk_block(handler.body, rank_depth)
            if stmt.orelse:
                self._walk_block(stmt.orelse, rank_depth)
            if stmt.finalbody:
                self._walk_block(stmt.finalbody, rank_depth)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def with its own communicator parameter is a rank
            # program in its own right and is analysed separately; other
            # nested defs (closures over ``comm``) are folded into this
            # program with a fresh rank-conditional context.
            if not _comm_params(stmt):
                self._walk_block(stmt.body, 0)
        else:
            self._scan_simple_stmt(stmt, rank_depth, block_id, index)

    def _scan_simple_stmt(
        self, stmt: ast.stmt, rank_depth: int, block_id: int, index: int
    ) -> None:
        targets: Tuple[str, ...] = ()
        appended_to: Optional[str] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            targets = _target_names(stmt.targets[0])
        elif isinstance(stmt, ast.AnnAssign):
            targets = _target_names(stmt.target)
        elif isinstance(stmt, ast.Expr):
            call = stmt.value
            if (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr in ("append", "add", "insert")
                and isinstance(call.func.value, ast.Name)
            ):
                appended_to = call.func.value.id
                # Also register name-level flows: lst.append(h).
                for arg in call.args:
                    for name in _names_in(arg):
                        self.model.flows.setdefault(name, set()).add(appended_to)
        self._scan_expr(
            stmt, rank_depth, block_id, index, targets=targets, appended_to=appended_to
        )

    def _scan_expr(
        self,
        node: ast.AST,
        rank_depth: int,
        block_id: int,
        index: int,
        targets: Tuple[str, ...] = (),
        appended_to: Optional[str] = None,
    ) -> None:
        """Record every communication call found inside ``node``
        (skipping nested function bodies, which are walked as blocks)."""
        for sub in ast.walk(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if not isinstance(sub, ast.Call):
                continue
            found = _comm_call(sub, self.model.comm_names)
            if found is None:
                continue
            comm_name, method = found
            self.model.calls.append(
                CommCall(
                    method=method,
                    line=sub.lineno,
                    col=sub.col_offset,
                    comm_name=comm_name,
                    args=_map_args(method, sub),
                    yielded=id(sub) in self._yielded_calls,
                    rank_cond_depth=rank_depth,
                    block_id=block_id,
                    block_index=index,
                    targets=targets,
                    appended_to=appended_to,
                )
            )


def build_models(tree: ast.AST, filename: str) -> List[ProgramModel]:
    """One :class:`ProgramModel` per rank program found in ``tree``."""
    return [_ModelBuilder(fn, filename).build() for fn in iter_program_defs(tree)]
