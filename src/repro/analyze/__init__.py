"""Static communication-correctness analysis for rank programs.

The ASTA software-tools thrust the paper describes funded exactly this
class of tooling: correctness checkers that let application teams trust
message-passing codes *before* burning machine time.  This package is
that tool for the repo's simulator: an ``ast``-based linter that walks
rank-program source and reports typed findings for ten rule classes --

====  ========================  ===========================================
code  name                      catches
====  ========================  ===========================================
W001  dropped-coroutine         ``comm.send(...)`` without ``yield from``
W002  leaked-handle             isend/irecv handle never waited on
W003  divergent-collective      collective under a ``comm.rank`` branch
W004  symmetric-blocking-send   unordered symmetric exchange (rendezvous
                                deadlock above the eager threshold)
W005  tag-mismatch              constant send tag no recv will match
W006  wildcard-race             ``recv(ANY_SOURCE)`` racing a tagged recv
W007  unmatched-send            cross-rank matching: a send no receive
                                accepts, or a receive no send satisfies
W008  collective-divergence     ranks provably issue different
                                world-collective sequences
W009  proved-deadlock           symbolic rendezvous replay proves a
                                wait-for cycle (no dynamic run needed)
W010  mirror-pairing            neighbor-exchange receive offsets are not
                                the negated send offsets
====  ========================  ===========================================

W001-W006 are per-program AST rules.  W007-W010 are *symbolic*: the
abstract interpreter in :mod:`repro.analyze.symbolic` partially
evaluates each program over a symbolic rank, and the matchers in
:mod:`repro.analyze.schedule` instantiate the resulting parameterized
schedule for every rank of an ``n_ranks``-rank world and cross-check
the ranks against each other.  They run only when the symbolic pass is
requested (``symbolic=True`` below, or ``repro lint --symbolic``).

Programmatic use::

    from repro.analyze import analyze_program

    findings = analyze_program(my_rank_program)   # or a source string
    findings = analyze_program(my_rank_program, symbolic=True, n_ranks=8)
    for f in findings:
        print(f.render())

Command line: ``python -m repro lint <path>...`` (exit 1 on findings).
Suppress a finding with ``# repro: disable=W004`` on the flagged line
(multiple codes separate with commas: ``# repro: disable=W004,W009``).
For hazards the static pass cannot prove, :func:`confirm_deadlock` runs
the program under forced rendezvous and returns the resulting
:class:`~repro.util.errors.DeadlockError` -- whose wait-for graph names
the deadlocked cycle -- or ``None``.
"""

from __future__ import annotations

import ast
import inspect
import os
import textwrap
from typing import Callable, Iterable, List, Optional, Union

from repro.analyze.findings import SEVERITIES, Finding, sort_findings
from repro.analyze.registry import (
    CHECKS,
    RULES,
    SYMBOLIC_CHECKS,
    Rule,
    filter_suppressed,
    resolve_select,
    suppressed_lines,
    validate_codes,
)
from repro.analyze.reporting import format_findings, format_findings_json, summarize
from repro.analyze.visitor import ProgramModel, build_models
from repro.analyze.dynamic import confirm_deadlock
from repro.util.errors import AnalysisError

# Importing the rules module populates the registry.
from repro.analyze import rules as _rules  # noqa: F401

#: World size the symbolic pass instantiates schedules for.
DEFAULT_SYMBOLIC_RANKS = 8

__all__ = [
    "AnalysisError",
    "DEFAULT_SYMBOLIC_RANKS",
    "Finding",
    "ProgramModel",
    "Rule",
    "RULES",
    "SEVERITIES",
    "analyze_file",
    "analyze_paths",
    "analyze_program",
    "analyze_source",
    "confirm_deadlock",
    "format_findings",
    "format_findings_json",
    "sort_findings",
    "summarize",
    "validate_codes",
]


def _dedup(findings: Iterable[Finding], seen: set) -> List[Finding]:
    out = []
    for finding in findings:
        key = (finding.rule, finding.file, finding.line, finding.col,
               finding.message)
        if key not in seen:  # nested defs can be walked twice
            seen.add(key)
            out.append(finding)
    return out


def _run_checks(
    models: Iterable[ProgramModel], select: Optional[object]
) -> List[Finding]:
    codes = resolve_select(select)
    findings: List[Finding] = []
    seen: set = set()
    for model in models:
        for code in RULES:
            if code not in codes or code not in CHECKS:
                continue
            findings.extend(_dedup(CHECKS[code](model), seen))
    return findings


def _run_symbolic_checks(
    tree: ast.Module, filename: str, select: Optional[object], n_ranks: int
) -> List[Finding]:
    from repro.analyze.symbolic import interpret_def
    from repro.analyze.visitor import iter_program_defs

    codes = resolve_select(select)
    findings: List[Finding] = []
    seen: set = set()
    for fn in iter_program_defs(tree):
        program = interpret_def(fn, n_ranks, filename)
        for code in RULES:
            if code not in codes or code not in SYMBOLIC_CHECKS:
                continue
            findings.extend(_dedup(SYMBOLIC_CHECKS[code](program), seen))
    return findings


def analyze_source(
    source: str,
    filename: str = "<source>",
    *,
    select: Optional[object] = None,
    line_offset: int = 0,
    symbolic: bool = False,
    n_ranks: int = DEFAULT_SYMBOLIC_RANKS,
) -> List[Finding]:
    """Analyse a module or function body given as source text.

    ``symbolic=True`` additionally runs the cross-rank rules
    (W007-W010) at world size ``n_ranks``.
    """
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        raise AnalysisError(f"{filename}: cannot parse: {exc}") from exc
    if line_offset:
        ast.increment_lineno(tree, line_offset)
    models = build_models(tree, filename)
    findings = _run_checks(models, select)
    if symbolic:
        findings.extend(_run_symbolic_checks(tree, filename, select, n_ranks))
    findings = filter_suppressed(findings, suppressed_lines(source, line_offset))
    return sort_findings(findings)


def analyze_program(
    fn_or_source: Union[Callable, str],
    *,
    select: Optional[object] = None,
    symbolic: bool = False,
    n_ranks: int = DEFAULT_SYMBOLIC_RANKS,
) -> List[Finding]:
    """Analyse one rank program.

    Accepts either a function object (its source is retrieved with
    :mod:`inspect`; reported lines match the defining file) or a source
    string containing one or more program definitions.
    """
    if isinstance(fn_or_source, str):
        return analyze_source(
            fn_or_source, select=select, symbolic=symbolic, n_ranks=n_ranks
        )
    if not callable(fn_or_source):
        raise AnalysisError(
            f"analyze_program expects a function or source string, "
            f"got {type(fn_or_source).__name__}"
        )
    try:
        source = inspect.getsource(fn_or_source)
        filename = inspect.getsourcefile(fn_or_source) or "<source>"
        _, first_line = inspect.getsourcelines(fn_or_source)
    except (OSError, TypeError) as exc:
        raise AnalysisError(
            f"cannot retrieve source for {fn_or_source!r}: {exc}"
        ) from exc
    return analyze_source(
        textwrap.dedent(source),
        filename=filename,
        select=select,
        line_offset=first_line - 1,
        symbolic=symbolic,
        n_ranks=n_ranks,
    )


def analyze_file(
    path: str,
    *,
    select: Optional[object] = None,
    symbolic: bool = False,
    n_ranks: int = DEFAULT_SYMBOLIC_RANKS,
) -> List[Finding]:
    """Analyse one Python file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        raise AnalysisError(f"cannot read {path}: {exc}") from exc
    return analyze_source(
        source, filename=path, select=select, symbolic=symbolic, n_ranks=n_ranks
    )


def analyze_paths(
    paths: Iterable[str],
    *,
    select: Optional[object] = None,
    symbolic: bool = False,
    n_ranks: int = DEFAULT_SYMBOLIC_RANKS,
) -> List[Finding]:
    """Analyse files and directory trees (``.py`` files, recursively)."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        files.append(os.path.join(dirpath, name))
        elif os.path.isfile(path):
            files.append(path)
        else:
            raise AnalysisError(f"no such file or directory: {path}")
    findings: List[Finding] = []
    for path in files:
        findings.extend(
            analyze_file(path, select=select, symbolic=symbolic, n_ranks=n_ranks)
        )
    return sort_findings(findings)
