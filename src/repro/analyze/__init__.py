"""Static communication-correctness analysis for rank programs.

The ASTA software-tools thrust the paper describes funded exactly this
class of tooling: correctness checkers that let application teams trust
message-passing codes *before* burning machine time.  This package is
that tool for the repo's simulator: an ``ast``-based linter that walks
rank-program source and reports typed findings for six rule classes --

====  ========================  ===========================================
code  name                      catches
====  ========================  ===========================================
W001  dropped-coroutine         ``comm.send(...)`` without ``yield from``
W002  leaked-handle             isend/irecv handle never waited on
W003  divergent-collective      collective under a ``comm.rank`` branch
W004  symmetric-blocking-send   unordered symmetric exchange (rendezvous
                                deadlock above the eager threshold)
W005  tag-mismatch              constant send tag no recv will match
W006  wildcard-race             ``recv(ANY_SOURCE)`` racing a tagged recv
====  ========================  ===========================================

Programmatic use::

    from repro.analyze import analyze_program

    findings = analyze_program(my_rank_program)   # or a source string
    for f in findings:
        print(f.render())

Command line: ``python -m repro lint <path>...`` (exit 1 on findings).
Suppress a finding with ``# repro: disable=W004`` on the flagged line.
For hazards the static pass cannot prove, :func:`confirm_deadlock` runs
the program under forced rendezvous and returns the resulting
:class:`~repro.util.errors.DeadlockError` -- whose wait-for graph names
the deadlocked cycle -- or ``None``.
"""

from __future__ import annotations

import ast
import inspect
import os
import textwrap
from typing import Callable, Iterable, List, Optional, Union

from repro.analyze.findings import SEVERITIES, Finding, sort_findings
from repro.analyze.registry import (
    CHECKS,
    RULES,
    Rule,
    filter_suppressed,
    resolve_select,
    suppressed_lines,
)
from repro.analyze.reporting import format_findings, summarize
from repro.analyze.visitor import ProgramModel, build_models
from repro.analyze.dynamic import confirm_deadlock
from repro.util.errors import AnalysisError

# Importing the rules module populates the registry.
from repro.analyze import rules as _rules  # noqa: F401

__all__ = [
    "AnalysisError",
    "Finding",
    "ProgramModel",
    "Rule",
    "RULES",
    "SEVERITIES",
    "analyze_file",
    "analyze_paths",
    "analyze_program",
    "analyze_source",
    "confirm_deadlock",
    "format_findings",
    "sort_findings",
    "summarize",
]


def _run_checks(
    models: Iterable[ProgramModel], select: Optional[object]
) -> List[Finding]:
    codes = resolve_select(select)
    findings: List[Finding] = []
    seen = set()
    for model in models:
        for code in RULES:
            if code not in codes:
                continue
            for finding in CHECKS[code](model):
                key = (finding.rule, finding.file, finding.line, finding.message)
                if key not in seen:  # nested defs can be walked twice
                    seen.add(key)
                    findings.append(finding)
    return findings


def analyze_source(
    source: str,
    filename: str = "<source>",
    *,
    select: Optional[object] = None,
    line_offset: int = 0,
) -> List[Finding]:
    """Analyse a module or function body given as source text."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        raise AnalysisError(f"{filename}: cannot parse: {exc}") from exc
    if line_offset:
        ast.increment_lineno(tree, line_offset)
    models = build_models(tree, filename)
    findings = _run_checks(models, select)
    findings = filter_suppressed(findings, suppressed_lines(source, line_offset))
    return sort_findings(findings)


def analyze_program(
    fn_or_source: Union[Callable, str],
    *,
    select: Optional[object] = None,
) -> List[Finding]:
    """Analyse one rank program.

    Accepts either a function object (its source is retrieved with
    :mod:`inspect`; reported lines match the defining file) or a source
    string containing one or more program definitions.
    """
    if isinstance(fn_or_source, str):
        return analyze_source(fn_or_source, select=select)
    if not callable(fn_or_source):
        raise AnalysisError(
            f"analyze_program expects a function or source string, "
            f"got {type(fn_or_source).__name__}"
        )
    try:
        source = inspect.getsource(fn_or_source)
        filename = inspect.getsourcefile(fn_or_source) or "<source>"
        _, first_line = inspect.getsourcelines(fn_or_source)
    except (OSError, TypeError) as exc:
        raise AnalysisError(
            f"cannot retrieve source for {fn_or_source!r}: {exc}"
        ) from exc
    return analyze_source(
        textwrap.dedent(source),
        filename=filename,
        select=select,
        line_offset=first_line - 1,
    )


def analyze_file(path: str, *, select: Optional[object] = None) -> List[Finding]:
    """Analyse one Python file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        raise AnalysisError(f"cannot read {path}: {exc}") from exc
    return analyze_source(source, filename=path, select=select)


def analyze_paths(
    paths: Iterable[str], *, select: Optional[object] = None
) -> List[Finding]:
    """Analyse files and directory trees (``.py`` files, recursively)."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        files.append(os.path.join(dirpath, name))
        elif os.path.isfile(path):
            files.append(path)
        else:
            raise AnalysisError(f"no such file or directory: {path}")
    findings: List[Finding] = []
    for path in files:
        findings.extend(analyze_file(path, select=select))
    return sort_findings(findings)
