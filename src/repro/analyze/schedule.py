"""Parameterized communication schedules and cross-rank matchers.

The symbolic interpreter (:mod:`repro.analyze.symbolic`) partially
evaluates a rank program over a symbolic rank ``r`` and emits a
*schedule tree*: ordered communication operations whose peers, tags and
sizes are either concrete values or symbolic expressions evaluable at a
given rank.  This module owns

* the schedule node types (:class:`SendOp` .. :class:`Loop`);
* :func:`instantiate` -- evaluate the tree at one concrete rank,
  yielding a flat list of concrete operations (raises
  :class:`NotConcrete` when some peer/count cannot be resolved, which
  the matchers treat as "skip this program", never as a finding);
* the cross-rank matchers behind rules W007-W010:

  - :func:`match_point_to_point` (W007): instantiate every rank and
    pair each send with the receive that accepts it -- leftover sends
    and unsatisfiable receives are both reported;
  - :func:`collective_divergence` (W008): compare the per-rank
    world-communicator collective sequences structurally, catching
    rank-dependent trip counts and algorithm divergence that the
    per-rank W003 branch test cannot see;
  - :func:`prove_deadlock` (W009): run the instantiated schedules
    through an abstract round-robin executor under forced rendezvous
    and report wait-for cycles that contain a blocking send -- the
    static analogue of :func:`repro.analyze.dynamic.confirm_deadlock`;
  - :func:`mirror_pairing` (W010): for straight-line neighbor
    exchanges whose peers are all ``rank + const`` offsets, check the
    receive-offset multiset is the negation of the send-offset
    multiset (the global matching condition on a line or torus).

Symbolic values are duck-typed: anything with an ``.at(rank)`` method
(:class:`~repro.analyze.symbolic.RankExpr`,
:class:`~repro.analyze.symbolic.RankBool`) evaluates per rank; plain
ints/strings pass through; everything else is not concrete.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.util.errors import AnalysisError


class NotConcrete(AnalysisError):
    """A schedule field could not be evaluated to a concrete value at
    instantiation time (opaque loop bound, unknown peer, ...)."""


#: Instantiation safety valve: a single rank's flat schedule is capped
#: at this many operations (symbolic loop bounds can be adversarial).
MAX_OPS_PER_RANK = 4096


# ---------------------------------------------------------------------------
# schedule nodes
# ---------------------------------------------------------------------------

@dataclass
class SendOp:
    """A blocking or nonblocking point-to-point send."""

    dest: Any
    tag: Any
    line: int
    col: int = 0
    blocking: bool = True
    #: Payload proved to be ``None`` (always eager, never blocks).
    payload_none: bool = False


@dataclass
class RecvOp:
    """A blocking or nonblocking point-to-point receive."""

    source: Any
    tag: Any
    line: int
    col: int = 0
    blocking: bool = True


@dataclass
class WaitOp:
    """wait/waitall/waitany -- a completion point for nonblocking ops."""

    line: int
    col: int = 0


@dataclass
class CollOp:
    """One collective call."""

    kind: str
    algorithm: Optional[str]
    root: Any
    line: int
    col: int = 0
    #: ``True`` for calls on the world communicator, ``False`` for
    #: ``comm.group(...)`` sub-communicators (symbolic membership).
    world: bool = True
    #: Rank-independent payload (shape/size proved uniform across ranks).
    uniform_payload: bool = False


@dataclass
class ExchangeOp:
    """One declared stencil phase (``comm.exchange``)."""

    spec: Any
    line: int
    col: int = 0
    #: Every payload's shape proved rank-independent.
    uniform: bool = False


@dataclass
class Branch:
    """A conditional whose guard is not statically dead.

    ``test`` evaluates per rank (``.at(r)``) when the guard is a
    decidable function of the rank (parity splits and friends); it is
    ``None`` for opaque guards, with ``uniform`` recording whether the
    opaque guard is at least rank-independent (all ranks agree).
    """

    test: Any
    body: List[Any]
    orelse: List[Any]
    line: int
    uniform: bool = False


@dataclass
class Loop:
    """A loop whose trip count is not statically unrolled.

    ``count`` is an int or per-rank evaluable; ``None`` means opaque,
    with ``uniform`` recording rank-independence of the bound.
    """

    count: Any
    body: List[Any]
    line: int
    uniform: bool = False


@dataclass
class SymbolicProgram:
    """The symbolic interpreter's result for one rank program."""

    name: str
    filename: str
    line: int
    n_ranks: int
    ops: List[Any] = field(default_factory=list)
    #: Interpretation gave up (exception text); matchers fail open.
    failure: Optional[str] = None
    #: Point-to-point / wait ops appear somewhere in the schedule.
    has_p2p: bool = False
    #: Some comm op sits under an opaque or rank-dependent-undecidable
    #: guard (certification must refuse; matchers skip).
    has_guarded_ops: bool = False
    #: Some comm op sits inside an opaque-count loop.
    has_unknown_loop: bool = False


# ---------------------------------------------------------------------------
# instantiation
# ---------------------------------------------------------------------------

def value_at(value: Any, rank: int) -> Any:
    """Evaluate a schedule field at a concrete rank."""
    at = getattr(value, "at", None)
    if at is not None:
        return at(rank)
    if value is None or isinstance(value, (int, str, float, tuple)):
        return value
    raise NotConcrete(f"cannot evaluate {value!r} at rank {rank}")


def _int_at(value: Any, rank: int, what: str) -> int:
    out = value_at(value, rank)
    if isinstance(out, bool) or not isinstance(out, int):
        raise NotConcrete(f"{what} is not a concrete int: {out!r}")
    return out


@dataclass
class CSend:
    dest: int
    tag: int
    line: int
    blocking: bool
    eager: bool


@dataclass
class CRecv:
    source: int   # -1 = wildcard
    tag: int      # -1 = wildcard
    line: int
    blocking: bool


@dataclass
class CColl:
    kind: str
    algorithm: Optional[str]
    line: int


@dataclass
class CExch:
    spec: Any
    line: int


def instantiate(program: SymbolicProgram, rank: int) -> List[Any]:
    """Flatten the schedule tree at one concrete rank.

    Raises :class:`NotConcrete` when an opaque guard/bound/peer blocks
    full resolution; callers skip the program rather than report.
    """
    out: List[Any] = []

    def emit(op: Any) -> None:
        if len(out) >= MAX_OPS_PER_RANK:
            raise NotConcrete(
                f"schedule exceeds {MAX_OPS_PER_RANK} ops at rank {rank}"
            )
        out.append(op)

    def walk(ops: List[Any]) -> None:
        for op in ops:
            if isinstance(op, SendOp):
                emit(
                    CSend(
                        dest=_int_at(op.dest, rank, "send dest"),
                        tag=_int_at(op.tag, rank, "send tag"),
                        line=op.line,
                        blocking=op.blocking,
                        eager=op.payload_none,
                    )
                )
            elif isinstance(op, RecvOp):
                emit(
                    CRecv(
                        source=_int_at(op.source, rank, "recv source"),
                        tag=_int_at(op.tag, rank, "recv tag"),
                        line=op.line,
                        blocking=op.blocking,
                    )
                )
            elif isinstance(op, WaitOp):
                pass  # completion is a no-op in the abstract executor
            elif isinstance(op, CollOp):
                if not op.world:
                    raise NotConcrete("group collective membership is symbolic")
                emit(CColl(kind=op.kind, algorithm=op.algorithm, line=op.line))
            elif isinstance(op, ExchangeOp):
                emit(CExch(spec=op.spec, line=op.line))
            elif isinstance(op, Branch):
                if op.test is None:
                    if _has_comm_ops(op.body) or _has_comm_ops(op.orelse):
                        raise NotConcrete("comm ops under an opaque guard")
                    continue
                taken = value_at(op.test, rank)
                walk(op.body if taken else op.orelse)
            elif isinstance(op, Loop):
                if op.count is None:
                    if _has_comm_ops(op.body):
                        raise NotConcrete("comm ops under an opaque loop bound")
                    continue
                count = _int_at(op.count, rank, "loop count")
                for _ in range(max(0, count)):
                    walk(op.body)

    walk(program.ops)
    return out


def _has_comm_ops(ops: List[Any]) -> bool:
    for op in ops:
        if isinstance(op, (SendOp, RecvOp, CollOp, ExchangeOp)):
            return True
        if isinstance(op, Branch):
            if _has_comm_ops(op.body) or _has_comm_ops(op.orelse):
                return True
        elif isinstance(op, Loop):
            if _has_comm_ops(op.body):
                return True
    return False


def _instantiate_all(program: SymbolicProgram) -> Optional[List[List[Any]]]:
    """Per-rank flat schedules, or None when any rank is not concrete.

    ``has_guarded_ops`` also skips: a swallowed return/raise in a
    nested suite means later ops were attributed to ranks that had
    already exited, so per-rank instantiation would be fiction.
    """
    if program.failure is not None or program.has_guarded_ops:
        return None
    try:
        return [instantiate(program, r) for r in range(program.n_ranks)]
    except NotConcrete:
        return None


# ---------------------------------------------------------------------------
# W007 -- cross-rank send/recv matching
# ---------------------------------------------------------------------------

def match_point_to_point(program: SymbolicProgram) -> List[Tuple[int, str]]:
    """``(line, message)`` pairs for sends no receive accepts and
    receives no send satisfies, across the instantiated ranks."""
    schedules = _instantiate_all(program)
    if schedules is None:
        return []
    n = program.n_ranks

    # Incoming traffic per destination: (source, tag) -> [send lines].
    inbound: List[Dict[Tuple[int, int], List[int]]] = [dict() for _ in range(n)]
    bad_peer: List[Tuple[int, str]] = []
    for src, ops in enumerate(schedules):
        for op in ops:
            if isinstance(op, CSend):
                if not 0 <= op.dest < n:
                    bad_peer.append(
                        (op.line,
                         f"rank {src} sends to rank {op.dest}, outside the "
                         f"{n}-rank world")
                    )
                    continue
                inbound[op.dest].setdefault((src, op.tag), []).append(op.line)
    if bad_peer:
        return bad_peer

    problems: List[Tuple[int, str]] = []
    for dst, ops in enumerate(schedules):
        pool = inbound[dst]
        recvs = [op for op in ops if isinstance(op, CRecv)]
        # Specific receives first; wildcards absorb what remains.
        recvs.sort(key=lambda op: ((op.source < 0) + (op.tag < 0), op.line))
        for op in recvs:
            keys = [
                key
                for key, lines in pool.items()
                if lines
                and (op.source < 0 or key[0] == op.source)
                and (op.tag < 0 or key[1] == op.tag)
            ]
            if not keys:
                spec_src = "ANY" if op.source < 0 else str(op.source)
                spec_tag = "ANY" if op.tag < 0 else str(op.tag)
                problems.append(
                    (op.line,
                     f"rank {dst}'s recv(source={spec_src}, tag={spec_tag}) is "
                     "never satisfied: no rank sends a matching message")
                )
                continue
            key = min(keys)
            pool[key].pop(0)
        for (src, tag), lines in sorted(pool.items()):
            for line in lines:
                problems.append(
                    (line,
                     f"rank {src}'s send to rank {dst} (tag={tag}) is never "
                     "received: no receive on the destination matches it")
                )
    return problems


# ---------------------------------------------------------------------------
# W008 -- collective sequence divergence
# ---------------------------------------------------------------------------

def _coll_token(op: CollOp, rank: int) -> Tuple[Any, ...]:
    try:
        root = value_at(op.root, rank)
    except NotConcrete:
        root = "?"
    try:
        algorithm = value_at(op.algorithm, rank)
    except NotConcrete:
        algorithm = "?"
    return ("coll", op.kind, algorithm, root)


def _coll_seq(ops: List[Any], rank: int) -> Tuple[Any, ...]:
    """The rank's world-collective sequence as a nested token tuple.

    Uniform (rank-independent) opaque branches/loops become composite
    tokens, so two ranks compare equal exactly when they are guaranteed
    to issue the same collectives in the same order.
    """
    seq: List[Any] = []
    for op in ops:
        if isinstance(op, CollOp) and op.world:
            seq.append(_coll_token(op, rank))
        elif isinstance(op, ExchangeOp):
            seq.append(("exchange", op.line))
        elif isinstance(op, Branch):
            body = _coll_seq(op.body, rank)
            orelse = _coll_seq(op.orelse, rank)
            if op.test is not None:
                seq.extend(body if value_at(op.test, rank) else orelse)
            elif op.uniform:
                if body or orelse:
                    seq.append(("branch", body, orelse))
            else:
                # Rank-dependent, undecidable guard: mark divergence
                # only when the arms actually disagree.
                if body != orelse:
                    seq.append(("divergent", rank, body, orelse))
                else:
                    seq.extend(body)
        elif isinstance(op, Loop):
            body = _coll_seq(op.body, rank)
            if not body:
                continue
            if op.count is None:
                token = ("loop", body)
                seq.append(token if op.uniform else ("divergent-loop", rank, body))
            else:
                try:
                    count = int(value_at(op.count, rank))
                except (NotConcrete, TypeError, ValueError):
                    seq.append(("divergent-loop", rank, body))
                    continue
                for _ in range(max(0, min(count, MAX_OPS_PER_RANK))):
                    seq.extend(body)
    return tuple(seq)


def collective_divergence(program: SymbolicProgram) -> List[Tuple[int, str]]:
    """``(line, message)`` pairs when ranks provably disagree on the
    world-communicator collective sequence."""
    if program.failure is not None:
        return []
    sequences = []
    try:
        for r in range(program.n_ranks):
            sequences.append(_coll_seq(program.ops, r))
    except NotConcrete:
        return []

    def first_coll_line(ops: List[Any]) -> int:
        for op in ops:
            if isinstance(op, (CollOp, ExchangeOp)):
                return op.line
            if isinstance(op, Branch):
                line = first_coll_line(op.body) or first_coll_line(op.orelse)
                if line:
                    return line
            elif isinstance(op, Loop):
                line = first_coll_line(op.body)
                if line:
                    return line
        return 0

    line = first_coll_line(program.ops) or program.line
    for seq in sequences:
        for token in seq:
            if token and isinstance(token, tuple) and str(token[0]).startswith(
                "divergent"
            ):
                return [
                    (line,
                     "collective sequence depends on an undecidable "
                     "rank-conditional: ranks taking different arms issue "
                     "different collective calls, so some rank's collective "
                     "never completes")
                ]
    baseline = sequences[0]
    for r in range(1, program.n_ranks):
        if sequences[r] != baseline:
            return [
                (line,
                 f"ranks 0 and {r} issue different world-collective "
                 f"sequences ({_describe_seq(baseline)} vs "
                 f"{_describe_seq(sequences[r])}): every rank of the "
                 "communicator must make the same collective calls in the "
                 "same order")
            ]
    return []


def _describe_seq(seq: Tuple[Any, ...], limit: int = 4) -> str:
    names = []
    for token in seq[:limit]:
        if isinstance(token, tuple) and len(token) >= 2 and token[0] == "coll":
            names.append(str(token[1]))
        elif isinstance(token, tuple):
            names.append(str(token[0]))
        else:
            names.append(str(token))
    text = ", ".join(names) if names else "no collectives"
    if len(seq) > limit:
        text += ", ..."
    return f"[{text}] ({len(seq)} calls)"


# ---------------------------------------------------------------------------
# W009 -- abstract rendezvous executor
# ---------------------------------------------------------------------------

def prove_deadlock(program: SymbolicProgram) -> List[Tuple[int, str]]:
    """Run the instantiated schedules under forced rendezvous.

    Nonblocking operations never block (waits are no-ops), so the model
    only *under*-approximates blocking: any cycle it reports is a real
    wait-for cycle under rendezvous semantics.  Returns ``(line,
    message)`` for cycles containing at least one blocking send.
    """
    schedules = _instantiate_all(program)
    if schedules is None:
        return []
    n = program.n_ranks

    index = [0] * n                      # next op per rank
    mailbox: Counter = Counter()         # delivered (src, dst, tag) -> count
    posted: Counter = Counter()          # posted irecvs (dst, src, tag)
    coll_done = [0] * n                  # completed collectives per rank

    def current(r: int) -> Any:
        ops = schedules[r]
        return ops[index[r]] if index[r] < len(ops) else None

    def posted_match(dst: int, src: int, tag: int) -> Optional[Tuple[int, int, int]]:
        for (pdst, psrc, ptag), count in posted.items():
            if count <= 0 or pdst != dst:
                continue
            if (psrc < 0 or psrc == src) and (ptag < 0 or ptag == tag):
                return (pdst, psrc, ptag)
        return None

    def mailbox_match(dst: int, source: int, tag: int) -> Optional[Tuple[int, int, int]]:
        for (msrc, mdst, mtag), count in sorted(mailbox.items()):
            if count <= 0 or mdst != dst:
                continue
            if (source < 0 or msrc == source) and (tag < 0 or mtag == tag):
                return (msrc, mdst, mtag)
        return None

    def step(r: int) -> bool:
        op = current(r)
        if op is None:
            return False
        if isinstance(op, CSend):
            if op.eager or not op.blocking:
                # Eager payload / isend: deposit and move on.
                mailbox[(r, op.dest, op.tag)] += 1
                index[r] += 1
                return True
            if not 0 <= op.dest < n:
                return False  # out-of-world peer: stuck, W007's domain
            # Rendezvous blocking send: needs a posted receive -- an
            # irecv, or a peer blocked in a matching blocking recv.
            key = posted_match(op.dest, r, op.tag)
            if key is not None:
                posted[key] -= 1
                index[r] += 1
                return True
            peer = current(op.dest)
            if (
                isinstance(peer, CRecv)
                and peer.blocking
                and (peer.source < 0 or peer.source == r)
                and (peer.tag < 0 or peer.tag == op.tag)
            ):
                index[r] += 1
                index[op.dest] += 1
                return True
            return False
        if isinstance(op, CRecv):
            if not op.blocking:
                posted[(r, op.source, op.tag)] += 1
                index[r] += 1
                return True
            key = mailbox_match(r, op.source, op.tag)
            if key is not None:
                mailbox[key] -= 1
                index[r] += 1
                return True
            return False  # blocking sends headed here complete via step(src)
        if isinstance(op, (CColl, CExch)):
            # A collective is a barrier over the world: complete when
            # every rank sits at its matching collective.
            ready = all(
                isinstance(current(m), (CColl, CExch)) and coll_done[m] == coll_done[r]
                for m in range(n)
            )
            if ready and r == 0:
                for m in range(n):
                    index[m] += 1
                    coll_done[m] += 1
                return True
            return False
        index[r] += 1
        return True

    budget = n * MAX_OPS_PER_RANK + n
    progress = True
    while progress and budget > 0:
        progress = False
        for r in range(n):
            while budget > 0 and step(r):
                progress = True
                budget -= 1

    stuck = [r for r in range(n) if index[r] < len(schedules[r])]
    if not stuck:
        return []

    # Wait-for edges among the stuck ranks.
    edges: Dict[int, List[int]] = {}
    for r in stuck:
        op = current(r)
        if isinstance(op, CSend) and 0 <= op.dest < n:
            edges[r] = [op.dest]
        elif isinstance(op, CRecv) and 0 <= op.source < n:
            edges[r] = [op.source]
        elif isinstance(op, (CColl, CExch)):
            edges[r] = [m for m in range(n) if m != r and m in stuck]

    cycle = _find_cycle(edges)
    if cycle is None:
        return []
    has_send = any(
        isinstance(current(r), CSend) and current(r).blocking for r in cycle
    )
    if not has_send:
        return []
    anchor = min(cycle, key=lambda r: current(r).line)
    names = " -> ".join(str(r) for r in cycle + [cycle[0]])
    return [
        (current(anchor).line,
         f"symbolic replay under rendezvous deadlocks: wait-for cycle "
         f"{names}, entered through the blocking send on line "
         f"{current(anchor).line}.  Above the eager threshold every rank "
         "in the cycle parks in the handshake; pre-post an irecv or order "
         "the exchange by rank parity")
    ]


def _find_cycle(edges: Dict[int, List[int]]) -> Optional[List[int]]:
    """First directed cycle in a small wait-for graph, as a vertex list."""
    for start in sorted(edges):
        path: List[int] = []
        seen: Dict[int, int] = {}
        node = start
        while node in edges and node not in seen:
            seen[node] = len(path)
            path.append(node)
            node = edges[node][0] if edges[node] else -1
        if node in seen:
            return path[seen[node]:]
    return None


# ---------------------------------------------------------------------------
# W010 -- mirror pairing of neighbor exchanges
# ---------------------------------------------------------------------------

def _affine_offset(value: Any, n: int) -> Optional[Tuple[int, Optional[int]]]:
    """``(offset, mod)`` when ``value`` is ``rank + offset`` (optionally
    ``% n``); None otherwise."""
    affine = getattr(value, "affine", None)
    if affine is None:
        return None
    a, b, mod = affine
    if a != 1 or (mod is not None and mod != n):
        return None
    return b, mod


def mirror_pairing(program: SymbolicProgram) -> List[Tuple[int, str]]:
    """``(line, message)`` pairs for straight-line neighbor exchanges
    whose receive offsets are not the negation of the send offsets."""
    if program.failure is not None:
        return []
    n = program.n_ranks
    problems: List[Tuple[int, str]] = []

    def check_run(run: List[Any]) -> None:
        sends = [op for op in run if isinstance(op, SendOp)]
        recvs = [op for op in run if isinstance(op, RecvOp)]
        if not sends or not recvs:
            return
        send_offsets = []
        wrapped = False
        for op in sends:
            parsed = _affine_offset(op.dest, n)
            if parsed is None:
                return
            send_offsets.append(parsed[0])
            wrapped = wrapped or parsed[1] is not None
        recv_offsets = []
        for op in recvs:
            parsed = _affine_offset(op.source, n)
            if parsed is None:
                return
            recv_offsets.append(parsed[0])
            wrapped = wrapped or parsed[1] is not None
        if wrapped:
            expect = Counter((-o) % n for o in send_offsets)
            got = Counter(o % n for o in recv_offsets)
        else:
            expect = Counter(-o for o in send_offsets)
            got = Counter(recv_offsets)
        if expect != got:
            line = min(op.line for op in sends)
            problems.append(
                (line,
                 f"neighbor exchange is not mirror-paired: sends go to "
                 f"rank+{sorted(Counter(send_offsets))} but receives come "
                 f"from rank+{sorted(Counter(recv_offsets))}; a message "
                 "sent to offset o arrives from offset -o, so the receive "
                 "offsets must be the negated send offsets")
            )

    def walk(ops: List[Any]) -> None:
        run: List[Any] = []
        for op in ops:
            if isinstance(op, (SendOp, RecvOp)):
                run.append(op)
                continue
            if isinstance(op, WaitOp):
                continue
            if run:
                check_run(run)
                run = []
            if isinstance(op, Branch):
                walk(op.body)
                walk(op.orelse)
            elif isinstance(op, Loop):
                walk(op.body)
        if run:
            check_run(run)

    walk(program.ops)
    return problems
