"""Typed findings emitted by the communication-correctness linter.

A :class:`Finding` is one diagnosed problem at one source location.
Findings are plain frozen dataclasses so callers (tests, the CLI, CI
scripts) can filter, count, and sort them without parsing text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Union

#: Severity levels, most severe first.  ``error`` marks code that is
#: wrong on every execution (a dropped coroutine, a guaranteed
#: deadlock); ``warning`` marks hazards that need specific runtime
#: conditions (message size, timing) to bite.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One diagnosed communication-correctness problem."""

    #: Rule code, e.g. ``"W001"``.
    rule: str
    #: ``"error"`` or ``"warning"``.
    severity: str
    #: Path of the analysed file (or ``"<source>"`` for string input).
    file: str
    #: 1-based line of the offending call.
    line: int
    #: Human-readable explanation with a suggested fix.
    message: str
    #: 0-based column of the offending call (0 when unknown).
    col: int = 0

    def render(self) -> str:
        """``file:line: CODE severity: message`` (editor-clickable)."""
        return f"{self.file}:{self.line}: {self.rule} {self.severity}: {self.message}"

    def to_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-ready mapping (keys in stable order)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Deterministic report order: by file, line, rule, then column."""
    return sorted(findings, key=lambda f: (f.file, f.line, f.rule, f.col))
