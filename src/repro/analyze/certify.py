"""Static macro-eligibility certificates.

The engine's collective macro path (:mod:`repro.simmpi.macro`) guards
every invocation with a runtime probe: before committing the
closed-form schedule it scans each member for queued eager traffic,
posted receive slots, or parked rendezvous senders
(``engine._run_macro``), because any of those could interleave with the
collective's own messages.  For programs that do no point-to-point
communication at all and whose every collective evaluates in closed
form, the probe can never fire -- a fact the symbolic schedule
(:mod:`repro.analyze.symbolic`) proves once, offline.

:func:`certify_macro` performs that proof and emits a
:class:`MacroCertificate`: a source-hash-bound record that the engine
accepts (``Engine(certificate=...)``) to skip the per-member probe for
the whole run.  Certification requires, over the whole schedule tree:

* no point-to-point operations (send/isend/recv/irecv/sendrecv/wait)
  anywhere -- nothing can ever be queued or parked at a member;
* every collective is macro-eligible: its ``(kind, algorithm)`` pair
  evaluates in closed form (``allreduce(reduce_bcast)`` counts -- it
  composes two closed-form inner collectives);
* every ``comm.exchange`` passes a concrete
  :class:`~repro.simmpi.stencil.StencilSpec`;
* no communication op sits under a rank-dependent or opaque guard, and
  every loop enclosing communication has a rank-independent trip count
  (all ranks provably execute the same op sequence).

The certificate additionally records whether every exchange payload was
proved *uniform* (rank-independent shape), which lets
:mod:`repro.simmpi.stencil` skip its per-member size scan.

Certificates are advisory but verified: :meth:`MacroCertificate.matches`
binds to the SHA-256 of the program's source and the world size, so a
stale certificate (edited program, different rank count) is rejected at
``Engine.run`` time rather than silently trusted.
"""

from __future__ import annotations

import hashlib
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.analyze.schedule import (
    Branch,
    CollOp,
    ExchangeOp,
    Loop,
    RecvOp,
    SendOp,
    SymbolicProgram,
    WaitOp,
)
from repro.util.errors import AnalysisError


class CertificationError(AnalysisError):
    """The program could not be proved macro-pure; the message names
    the first disqualifying construct."""


def _source_sha(source: str) -> str:
    return hashlib.sha256(textwrap.dedent(source).encode("utf-8")).hexdigest()


def program_sha(fn_or_source: Union[Callable, str]) -> str:
    """SHA-256 of a rank program's (dedented) source text."""
    if isinstance(fn_or_source, str):
        return _source_sha(fn_or_source)
    try:
        return _source_sha(inspect.getsource(fn_or_source))
    except (OSError, TypeError) as exc:
        raise AnalysisError(
            f"cannot retrieve source for {fn_or_source!r}: {exc}"
        ) from exc


@dataclass(frozen=True)
class MacroCertificate:
    """Proof record: the named program, run at ``n_ranks`` ranks, never
    needs the macro probe's per-member soundness scan."""

    #: Rank-program function name the proof was computed for.
    program: str
    #: SHA-256 of the program's dedented source at certification time.
    source_sha256: str
    #: World size the schedule was instantiated at.
    n_ranks: int
    #: ``(line, kind, algorithm)`` per certified collective call site.
    collectives: Tuple[Tuple[int, str, Optional[str]], ...] = ()
    #: ``(line, uniform)`` per certified exchange call site.
    exchanges: Tuple[Tuple[int, bool], ...] = ()
    #: Every exchange payload proved rank-independent in shape.
    uniform_exchange: bool = False
    #: Parameter values assumed during interpretation, as sorted
    #: ``(name, repr)`` pairs -- the caller must honour them.
    assume: Tuple[Tuple[str, str], ...] = ()

    def matches(self, fn_or_source: Union[Callable, str], n_ranks: int) -> bool:
        """Whether this certificate covers the given program at the
        given world size (source unchanged since certification)."""
        if n_ranks != self.n_ranks:
            return False
        try:
            return program_sha(fn_or_source) == self.source_sha256
        except AnalysisError:
            return False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "program": self.program,
            "source_sha256": self.source_sha256,
            "n_ranks": self.n_ranks,
            "collectives": [list(c) for c in self.collectives],
            "exchanges": [list(e) for e in self.exchanges],
            "uniform_exchange": self.uniform_exchange,
            "assume": [list(a) for a in self.assume],
        }


def _check_ops(
    ops: List[Any],
    collectives: List[Tuple[int, str, Optional[str]]],
    exchanges: List[Tuple[int, bool]],
) -> None:
    from repro.analyze.symbolic import MACRO_ELIGIBLE

    for op in ops:
        if isinstance(op, (SendOp, RecvOp, WaitOp)):
            raise CertificationError(
                f"line {op.line}: point-to-point operation; members could "
                "hold queued or parked traffic at a collective gather"
            )
        if isinstance(op, CollOp):
            allowed = MACRO_ELIGIBLE.get(op.kind, frozenset())
            if allowed is not None and op.algorithm not in allowed:
                raise CertificationError(
                    f"line {op.line}: {op.kind}"
                    f"(algorithm={op.algorithm!r}) has no closed-form "
                    "macro evaluator; its per-message traffic would reach "
                    "later collectives"
                )
            collectives.append((op.line, op.kind, op.algorithm))
        elif isinstance(op, ExchangeOp):
            if op.spec is None:
                raise CertificationError(
                    f"line {op.line}: exchange spec is not a concrete "
                    "StencilSpec"
                )
            exchanges.append((op.line, op.uniform))
        elif isinstance(op, Branch):
            if op.test is not None or not op.uniform:
                raise CertificationError(
                    f"line {op.line}: communication under a rank-dependent "
                    "or opaque branch; ranks may disagree on the op sequence"
                )
            _check_ops(op.body, collectives, exchanges)
            _check_ops(op.orelse, collectives, exchanges)
        elif isinstance(op, Loop):
            if not op.uniform:
                raise CertificationError(
                    f"line {op.line}: communication inside a loop with a "
                    "rank-dependent trip count"
                )
            _check_ops(op.body, collectives, exchanges)


def certify_program(program: SymbolicProgram, source_sha: str,
                    assume: Optional[Dict[str, Any]] = None) -> MacroCertificate:
    """Build a certificate from an already-interpreted schedule."""
    if program.failure is not None:
        raise CertificationError(
            f"symbolic interpretation failed: {program.failure}"
        )
    if program.has_p2p:
        raise CertificationError(
            "program performs point-to-point communication; members could "
            "hold queued or parked traffic at a collective gather"
        )
    if program.has_guarded_ops:
        raise CertificationError(
            "communication under a rank-dependent or opaque guard; ranks "
            "may disagree on the op sequence"
        )
    collectives: List[Tuple[int, str, Optional[str]]] = []
    exchanges: List[Tuple[int, bool]] = []
    _check_ops(program.ops, collectives, exchanges)
    if not collectives and not exchanges:
        raise CertificationError(
            "program performs no certifiable communication; a certificate "
            "would be vacuous"
        )
    return MacroCertificate(
        program=program.name,
        source_sha256=source_sha,
        n_ranks=program.n_ranks,
        collectives=tuple(collectives),
        exchanges=tuple(exchanges),
        uniform_exchange=bool(exchanges) and all(u for _, u in exchanges),
        assume=tuple(sorted((k, repr(v)) for k, v in (assume or {}).items())),
    )


def certify_macro(
    fn_or_source: Union[Callable, str],
    n_ranks: int,
    *,
    assume: Optional[Dict[str, Any]] = None,
) -> MacroCertificate:
    """Prove a rank program macro-pure at ``n_ranks`` ranks.

    Returns the :class:`MacroCertificate`; raises
    :class:`CertificationError` naming the first disqualifying construct
    otherwise.  ``assume`` pins parameter values the proof may rely on
    (e.g. ``{"overlap": False}`` for SUMMA, which concretizes the
    broadcast algorithm to the closed-form ``"tree"``).
    """
    from repro.analyze.symbolic import interpret_program

    program = interpret_program(fn_or_source, n_ranks, assume=assume)
    return certify_program(program, program_sha(fn_or_source), assume=assume)


# ---------------------------------------------------------------------------
# bundled certificates
# ---------------------------------------------------------------------------

def bundled_certificate(
    name: str, n_ranks: int, *, overlap: bool = False
) -> MacroCertificate:
    """Certificate for a bundled application program (``"ocean"`` or
    ``"summa"``), computed on demand at the requested world size.

    ``overlap`` (SUMMA only) certifies the pipelined variant: the panel
    broadcasts concretize to ``"tree_nb"``, which the macro layer prices
    in closed form in the all-eager regime and bails from otherwise.
    """
    if name == "ocean":
        if overlap:
            raise AnalysisError("'ocean' has no overlap variant to certify")
        from repro.apps.ocean import ocean_program

        return certify_macro(ocean_program, n_ranks)
    if name == "summa":
        from repro.linalg.summa import summa_program

        return certify_macro(summa_program, n_ranks, assume={"overlap": overlap})
    raise AnalysisError(
        f"no bundled certificate for {name!r}; available: ['ocean', 'summa']"
    )
