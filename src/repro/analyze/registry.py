"""Rule registry and ``# repro: disable=...`` suppression handling.

Rules self-register through the :func:`rule` decorator, which records
their metadata (code, name, severity, one-line summary) in
:data:`RULES` and their check function in :data:`CHECKS`.  The linter
driver iterates the registry, so adding a rule is a single decorated
function in :mod:`repro.analyze.rules`.

Suppressions are line-scoped comments on the flagged line::

    yield from comm.send(a, left, tag=0)  # repro: disable=W004
    comm.send(x, 1)                       # repro: disable=all

Multiple codes separate with commas: ``# repro: disable=W001,W004``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Set

from repro.analyze.findings import SEVERITIES, Finding
from repro.util.errors import AnalysisError


@dataclass(frozen=True)
class Rule:
    """Metadata for one registered lint rule."""

    code: str
    name: str
    severity: str
    summary: str
    #: Symbolic rules run over the cross-rank schedule (built by
    #: :mod:`repro.analyze.symbolic`), not the per-program AST model,
    #: and only when the symbolic pass is enabled
    #: (``analyze_source(..., symbolic=True)`` / ``repro lint --symbolic``).
    symbolic: bool = False


#: code -> rule metadata, in registration order.
RULES: Dict[str, Rule] = {}
#: code -> check function ``(model: ProgramModel) -> List[Finding]``.
CHECKS: Dict[str, Callable] = {}
#: code -> symbolic check ``(program: SymbolicProgram) -> List[Finding]``.
SYMBOLIC_CHECKS: Dict[str, Callable] = {}


def rule(
    code: str, name: str, severity: str, summary: str, symbolic: bool = False
) -> Callable:
    """Class decorator-style registrar for rule check functions."""
    if severity not in SEVERITIES:
        raise AnalysisError(
            f"rule {code}: unknown severity {severity!r}; expected one of {SEVERITIES}"
        )

    def decorator(check: Callable) -> Callable:
        if code in RULES:
            raise AnalysisError(f"duplicate rule code {code}")
        RULES[code] = Rule(
            code=code, name=name, severity=severity, summary=summary, symbolic=symbolic
        )
        if symbolic:
            SYMBOLIC_CHECKS[code] = check
        else:
            CHECKS[code] = check
        return check

    return decorator


def validate_codes(codes: Iterable[str]) -> Set[str]:
    """Check every code is registered; returns the set, raises
    :class:`AnalysisError` naming the unknown codes otherwise."""
    requested = {str(c) for c in codes}
    unknown = requested - set(RULES)
    if unknown:
        raise AnalysisError(
            f"unknown rule code(s) {sorted(unknown)}; available: {sorted(RULES)}"
        )
    return requested


def resolve_select(select: object) -> Set[str]:
    """Normalise a rule selection (None, ``"W001,W004"``, or iterable)
    to a set of registered codes; raises on unknown codes."""
    if select is None:
        return set(RULES)
    if isinstance(select, str):
        codes = {c.strip() for c in select.split(",") if c.strip()}
    else:
        codes = {str(c) for c in select}
    return validate_codes(codes)


_DISABLE_RE = re.compile(r"#\s*repro:\s*disable=([A-Za-z0-9_,\s]+)")


def suppressed_lines(source: str, line_offset: int = 0) -> Dict[int, Set[str]]:
    """Map 1-based line numbers (plus ``line_offset``) to the set of
    rule codes disabled on that line (``{"all"}`` disables every rule)."""
    out: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _DISABLE_RE.search(text)
        if match:
            codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
            out[lineno + line_offset] = codes
    return out


def filter_suppressed(
    findings: Iterable[Finding], suppressions: Dict[int, Set[str]]
) -> List[Finding]:
    """Drop findings whose line carries a matching disable comment."""
    kept = []
    for finding in findings:
        codes = suppressions.get(finding.line)
        if codes and ("all" in codes or finding.rule in codes):
            continue
        kept.append(finding)
    return kept
