"""The communication-correctness rules (W001-W010).

W001-W006 are per-program AST rules: each is a function from a
:class:`~repro.analyze.visitor.ProgramModel` to a list of
:class:`~repro.analyze.findings.Finding`, registered through
:func:`~repro.analyze.registry.rule`.  The rules are deliberately tuned
for the repo's rank-program idiom: near-zero false positives on
``src/repro/linalg``, ``src/repro/apps`` and ``examples`` (enforced in
CI), with the deliberately-buggy fixtures under
``tests/analyze/fixtures`` documenting exactly what each rule does and
does not flag.

W007-W010 are *symbolic* rules (``symbolic=True``): they run over the
cross-rank schedule built by :mod:`repro.analyze.symbolic` and
instantiated/matched by :mod:`repro.analyze.schedule`, so they see
whole-program facts -- which rank's send pairs with which rank's
receive -- that no single-rank AST walk can.  They only run when the
symbolic pass is enabled (``repro lint --symbolic``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import ast

from repro.analyze import schedule as _schedule
from repro.analyze.findings import Finding
from repro.analyze.registry import RULES, rule
from repro.analyze.schedule import SymbolicProgram
from repro.analyze.visitor import (
    COLLECTIVES,
    CommCall,
    ProgramModel,
    constant_int,
    is_rank_symmetric,
    is_wildcard,
)


def _finding(
    code: str, model: ProgramModel, line: int, message: str, col: int = 0
) -> Finding:
    return Finding(
        rule=code,
        severity=RULES[code].severity,
        file=model.filename,
        line=line,
        message=f"{message} [in {model.name}()]",
        col=col,
    )


# ---------------------------------------------------------------------------
# W001 -- dropped coroutine
# ---------------------------------------------------------------------------

@rule(
    "W001",
    name="dropped-coroutine",
    severity="error",
    summary="comm coroutine called without 'yield from': the operation never executes",
)
def check_dropped_coroutine(model: ProgramModel) -> List[Finding]:
    findings = []
    for call in model.calls:
        if call.yielded:
            continue
        findings.append(
            _finding(
                "W001",
                model,
                call.line,
                f"{call.comm_name}.{call.method}(...) called without 'yield from': "
                "rank programs are generators, so the bare call builds a coroutine "
                "and silently discards it -- the operation never executes",
                col=call.col,
            )
        )
    return findings


# ---------------------------------------------------------------------------
# W002 -- leaked nonblocking handle
# ---------------------------------------------------------------------------

def _waited_names(model: ProgramModel) -> Set[str]:
    """Names that reach a wait/waitall/waitany argument."""
    waited: Set[str] = set()
    for call in model.calls:
        if call.method in ("wait", "waitall", "waitany"):
            for expr in call.args.values():
                waited |= {n.id for n in ast.walk(expr) if isinstance(n, ast.Name)}
    return waited


@rule(
    "W002",
    name="leaked-handle",
    severity="warning",
    summary="isend/irecv handle never passed to wait/waitall/waitany",
)
def check_leaked_handle(model: ProgramModel) -> List[Finding]:
    waited = _waited_names(model)
    consumed = set(waited) | model.returned_names
    findings = []
    for call in model.calls:
        if call.method not in ("isend", "irecv") or not call.yielded:
            continue
        names = set(call.targets)
        if call.appended_to:
            names.add(call.appended_to)
        # A handle is consumed when it -- or any container it flows
        # into (handles.append(h); waitall(handles)) -- is waited on
        # or returned to the caller.
        reachable = set(names)
        for name in names:
            reachable |= model.flows_into(name)
        if names and reachable & consumed:
            continue
        what = "handle" if names else "unbound handle"
        bound = f" '{', '.join(sorted(names))}'" if names else ""
        findings.append(
            _finding(
                "W002",
                model,
                call.line,
                f"{call.method} {what}{bound} is never passed to "
                "wait/waitall/waitany: the request is leaked, so its "
                "completion (and, for rendezvous isends, the transfer "
                "itself) is never synchronised",
                col=call.col,
            )
        )
    return findings


# ---------------------------------------------------------------------------
# W003 -- rank-dependent collective
# ---------------------------------------------------------------------------

@rule(
    "W003",
    name="divergent-collective",
    severity="error",
    summary="collective called inside a comm.rank-conditional branch",
)
def check_divergent_collective(model: ProgramModel) -> List[Finding]:
    findings = []
    for call in model.calls:
        if call.method not in COLLECTIVES or call.rank_cond_depth == 0:
            continue
        findings.append(
            _finding(
                "W003",
                model,
                call.line,
                f"collective {call.comm_name}.{call.method}(...) inside a "
                "comm.rank-dependent branch: ranks taking the other branch "
                "never join, which deadlocks the collective (every rank of "
                "the communicator must participate)",
                col=call.col,
            )
        )
    return findings


# ---------------------------------------------------------------------------
# W004 -- symmetric blocking-send exchange
# ---------------------------------------------------------------------------

@rule(
    "W004",
    name="symmetric-blocking-send",
    severity="warning",
    summary="unordered symmetric send/recv pair: deadlocks above the eager threshold",
)
def check_symmetric_blocking_send(model: ProgramModel) -> List[Finding]:
    blocks: Dict[int, List[CommCall]] = {}
    for call in model.calls:
        blocks.setdefault(call.block_id, []).append(call)

    findings = []
    for block_calls in blocks.values():
        block_calls.sort(key=lambda c: (c.block_index, c.line))
        irecv_seen = False
        flagged = False
        for position, call in enumerate(block_calls):
            if call.method == "irecv":
                irecv_seen = True
            if flagged or irecv_seen:
                continue
            if call.method != "send" or call.rank_cond_depth > 0:
                # Sends ordered by a rank test (parity exchange) are the
                # textbook-correct pattern.
                continue
            dest = call.args.get("dest")
            if dest is None or not is_rank_symmetric(dest, model):
                continue
            for later in block_calls[position + 1:]:
                source = later.args.get("source")
                if (
                    later.method == "recv"
                    and source is not None
                    and is_rank_symmetric(source, model)
                ):
                    findings.append(
                        _finding(
                            "W004",
                            model,
                            call.line,
                            "every rank blocking-sends to a rank-symmetric peer "
                            f"(line {call.line}) before receiving (line {later.line}): "
                            "above the eager threshold all senders park in the "
                            "rendezvous handshake and no receive is ever posted "
                            "-- the classic Delta deadlock.  Pre-post an irecv "
                            "or order the exchange by rank parity",
                            col=call.col,
                        )
                    )
                    flagged = True
                    break
    return findings


# ---------------------------------------------------------------------------
# W005 -- constant tag mismatch
# ---------------------------------------------------------------------------

def _constant_tag(call: CommCall, default: Optional[int]) -> Tuple[bool, Optional[int]]:
    """``(is_analysable, tag)``: tag value when it is a literal int (or
    the method's default when omitted); not analysable otherwise."""
    expr = call.args.get("tag")
    if expr is None:
        return True, default
    value = constant_int(expr)
    if value is None:
        if is_wildcard(expr, ("ANY_TAG",)):
            return True, -1
        return False, None
    return True, value


@rule(
    "W005",
    name="tag-mismatch",
    severity="error",
    summary="constant send tag has no matching recv tag (or vice versa)",
)
def check_tag_mismatch(model: ProgramModel) -> List[Finding]:
    sends: List[Tuple[CommCall, Optional[int]]] = []
    recvs: List[Tuple[CommCall, Optional[int]]] = []
    for call in model.calls:
        if call.method in ("send", "isend"):
            ok, tag = _constant_tag(call, default=0)
            if not ok:
                return []  # a computed tag: the pairing is not decidable
            sends.append((call, tag))
        elif call.method in ("recv", "irecv"):
            ok, tag = _constant_tag(call, default=-1)
            if not ok:
                return []
            recvs.append((call, tag))
    if not sends or not recvs:
        return []  # one-sided program fragments pair with a caller we cannot see

    send_tags = {tag for _, tag in sends}
    recv_tags = {tag for _, tag in recvs}
    wildcard_recv = -1 in recv_tags

    findings = []
    for call, tag in sends:
        if not wildcard_recv and tag not in recv_tags:
            findings.append(
                _finding(
                    "W005",
                    model,
                    call.line,
                    f"{call.method} with tag={tag} never matches: the program's "
                    f"receives listen on tag(s) {sorted(recv_tags)} only",
                    col=call.col,
                )
            )
    for call, tag in recvs:
        if tag != -1 and tag not in send_tags:
            findings.append(
                _finding(
                    "W005",
                    model,
                    call.line,
                    f"{call.method} with tag={tag} never matches: the program's "
                    f"sends use tag(s) {sorted(send_tags)} only",
                    col=call.col,
                )
            )
    return findings


# ---------------------------------------------------------------------------
# W006 -- wildcard-source race
# ---------------------------------------------------------------------------

@rule(
    "W006",
    name="wildcard-race",
    severity="warning",
    summary="recv(ANY_SOURCE) races a source-specific recv in the same program",
)
def check_wildcard_race(model: ProgramModel) -> List[Finding]:
    receives = [c for c in model.calls if c.method in ("recv", "irecv")]
    wildcards = [c for c in receives if is_wildcard(c.args.get("source"), ("ANY_SOURCE",))]
    specifics = [c for c in receives if not is_wildcard(c.args.get("source"), ("ANY_SOURCE",))]
    if not wildcards or not specifics:
        return []

    def tags_overlap(a: CommCall, b: CommCall) -> bool:
        tag_a = a.args.get("tag")
        tag_b = b.args.get("tag")
        if is_wildcard(tag_a, ("ANY_TAG",)) or is_wildcard(tag_b, ("ANY_TAG",)):
            return True
        const_a, const_b = constant_int(tag_a), constant_int(tag_b)
        if const_a is None or const_b is None:
            return True  # computed tags: assume they can collide
        return const_a == const_b

    findings = []
    for wildcard in wildcards:
        rivals = [s for s in specifics if tags_overlap(wildcard, s)]
        if not rivals:
            continue
        lines = ", ".join(str(s.line) for s in rivals)
        findings.append(
            _finding(
                "W006",
                model,
                wildcard.line,
                "recv(ANY_SOURCE) can steal the message a source-specific "
                f"recv (line {lines}) is waiting for: which receive matches "
                "depends on arrival order, so results are timing-dependent. "
                "Disambiguate with tags or name the source",
                col=wildcard.col,
            )
        )
    return findings


# ---------------------------------------------------------------------------
# W007-W010 -- symbolic cross-rank rules
# ---------------------------------------------------------------------------

def _sym_finding(code: str, program: SymbolicProgram, line: int, message: str) -> Finding:
    return Finding(
        rule=code,
        severity=RULES[code].severity,
        file=program.filename,
        line=line,
        message=f"{message} [in {program.name}()]",
    )


@rule(
    "W007",
    name="unmatched-send",
    severity="error",
    summary="cross-rank matching finds a send no receive accepts (or vice versa)",
    symbolic=True,
)
def check_unmatched_send(program: SymbolicProgram) -> List[Finding]:
    return [
        _sym_finding("W007", program, line, message)
        for line, message in _schedule.match_point_to_point(program)
    ]


@rule(
    "W008",
    name="collective-divergence",
    severity="error",
    summary="ranks provably issue different world-collective sequences",
    symbolic=True,
)
def check_collective_divergence(program: SymbolicProgram) -> List[Finding]:
    return [
        _sym_finding("W008", program, line, message)
        for line, message in _schedule.collective_divergence(program)
    ]


@rule(
    "W009",
    name="proved-deadlock",
    severity="warning",
    summary="symbolic rendezvous replay proves a wait-for cycle (deadlock)",
    symbolic=True,
)
def check_proved_deadlock(program: SymbolicProgram) -> List[Finding]:
    return [
        _sym_finding("W009", program, line, message)
        for line, message in _schedule.prove_deadlock(program)
    ]


@rule(
    "W010",
    name="mirror-pairing",
    severity="error",
    summary="neighbor exchange receive offsets are not the negated send offsets",
    symbolic=True,
)
def check_mirror_pairing(program: SymbolicProgram) -> List[Finding]:
    return [
        _sym_finding("W010", program, line, message)
        for line, message in _schedule.mirror_pairing(program)
    ]
