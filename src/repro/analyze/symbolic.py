"""Symbolic abstract interpretation of rank programs.

The per-rank rules in :mod:`repro.analyze.rules` pattern-match a single
rank's AST.  This module goes further: it *partially evaluates* a rank
program over a symbolic rank ``r`` with a concrete world size ``n``,
producing a parameterized communication schedule
(:class:`~repro.analyze.schedule.SymbolicProgram`) whose peers, tags and
trip counts are either concrete values or expressions evaluable at any
given rank.  The cross-rank matchers (W007-W010) and the macro
certifier (:mod:`repro.analyze.certify`) both run on that schedule.

Value domain
------------

* ordinary Python values (ints, strings, tuples, ``StencilSpec`` ...)
  stay concrete and fold through arithmetic and subscripts;
* :class:`RankExpr` -- an integer function of the rank, carrying an
  affine form ``(a, b, mod)`` (value ``(a*r + b) % mod``) when one
  exists, which W010 uses to reason about neighbor offsets;
* :class:`RankBool` -- a boolean function of the rank (parity splits);
* :class:`Unknown` -- an opaque value; ``rank_dep`` records whether it
  can differ across ranks, and structural ``key``\\ s make two mentions
  of the same source (``config.ny``) comparable;
* :class:`SymArray` -- an array known only by its symbolic shape, the
  carrier of uniform-payload proofs (``x[:1, :]`` has a
  rank-independent first extent even when ``x`` does not);
* :class:`Record` -- the result of an unknown constructor called with
  keyword arguments (``OceanState(h=..., u=..., v=...)``), so field
  access keeps the fields' abstract values.

Everything is deliberately conservative: when the interpreter cannot
prove a fact it degrades to an :class:`Unknown` (poisoning certification
and making the matchers skip), never to a wrong concrete value.  A
program using syntax outside the supported subset yields a
``SymbolicProgram`` with ``failure`` set, and every downstream consumer
fails open.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analyze.schedule import (
    Branch,
    CollOp,
    ExchangeOp,
    Loop,
    RecvOp,
    SendOp,
    SymbolicProgram,
    WaitOp,
)
from repro.analyze.visitor import COLLECTIVES, iter_program_defs
from repro.linalg.decomp import block_range, block_ranges
from repro.simmpi.stencil import StencilSpec, grid_halo, strip_halo
from repro.util.errors import AnalysisError

#: Concrete-count loops up to this bound are unrolled in place.
UNROLL_MAX = 64

#: Collective kinds whose (kind, algorithm) pair evaluates in closed
#: form under engine macro-ops (``None`` = any algorithm the comm API
#: accepts; see repro.simmpi.macro.SUPPORTED and the reduce_bcast
#: composition in collectives.allreduce).
MACRO_ELIGIBLE: Dict[str, Optional[frozenset]] = {
    "barrier": None,
    "bcast": frozenset({"tree", "tree_nb", "ring", "flat"}),
    "reduce": None,
    "allreduce": frozenset({"recursive_doubling", "reduce_bcast"}),
    "allgather": frozenset({"ring"}),
    "alltoall": frozenset({"cyclic"}),
}


# ---------------------------------------------------------------------------
# the value domain
# ---------------------------------------------------------------------------

class RankExpr:
    """An integer-valued function of the symbolic rank."""

    __slots__ = ("fn", "affine")

    def __init__(
        self,
        fn: Callable[[int], int],
        affine: Optional[Tuple[int, int, Optional[int]]] = None,
    ):
        self.fn = fn
        #: ``(a, b, mod)`` meaning ``(a*rank + b) % mod`` (mod may be
        #: None); only set when the expression really has that form.
        self.affine = affine

    def at(self, rank: int) -> int:
        return self.fn(rank)

    def __repr__(self) -> str:
        if self.affine:
            a, b, mod = self.affine
            base = f"{a}*r{b:+d}"
            return f"<{base} % {mod}>" if mod is not None else f"<{base}>"
        return "<rank-expr>"


class RankBool:
    """A boolean-valued function of the symbolic rank."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[int], bool]):
        self.fn = fn

    def at(self, rank: int) -> bool:
        return bool(self.fn(rank))

    def __repr__(self) -> str:
        return "<rank-bool>"


class Unknown:
    """An opaque abstract value."""

    __slots__ = ("rank_dep", "key")

    def __init__(self, rank_dep: bool, key: Any = None):
        self.rank_dep = rank_dep
        self.key = key

    def __repr__(self) -> str:
        dep = "rank-dep" if self.rank_dep else "uniform"
        return f"<unknown {dep} {self.key!r}>" if self.key else f"<unknown {dep}>"


class SymArray:
    """An array known only by its symbolic shape (per-axis extents)."""

    __slots__ = ("dims", "key")

    def __init__(self, dims: Tuple[Any, ...], key: Any = None):
        self.dims = dims
        self.key = key

    def __repr__(self) -> str:
        return f"<array {self.dims!r}>"


class Record:
    """Result of an unknown constructor captured field-by-field."""

    __slots__ = ("fields", "rank_dep")

    def __init__(self, fields: Dict[str, Any], rank_dep: bool):
        self.fields = fields
        self.rank_dep = rank_dep

    def __repr__(self) -> str:
        return f"<record {sorted(self.fields)}>"


class CommVal:
    """The communicator parameter (world) or a ``comm.group(...)``."""

    __slots__ = ("world", "members")

    def __init__(self, world: bool, members: Any = None):
        self.world = world
        self.members = members


class _Callable:
    """A concrete Python callable reachable from an assumed value."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable):
        self.fn = fn


def is_rank_dep(value: Any) -> bool:
    """Whether the abstract value can differ across ranks."""
    if isinstance(value, (RankExpr, RankBool)):
        return True
    if isinstance(value, Unknown):
        return value.rank_dep
    if isinstance(value, Record):
        return value.rank_dep
    if isinstance(value, SymArray):
        return any(is_rank_dep(d) for d in value.dims)
    if isinstance(value, (tuple, list)):
        return any(is_rank_dep(v) for v in value)
    if isinstance(value, _RangeExpr):
        return is_rank_dep(value.count)
    return False


def uniform_shape(value: Any) -> bool:
    """Payload shape provably identical on every rank: a concrete
    value, a rank-independent abstract value, or a :class:`SymArray`
    whose every extent is rank-independent."""
    if isinstance(value, SymArray):
        return not any(is_rank_dep(d) for d in value.dims)
    return not is_rank_dep(value)


def structural_key(value: Any) -> Any:
    """A hashable identity for join/equality, or None when opaque."""
    if value is None or isinstance(value, (int, float, bool, str)):
        return ("const", value)
    if isinstance(value, RankExpr):
        return ("rank", value.affine) if value.affine else None
    if isinstance(value, Unknown):
        return ("unk", value.key, value.rank_dep) if value.key is not None else None
    if isinstance(value, tuple):
        parts = tuple(structural_key(v) for v in value)
        return None if any(p is None for p in parts) else ("tuple", parts)
    if isinstance(value, SymArray):
        parts = tuple(structural_key(d) for d in value.dims)
        return None if any(p is None for p in parts) else ("arr", value.key, parts)
    return None


def join(a: Any, b: Any) -> Any:
    """Least-effort upper bound of two abstract values (loop widening)."""
    if a is b:
        return a
    ka, kb = structural_key(a), structural_key(b)
    if ka is not None and ka == kb:
        return a
    if isinstance(a, SymArray) and isinstance(b, SymArray) and len(a.dims) == len(
        b.dims
    ):
        dims = tuple(join(da, db) for da, db in zip(a.dims, b.dims))
        return SymArray(dims, key=a.key if a.key == b.key else None)
    if isinstance(a, Record) and isinstance(b, Record):
        fields = {
            name: join(a.fields[name], b.fields[name])
            for name in set(a.fields) & set(b.fields)
        }
        return Record(fields, rank_dep=a.rank_dep or b.rank_dep)
    if isinstance(a, tuple) and isinstance(b, tuple) and len(a) == len(b):
        return tuple(join(x, y) for x, y in zip(a, b))
    dep = is_rank_dep(a) or is_rank_dep(b)
    key_a = a.key if isinstance(a, Unknown) else None
    key_b = b.key if isinstance(b, Unknown) else None
    return Unknown(rank_dep=dep, key=key_a if key_a is not None and key_a == key_b else None)


# ---------------------------------------------------------------------------
# control-flow signals
# ---------------------------------------------------------------------------

class _Return(Exception):
    pass


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Raise(Exception):
    pass


class Unsupported(AnalysisError):
    """Source construct outside the interpretable subset."""


_WILDCARD = -1


# ---------------------------------------------------------------------------
# the interpreter
# ---------------------------------------------------------------------------

class _Interp:
    def __init__(self, fn: ast.FunctionDef, n_ranks: int, filename: str,
                 assume: Optional[Dict[str, Any]] = None):
        self.fn = fn
        self.n = n_ranks
        self.filename = filename
        self.assume = dict(assume or {})
        self.env: Dict[str, Any] = {}
        self.ops: List[Any] = []
        self._op_stack: List[List[Any]] = [self.ops]
        self.program = SymbolicProgram(
            name=fn.name, filename=filename, line=fn.lineno, n_ranks=n_ranks
        )

    # -- driving ------------------------------------------------------------

    def run(self) -> SymbolicProgram:
        args = self.fn.args
        params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        for name in params:
            if name == "comm" or name.endswith("_comm"):
                self.env[name] = CommVal(world=True)
            elif name in self.assume:
                self.env[name] = self.assume[name]
            else:
                self.env[name] = Unknown(rank_dep=False, key=("param", name))
        try:
            self.exec_block(self.fn.body, toplevel=True)
        except (_Return, _Raise):
            pass
        except Unsupported as exc:
            self.program.failure = str(exc)
        except RecursionError:
            self.program.failure = "recursion limit during interpretation"
        self.program.ops = self.ops
        return self.program

    # -- emission -----------------------------------------------------------

    def emit(self, op: Any) -> None:
        self._op_stack[-1].append(op)

    def _nested(self, body: Callable[[], None]) -> List[Any]:
        """Run ``body`` with emissions redirected to a fresh list."""
        ops: List[Any] = []
        self._op_stack.append(ops)
        try:
            body()
        finally:
            self._op_stack.pop()
        return ops

    # -- statements ---------------------------------------------------------

    def exec_block(self, stmts: List[ast.stmt], toplevel: bool = False) -> None:
        """Execute a suite.

        ``toplevel`` marks the function-body suite (including a suite
        continuation re-routed into a branch arm, which *is* the rest
        of the function for the ranks taking that arm).  There an
        ``if`` whose arm returns/raises under a symbolic guard can be
        modeled precisely: the remaining statements belong to the
        surviving arm.  In nested suites (loops, ``with`` bodies) the
        enclosing continuation cannot be re-routed, so termination
        under a symbolic guard raises the ``has_guarded_ops`` hazard
        instead and the cross-rank matchers skip the program.
        """
        for i, stmt in enumerate(stmts):
            if isinstance(stmt, ast.If):
                if self.exec_if(stmt, rest=stmts[i + 1:], toplevel=toplevel):
                    return  # continuation consumed by a branch arm
            else:
                self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            if len(stmt.targets) != 1:
                for target in stmt.targets:
                    self.assign(target, value)
            else:
                self.assign(stmt.targets[0], value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.assign(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            current = self.eval_target_value(stmt.target)
            value = self.binop(stmt.op, current, self.eval(stmt.value))
            self.assign(stmt.target, value)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, statement=True)
        elif isinstance(stmt, ast.If):
            self.exec_if(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.exec_for(stmt)
        elif isinstance(stmt, ast.While):
            self.exec_while(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, value)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.eval(stmt.value)
            raise _Return()
        elif isinstance(stmt, ast.Raise):
            raise _Raise()
        elif isinstance(stmt, ast.Break):
            raise _Break()
        elif isinstance(stmt, ast.Continue):
            raise _Continue()
        elif isinstance(stmt, (ast.Pass, ast.Import, ast.ImportFrom, ast.Global,
                               ast.Nonlocal, ast.Assert, ast.Delete)):
            pass
        elif isinstance(stmt, ast.Try):
            # Exceptional control flow is outside the model; interpret
            # the main body and ignore handlers (fail open on raise).
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs are opaque callables; calling one degrades to
            # Unknown like any unresolved call.
            self.env[stmt.name] = Unknown(rank_dep=False, key=("def", stmt.name))
        else:
            raise Unsupported(f"unsupported statement {type(stmt).__name__}")

    def assign(self, target: ast.expr, value: Any) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            elts = target.elts
            if any(isinstance(e, ast.Starred) for e in elts):
                for element in elts:
                    if isinstance(element, ast.Starred):
                        element = element.value
                    self.assign(element, Unknown(rank_dep=is_rank_dep(value)))
                return
            parts = self.unpack(value, len(elts))
            for element, part in zip(elts, parts):
                self.assign(element, part)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            # Writing through a container/attribute: widen the base name
            # so stale shape facts cannot survive the store.
            base = target
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name) and base.id in self.env:
                old = self.env[base.id]
                self.env[base.id] = join(old, old if not is_rank_dep(value)
                                         else Unknown(rank_dep=True))
        else:
            raise Unsupported(f"unsupported assign target {type(target).__name__}")

    def eval_target_value(self, target: ast.expr) -> Any:
        try:
            return self.eval(target)
        except Unsupported:
            return Unknown(rank_dep=False)

    def unpack(self, value: Any, count: int) -> List[Any]:
        if isinstance(value, (tuple, list)) and len(value) == count:
            return list(value)
        dep = is_rank_dep(value)
        key = value.key if isinstance(value, Unknown) else None
        return [
            Unknown(rank_dep=dep, key=(key, "unpack", count, i) if key is not None else None)
            for i in range(count)
        ]

    # -- control flow -------------------------------------------------------

    def exec_if(self, stmt: ast.If, rest: Sequence[ast.stmt] = (),
                toplevel: bool = False) -> bool:
        """Execute an ``if``; True when the suite continuation ``rest``
        was consumed into a branch arm (caller must stop)."""
        test = self.eval(stmt.test)
        if isinstance(test, (RankExpr, RankBool)):
            rb = test if isinstance(test, RankBool) else RankBool(
                lambda r, e=test: bool(e.at(r))
            )
            return self._symbolic_branch(stmt, test=rb, uniform=False,
                                         rest=rest, toplevel=toplevel)
        if isinstance(test, (Unknown, Record, SymArray)):
            return self._symbolic_branch(stmt, test=None,
                                         uniform=not is_rank_dep(test),
                                         rest=rest, toplevel=toplevel)
        self.exec_block(stmt.body if test else stmt.orelse)
        return False

    def _symbolic_branch(self, stmt: ast.If, test: Any, uniform: bool,
                         rest: Sequence[ast.stmt] = (),
                         toplevel: bool = False) -> bool:
        snapshot = dict(self.env)
        body_env: Dict[str, Any] = {}
        orelse_env: Dict[str, Any] = {}
        terminated = [False, False]

        def run_arm(block: List[ast.stmt], out_env: Dict[str, Any], slot: int) -> List[Any]:
            self.env = dict(snapshot)

            def go() -> None:
                try:
                    self.exec_block(block)
                except (_Return, _Raise):
                    terminated[slot] = True

            ops = self._nested(go)  # partial ops survive a return/raise
            out_env.update(self.env)
            return ops

        try:
            body_ops = run_arm(stmt.body, body_env, 0)
            orelse_ops = run_arm(stmt.orelse, orelse_env, 1)
        finally:
            self.env = snapshot

        consumed = False
        if terminated[0] or terminated[1]:
            if toplevel:
                # An arm that returns/raises ends the function for its
                # ranks, so the statements after the if are exactly the
                # continuation of the *surviving* arm: fold them in.
                if terminated[0] and terminated[1]:
                    consumed = bool(rest)  # both arms exit: rest is dead
                elif rest:
                    surviving_env = orelse_env if terminated[0] else body_env
                    self.env = dict(surviving_env)

                    def go_rest() -> None:
                        try:
                            self.exec_block(list(rest), toplevel=True)
                        except (_Return, _Raise):
                            pass

                    rest_ops = self._nested(go_rest)
                    if terminated[0]:
                        orelse_ops = orelse_ops + rest_ops
                        orelse_env = dict(self.env)
                    else:
                        body_ops = body_ops + rest_ops
                        body_env = dict(self.env)
                    self.env = snapshot
                    consumed = True
            elif test is not None or not uniform:
                # Nested suite: the enclosing continuation cannot be
                # re-routed, so it is conditionally executed.  Record
                # the hazard; matchers and certification skip.
                self.program.has_guarded_ops = True

        live = []
        if not terminated[0]:
            live.append(body_env)
        if not terminated[1]:
            live.append(orelse_env)
        merged = dict(snapshot)
        names = set()
        for env in live:
            names |= set(env)
        for name in names:
            values = [env.get(name, snapshot.get(name)) for env in live]
            values = [v for v in values if v is not None]
            if not values:
                continue
            out = values[0]
            for v in values[1:]:
                out = join(out, v)
            merged[name] = out
        self.env = merged

        from repro.analyze.schedule import _has_comm_ops
        has_ops = _has_comm_ops(body_ops) or _has_comm_ops(orelse_ops)
        if has_ops and test is None and not uniform:
            self.program.has_guarded_ops = True
        if body_ops or orelse_ops:
            self.emit(
                Branch(
                    test=test,
                    body=body_ops,
                    orelse=orelse_ops,
                    line=stmt.lineno,
                    uniform=uniform,
                )
            )
        return consumed

    def exec_for(self, stmt: ast.For) -> None:
        iterable = self.eval(stmt.iter)
        if isinstance(iterable, range) and len(iterable) <= UNROLL_MAX:
            self._unroll(stmt, list(iterable))
            return
        if isinstance(iterable, (tuple, list)) and len(iterable) <= UNROLL_MAX:
            self._unroll(stmt, list(iterable))
            return
        if isinstance(iterable, range):
            count: Any = len(iterable)
        elif isinstance(iterable, RankExpr):
            # range() over rank expressions produces a _RangeExpr below;
            # a bare RankExpr is not iterable.
            count = None
        elif isinstance(iterable, _RangeExpr):
            count = iterable.count
        elif isinstance(iterable, (tuple, list)):
            count = len(iterable)
        else:
            count = None
        uniform = not is_rank_dep(iterable)
        self._widened_loop(stmt, count=count, uniform=uniform,
                           loop_var_dep=is_rank_dep(iterable))

    def _unroll(self, stmt: ast.For, items: List[Any]) -> None:
        for item in items:
            self.assign(stmt.target, item)
            try:
                self.exec_block(stmt.body)
            except _Break:
                break
            except _Continue:
                continue
        else:
            self.exec_block(stmt.orelse)

    def _widened_loop(self, stmt: Union[ast.For, ast.While], *, count: Any,
                      uniform: bool, loop_var_dep: bool) -> None:
        # Pass 1: discover assigned names and widen the environment,
        # discarding the emissions; pass 2 produces the loop body ops.
        snapshot = dict(self.env)
        if isinstance(stmt, ast.For):
            self.assign(stmt.target, Unknown(rank_dep=loop_var_dep))

        def body() -> None:
            try:
                self.exec_block(stmt.body)
            except (_Break, _Continue, _Return, _Raise):
                pass

        self._nested(body)
        after = self.env
        widened = dict(snapshot)
        for name, value in after.items():
            if name in snapshot:
                widened[name] = join(snapshot[name], value)
            else:
                widened[name] = join(value, Unknown(rank_dep=is_rank_dep(value)))
        self.env = widened
        if isinstance(stmt, ast.For):
            self.assign(stmt.target, Unknown(rank_dep=loop_var_dep))
        ops = self._nested(body)

        from repro.analyze.schedule import _has_comm_ops
        if _has_comm_ops(ops):
            if count is None:
                self.program.has_unknown_loop = True
            self.emit(Loop(count=count, body=ops, line=stmt.lineno, uniform=uniform))

    def exec_while(self, stmt: ast.While) -> None:
        test = self.eval(stmt.test)
        if not isinstance(test, (Unknown, RankExpr, RankBool, Record, SymArray)):
            if not test:
                self.exec_block(stmt.orelse)
                return
            # A concrete-True while guard cannot be unrolled statically.
            self._widened_loop(stmt, count=None, uniform=True, loop_var_dep=False)
            return
        self._widened_loop(
            stmt, count=None, uniform=not is_rank_dep(test),
            loop_var_dep=is_rank_dep(test),
        )

    # -- expressions --------------------------------------------------------

    def eval(self, node: ast.expr, statement: bool = False) -> Any:
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            return self.lookup(node.id)
        if isinstance(node, ast.Attribute):
            return self.attribute(self.eval(node.value), node.attr)
        if isinstance(node, ast.Tuple):
            return tuple(self.eval(e) for e in node.elts)
        if isinstance(node, ast.List):
            return [self.eval(e) for e in node.elts]
        if isinstance(node, ast.BinOp):
            return self.binop(node.op, self.eval(node.left), self.eval(node.right))
        if isinstance(node, ast.UnaryOp):
            return self.unaryop(node.op, self.eval(node.operand))
        if isinstance(node, ast.BoolOp):
            return self.boolop(node)
        if isinstance(node, ast.Compare):
            return self.compare(node)
        if isinstance(node, ast.IfExp):
            test = self.eval(node.test)
            if isinstance(test, (Unknown, Record, SymArray)):
                return join(self.eval(node.body), self.eval(node.orelse))
            if isinstance(test, (RankExpr, RankBool)):
                body, orelse = self.eval(node.body), self.eval(node.orelse)
                # Concrete arms under a rank test stay per-rank
                # evaluable (`"tree" if r % 2 else "ring"` matters to
                # W008's algorithm comparison, not just int peers).
                if all(
                    v is None or isinstance(v, (int, float, str))
                    for v in (body, orelse)
                ):
                    return RankExpr(
                        lambda r, t=test, x=body, y=orelse: x if t.at(r) else y
                    )
                joined = join(body, orelse)
                if isinstance(joined, Unknown) and structural_key(body) != \
                        structural_key(orelse):
                    return Unknown(rank_dep=True, key=None)
                return joined
            return self.eval(node.body if test else node.orelse)
        if isinstance(node, ast.Call):
            return self.call(node, statement=statement)
        if isinstance(node, ast.Subscript):
            return self.subscript(node)
        if isinstance(node, ast.YieldFrom):
            inner = self.eval(node.value)
            if isinstance(inner, _PendingOp):
                for op in inner.ops:
                    self.emit(op)
                return inner.value
            return Unknown(rank_dep=True)
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp,
                             ast.DictComp)):
            free = {
                n.id for n in ast.walk(node) if isinstance(n, ast.Name)
            }
            dep = any(
                is_rank_dep(self.env[name]) for name in free if name in self.env
            )
            return Unknown(rank_dep=dep)
        if isinstance(node, ast.JoinedStr):
            return Unknown(rank_dep=any(
                is_rank_dep(self.eval(v.value))
                for v in node.values if isinstance(v, ast.FormattedValue)
            ))
        if isinstance(node, ast.Slice):
            return slice(
                self.eval(node.lower) if node.lower else None,
                self.eval(node.upper) if node.upper else None,
                self.eval(node.step) if node.step else None,
            )
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, (ast.Lambda, ast.Dict, ast.Set, ast.Await, ast.Yield)):
            return Unknown(rank_dep=False)
        raise Unsupported(f"unsupported expression {type(node).__name__}")

    def lookup(self, name: str) -> Any:
        if name in self.env:
            return self.env[name]
        if name in _GLOBAL_VALUES:
            return _GLOBAL_VALUES[name]
        if name in _INTRINSICS:
            return _Intrinsic(name)
        return Unknown(rank_dep=False, key=("global", name))

    def attribute(self, owner: Any, attr: str) -> Any:
        if isinstance(owner, CommVal):
            if attr == "rank":
                if owner.world:
                    return RankExpr(lambda r: r, affine=(1, 0, None))
                return Unknown(rank_dep=True, key=None)
            if attr == "size":
                return self.n if owner.world else Unknown(rank_dep=False)
            return _CommMethod(owner, attr)
        if isinstance(owner, Record):
            if attr in owner.fields:
                return owner.fields[attr]
            return Unknown(rank_dep=owner.rank_dep)
        if isinstance(owner, Unknown):
            key = (owner.key, ".", attr) if owner.key is not None else None
            return Unknown(rank_dep=owner.rank_dep, key=key)
        if isinstance(owner, (RankExpr, RankBool)):
            return Unknown(rank_dep=True)
        if isinstance(owner, SymArray):
            if attr == "shape":
                return owner.dims
            if attr in ("copy", "astype"):
                return _ShapePreserver(owner)
            key = (owner.key, ".", attr) if owner.key is not None else None
            return Unknown(rank_dep=is_rank_dep(owner), key=key)
        # A real object (assumed parameter, StencilSpec, module, ...).
        try:
            value = getattr(owner, attr)
        except Exception:
            return Unknown(rank_dep=False)
        if callable(value) and not isinstance(value, type):
            return _Callable(value)
        if value is None or isinstance(value, (int, float, bool, str, tuple,
                                               StencilSpec)):
            return value
        if callable(value):
            return _Callable(value)
        return value

    # -- operators ----------------------------------------------------------

    def binop(self, op: ast.operator, left: Any, right: Any) -> Any:
        concrete_l = _is_concrete_scalar(left)
        concrete_r = _is_concrete_scalar(right)
        if concrete_l and concrete_r:
            try:
                return _BINOPS[type(op)](left, right)
            except (KeyError, TypeError, ZeroDivisionError, ValueError):
                return Unknown(rank_dep=False)
        if isinstance(left, (tuple, list)) and isinstance(right, (tuple, list)) and \
                isinstance(op, ast.Add):
            return type(left)(list(left) + list(right))
        rank_l = isinstance(left, RankExpr) or (concrete_l and isinstance(left, int))
        rank_r = isinstance(right, RankExpr) or (concrete_r and isinstance(right, int))
        if (isinstance(left, RankExpr) or isinstance(right, RankExpr)) and \
                rank_l and rank_r and type(op) in _BINOPS:
            return self._rank_binop(op, left, right)
        # Elementwise array arithmetic preserves the known shape.
        if isinstance(op, (ast.Add, ast.Sub, ast.Mult, ast.Div)):
            if isinstance(left, SymArray) and isinstance(right, SymArray):
                if len(left.dims) == len(right.dims):
                    dims = tuple(
                        join(da, db) for da, db in zip(left.dims, right.dims)
                    )
                    return SymArray(dims, key=None)
                return Unknown(rank_dep=is_rank_dep(left) or is_rank_dep(right))
            if isinstance(left, SymArray):
                return SymArray(left.dims, key=None)
            if isinstance(right, SymArray):
                return SymArray(right.dims, key=None)
        return Unknown(rank_dep=is_rank_dep(left) or is_rank_dep(right))

    def _rank_binop(self, op: ast.operator, left: Any, right: Any) -> Any:
        fn = _BINOPS[type(op)]

        def lift(v: Any) -> Callable[[int], int]:
            if isinstance(v, RankExpr):
                return v.at
            return lambda r, c=v: c

        lf, rf = lift(left), lift(right)

        def compute(r: int) -> int:
            return fn(lf(r), rf(r))

        affine = None
        la = left.affine if isinstance(left, RankExpr) else (0, left, None)
        ra = right.affine if isinstance(right, RankExpr) else (0, right, None)
        if la is not None and ra is not None:
            (a1, b1, m1), (a2, b2, m2) = la, ra
            if isinstance(op, ast.Add) and m1 is None and m2 is None:
                affine = (a1 + a2, b1 + b2, None)
            elif isinstance(op, ast.Sub) and m1 is None and m2 is None:
                affine = (a1 - a2, b1 - b2, None)
            elif isinstance(op, ast.Mult) and m1 is None and m2 is None and (
                a1 == 0 or a2 == 0
            ):
                affine = (a1 * b2 + a2 * b1, b1 * b2, None)
            elif isinstance(op, ast.Mod) and m1 is None and a2 == 0 and m2 is None \
                    and b2 > 0:
                affine = (a1, b1, b2)
        return RankExpr(compute, affine=affine)

    def unaryop(self, op: ast.unaryop, operand: Any) -> Any:
        if _is_concrete_scalar(operand):
            try:
                if isinstance(op, ast.USub):
                    return -operand
                if isinstance(op, ast.UAdd):
                    return +operand
                if isinstance(op, ast.Not):
                    return not operand
                if isinstance(op, ast.Invert):
                    return ~operand
            except TypeError:
                return Unknown(rank_dep=False)
        if isinstance(operand, RankExpr):
            if isinstance(op, ast.USub):
                affine = None
                if operand.affine and operand.affine[2] is None:
                    a, b, _ = operand.affine
                    affine = (-a, -b, None)
                return RankExpr(lambda r, e=operand: -e.at(r), affine=affine)
            if isinstance(op, ast.Not):
                return RankBool(lambda r, e=operand: not e.at(r))
        if isinstance(operand, RankBool) and isinstance(op, ast.Not):
            return RankBool(lambda r, e=operand: not e.at(r))
        return Unknown(rank_dep=is_rank_dep(operand))

    def boolop(self, node: ast.BoolOp) -> Any:
        values = [self.eval(v) for v in node.values]
        if all(_is_concrete_scalar(v) or v is None or isinstance(v, str)
               for v in values):
            if isinstance(node.op, ast.And):
                out: Any = True
                for v in values:
                    out = v
                    if not v:
                        return v
                return out
            for v in values:
                if v:
                    return v
            return values[-1]
        symbolic = [v for v in values if isinstance(v, (RankExpr, RankBool))]
        opaque = [v for v in values if isinstance(v, (Unknown, Record, SymArray))]
        if symbolic and not opaque:
            def as_bool(v: Any) -> Callable[[int], bool]:
                if isinstance(v, (RankExpr, RankBool)):
                    return lambda r, e=v: bool(e.at(r))
                return lambda r, c=bool(v): c

            fns = [as_bool(v) for v in values]
            if isinstance(node.op, ast.And):
                return RankBool(lambda r, fs=fns: all(f(r) for f in fs))
            return RankBool(lambda r, fs=fns: any(f(r) for f in fs))
        return Unknown(rank_dep=any(is_rank_dep(v) for v in values))

    def compare(self, node: ast.Compare) -> Any:
        left = self.eval(node.left)
        result: Any = True
        for op, comparator in zip(node.ops, node.comparators):
            right = self.eval(comparator)
            part = self._compare_one(op, left, right)
            result = self._and(result, part)
            left = right
        return result

    def _and(self, a: Any, b: Any) -> Any:
        if a is True:
            return b
        if b is True:
            return a
        if a is False or b is False:
            return False
        if isinstance(a, (RankExpr, RankBool)) and isinstance(b, (RankExpr, RankBool)):
            return RankBool(lambda r, x=a, y=b: bool(x.at(r)) and bool(y.at(r)))
        return Unknown(rank_dep=is_rank_dep(a) or is_rank_dep(b))

    def _compare_one(self, op: ast.cmpop, left: Any, right: Any) -> Any:
        concrete_l = _is_concrete_scalar(left) or left is None or isinstance(
            left, (str, tuple)
        )
        concrete_r = _is_concrete_scalar(right) or right is None or isinstance(
            right, (str, tuple)
        )
        if concrete_l and concrete_r:
            try:
                return _CMPOPS[type(op)](left, right)
            except (KeyError, TypeError):
                return Unknown(rank_dep=False)
        if isinstance(op, (ast.Is, ast.IsNot)) and (right is None or left is None):
            symbolic = left if right is None else right
            if isinstance(symbolic, (RankExpr, RankBool, SymArray, Record, CommVal)):
                return isinstance(op, ast.IsNot)
            return Unknown(rank_dep=is_rank_dep(symbolic))
        both_ranky = all(
            isinstance(v, RankExpr) or (_is_concrete_scalar(v) and isinstance(v, int))
            for v in (left, right)
        )
        if both_ranky and type(op) in _CMPOPS:
            fn = _CMPOPS[type(op)]

            def lift(v: Any) -> Callable[[int], int]:
                if isinstance(v, RankExpr):
                    return v.at
                return lambda r, c=v: c

            lf, rf = lift(left), lift(right)
            return RankBool(lambda r: bool(fn(lf(r), rf(r))))
        return Unknown(rank_dep=is_rank_dep(left) or is_rank_dep(right))

    # -- subscripts ---------------------------------------------------------

    def subscript(self, node: ast.Subscript) -> Any:
        owner = self.eval(node.value)
        index = self.eval(node.slice)
        if isinstance(owner, (tuple, list, str, range, dict)):
            if _is_concrete_scalar(index) and not isinstance(index, float):
                try:
                    return owner[index]
                except (IndexError, KeyError, TypeError):
                    return Unknown(rank_dep=False)
            if isinstance(index, slice) and all(
                v is None or _is_concrete_scalar(v)
                for v in (index.start, index.stop, index.step)
            ):
                try:
                    return owner[index]
                except (TypeError, ValueError):
                    return Unknown(rank_dep=False)
            if isinstance(index, RankExpr) and isinstance(owner, (tuple, list)):
                if all(isinstance(v, int) and not isinstance(v, bool)
                       for v in owner):
                    return RankExpr(
                        lambda r, seq=tuple(owner), e=index: seq[e.at(r)]
                    )
                return Unknown(rank_dep=True)
            return Unknown(rank_dep=is_rank_dep(owner) or is_rank_dep(index))
        if isinstance(owner, SymArray):
            return self._slice_dims(owner.dims, index, base_key=owner.key,
                                    base_dep=False)
        if isinstance(owner, (Unknown, Record)):
            base_key = owner.key if isinstance(owner, Unknown) else None
            return self._slice_dims(None, index, base_key=base_key,
                                    base_dep=is_rank_dep(owner))
        return Unknown(rank_dep=is_rank_dep(owner) or is_rank_dep(index))

    def _slice_dims(self, dims: Optional[Tuple[Any, ...]], index: Any,
                    base_key: Any, base_dep: bool) -> Any:
        """Abstract array subscript: build/refine symbolic extents."""
        items = list(index) if isinstance(index, tuple) else [index]
        if not all(isinstance(i, slice) or _is_concrete_scalar(i) or
                   isinstance(i, (RankExpr, Unknown)) for i in items):
            return Unknown(rank_dep=base_dep or is_rank_dep(index))
        out_dims: List[Any] = []
        for axis, item in enumerate(items):
            if not isinstance(item, slice):
                continue  # integer index drops the axis
            extent = _slice_extent(item)
            if extent is not None:
                out_dims.append(extent)
            elif item.start is None and item.stop is None and item.step is None:
                if dims is not None and axis < len(dims):
                    out_dims.append(dims[axis])
                elif base_key is not None and not base_dep:
                    out_dims.append(Unknown(rank_dep=False,
                                            key=(base_key, "dim", axis)))
                else:
                    out_dims.append(Unknown(rank_dep=base_dep))
            else:
                dep = base_dep or any(
                    is_rank_dep(v) for v in (item.start, item.stop, item.step)
                    if v is not None
                )
                out_dims.append(Unknown(rank_dep=dep))
        if dims is not None and len(items) < len(dims):
            out_dims.extend(dims[len(items):])
        return SymArray(tuple(out_dims), key=base_key)

    # -- calls --------------------------------------------------------------

    def call(self, node: ast.Call, statement: bool = False) -> Any:
        func = node.func
        if any(isinstance(a, ast.Starred) for a in node.args) or any(
            k.arg is None for k in node.keywords
        ):
            for a in node.args:
                self.eval(a.value if isinstance(a, ast.Starred) else a)
            return Unknown(rank_dep=False)
        args = [self.eval(a) for a in node.args]
        kwargs = {k.arg: self.eval(k.value) for k in node.keywords if k.arg}
        callee = self.eval(func)
        if isinstance(callee, _CommMethod):
            return self.comm_call(callee, node, args, kwargs)
        if isinstance(callee, _Intrinsic):
            return self.intrinsic(callee.name, node, args, kwargs)
        if isinstance(callee, _ShapePreserver):
            return SymArray(callee.array.dims, key=callee.array.key)
        if isinstance(callee, _Callable):
            if all(_is_real(v) for v in args) and all(
                _is_real(v) for v in kwargs.values()
            ):
                try:
                    return _wrap_real(callee.fn(*args, **kwargs))
                except Exception:
                    return Unknown(rank_dep=False)
            return Unknown(
                rank_dep=any(is_rank_dep(v) for v in args) or any(
                    is_rank_dep(v) for v in kwargs.values()
                )
            )
        if callable(callee) and isinstance(callee, type):
            if all(_is_real(v) for v in args) and all(
                _is_real(v) for v in kwargs.values()
            ):
                try:
                    return _wrap_real(callee(*args, **kwargs))
                except Exception:
                    return Unknown(rank_dep=False)
        # Unknown callee: a few numpy-style names preserve shape.
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        dep = any(is_rank_dep(v) for v in args) or any(
            is_rank_dep(v) for v in kwargs.values()
        )
        if name in _SHAPE_PRESERVING and args and isinstance(args[0], SymArray):
            return SymArray(args[0].dims, key=None)
        if name in _STACKING and args and isinstance(args[0], (list, tuple)):
            parts = args[0]
            arrays = [p for p in parts if isinstance(p, SymArray)]
            if arrays:
                head = arrays[0]
                dim0 = Unknown(rank_dep=any(is_rank_dep(p) for p in parts))
                rest = tuple(head.dims[1:])
                return SymArray((dim0,) + rest, key=None)
            return Unknown(rank_dep=dep)
        if kwargs and not args and name is not None and name[:1].isupper():
            # Constructor idiom: Klass(field=value, ...) -- keep fields.
            return Record(dict(kwargs), rank_dep=dep)
        key = ("call", node.lineno, node.col_offset) if not dep else None
        return Unknown(rank_dep=dep, key=key)

    # -- intrinsics ---------------------------------------------------------

    def intrinsic(self, name: str, node: ast.Call, args: List[Any],
                  kwargs: Dict[str, Any]) -> Any:
        dep = any(is_rank_dep(v) for v in args) or any(
            is_rank_dep(v) for v in kwargs.values()
        )
        if name == "range":
            if all(isinstance(v, int) and not isinstance(v, bool) for v in args):
                try:
                    return range(*args)
                except (TypeError, ValueError):
                    return Unknown(rank_dep=False)
            ranky = all(
                isinstance(v, RankExpr) or (isinstance(v, int) and
                                            not isinstance(v, bool))
                for v in args
            ) and args
            if ranky:
                def lift(v: Any) -> Callable[[int], int]:
                    if isinstance(v, RankExpr):
                        return v.at
                    return lambda r, c=v: c

                fns = [lift(v) for v in args]
                return _RangeExpr(
                    RankExpr(lambda r, fs=tuple(fns): len(range(*[f(r) for f in fs])))
                )
            return Unknown(rank_dep=dep)
        if name in ("len", "abs", "int", "float", "bool", "sum", "sorted",
                    "list", "tuple", "set", "str", "enumerate", "zip",
                    "divmod", "round"):
            real = all(_is_real(v) for v in args)
            if real:
                try:
                    return _wrap_real(_BUILTINS[name](*args))
                except Exception:
                    return Unknown(rank_dep=False)
            return Unknown(rank_dep=dep)
        if name in ("min", "max"):
            if all(isinstance(v, int) and not isinstance(v, bool) for v in args):
                return (min if name == "min" else max)(*args)
            ranky = args and all(
                isinstance(v, RankExpr) or (isinstance(v, int) and
                                            not isinstance(v, bool))
                for v in args
            )
            if ranky and any(isinstance(v, RankExpr) for v in args):
                def lift(v: Any) -> Callable[[int], int]:
                    if isinstance(v, RankExpr):
                        return v.at
                    return lambda r, c=v: c

                fns = [lift(v) for v in args]
                agg = min if name == "min" else max
                return RankExpr(lambda r, fs=tuple(fns), g=agg: g(f(r) for f in fs))
            return Unknown(rank_dep=dep)
        if name == "next":
            if args:
                inner = args[0]
                return Unknown(rank_dep=is_rank_dep(inner))
            return Unknown(rank_dep=False)
        if name == "print":
            return None
        if name == "block_range":
            if len(args) == 3:
                n_val, p_val, rank_val = args
                if isinstance(n_val, int) and isinstance(p_val, int) and isinstance(
                    rank_val, RankExpr
                ):
                    return (
                        RankExpr(lambda r, n=n_val, p=p_val, e=rank_val:
                                 block_range(n, p, e.at(r))[0]),
                        RankExpr(lambda r, n=n_val, p=p_val, e=rank_val:
                                 block_range(n, p, e.at(r))[1]),
                    )
                if all(_is_real(v) for v in args):
                    try:
                        return block_range(*args)
                    except Exception:
                        return Unknown(rank_dep=False)
            return (Unknown(rank_dep=True), Unknown(rank_dep=True))
        if name == "block_ranges":
            if all(_is_real(v) for v in args):
                try:
                    return tuple(block_ranges(*args))
                except Exception:
                    return Unknown(rank_dep=False)
            return Unknown(rank_dep=dep)
        if name in ("strip_halo", "grid_halo"):
            fn = strip_halo if name == "strip_halo" else grid_halo
            if all(_is_real(v) for v in args) and all(
                _is_real(v) for v in kwargs.values()
            ):
                try:
                    return fn(*args, **kwargs)
                except Exception:
                    return Unknown(rank_dep=False)
            return Unknown(rank_dep=dep)
        return Unknown(rank_dep=dep)

    # -- communication ------------------------------------------------------

    def comm_call(self, method: _CommMethod, node: ast.Call, args: List[Any],
                  kwargs: Dict[str, Any]) -> Any:
        comm, name = method.comm, method.name
        line, col = node.lineno, node.col_offset

        def arg(position: int, keyword: str, default: Any = None) -> Any:
            if keyword in kwargs:
                return kwargs[keyword]
            if position < len(args):
                return args[position]
            return default

        if name == "group":
            members = arg(0, "members")
            return CommVal(world=False, members=members)
        if name == "phase":
            return _NullContext()
        if name == "is_root":
            root = arg(0, "root", 0)
            if isinstance(root, int) and comm.world:
                return RankBool(lambda r, t=root: r == t)
            return Unknown(rank_dep=True)
        if name == "next_tag_block":
            return Unknown(rank_dep=False, key=("tag-block", line))
        if name == "compute":
            return _PendingOp([], None)
        if name in ("send", "isend"):
            payload = arg(0, "payload")
            dest = arg(1, "dest")
            tag = arg(2, "tag", 0)
            op = SendOp(
                dest=dest, tag=tag, line=line, col=col,
                blocking=(name == "send"),
                payload_none=payload is None,
            )
            self.program.has_p2p = True
            value = None if name == "send" else Unknown(
                rank_dep=False, key=("handle", line, col)
            )
            return _PendingOp([op], value)
        if name in ("recv", "irecv"):
            source = arg(0, "source", _WILDCARD)
            tag = arg(1, "tag", _WILDCARD)
            op = RecvOp(
                source=_wildcardify(source), tag=_wildcardify(tag),
                line=line, col=col, blocking=(name == "recv"),
            )
            self.program.has_p2p = True
            value = Unknown(rank_dep=True) if name == "recv" else Unknown(
                rank_dep=False, key=("handle", line, col)
            )
            return _PendingOp([op], value)
        if name == "sendrecv":
            payload = arg(0, "payload")
            dest = arg(1, "dest")
            source = arg(2, "source", _WILDCARD)
            sendtag = arg(3, "sendtag", 0)
            recvtag = arg(4, "recvtag", _WILDCARD)
            self.program.has_p2p = True
            # Internally an irecv/send/wait composition: never a
            # symmetric-blocking hazard, so model the receive as posted
            # before the send.
            ops = [
                RecvOp(source=_wildcardify(source), tag=_wildcardify(recvtag),
                       line=line, col=col, blocking=False),
                SendOp(dest=dest, tag=sendtag, line=line, col=col,
                       blocking=True, payload_none=payload is None),
                WaitOp(line=line, col=col),
            ]
            return _PendingOp(ops, Unknown(rank_dep=True))
        if name in ("wait", "waitall", "waitany"):
            self.program.has_p2p = True
            value: Any = Unknown(rank_dep=True)
            if name == "waitany":
                value = (Unknown(rank_dep=True), Unknown(rank_dep=True))
            return _PendingOp([WaitOp(line=line, col=col)], value)
        if name in COLLECTIVES:
            return self.collective(comm, name, node, args, kwargs)
        if name == "exchange":
            spec = arg(0, "spec")
            payloads = arg(1, "payloads")
            uniform = isinstance(payloads, (list, tuple)) and all(
                uniform_shape(p) for p in payloads
            )
            concrete_spec = spec if isinstance(spec, StencilSpec) else None
            op = ExchangeOp(spec=concrete_spec, line=line, col=col,
                            uniform=uniform and concrete_spec is not None)
            if concrete_spec is not None:
                value: Any = tuple(
                    Unknown(rank_dep=True) for _ in concrete_spec.offsets
                )
            else:
                value = Unknown(rank_dep=True)
            return _PendingOp([op], value)
        # Unrecognised comm attribute: opaque.
        return Unknown(rank_dep=True)

    def collective(self, comm: CommVal, kind: str, node: ast.Call,
                   args: List[Any], kwargs: Dict[str, Any]) -> Any:
        line, col = node.lineno, node.col_offset
        signature = _COLLECTIVE_SIGNATURES.get(kind, ())

        def arg(keyword: str, default: Any = None) -> Any:
            if keyword in kwargs:
                return kwargs[keyword]
            if keyword in signature:
                position = signature.index(keyword)
                if position < len(args):
                    return args[position]
            return default

        algorithm = arg("algorithm", _COLLECTIVE_DEFAULT_ALGO.get(kind))
        root = arg("root", 0) if kind in _ROOTED else None
        payload = arg("value", arg("values"))
        if not (isinstance(algorithm, str) or hasattr(algorithm, "at")):
            algorithm = None  # opaque: certification refuses, W008 compares "?"
        op = CollOp(
            kind=kind,
            algorithm=algorithm,
            root=root,
            line=line,
            col=col,
            world=comm.world,
            uniform_payload=uniform_shape(payload),
        )
        value = _collective_result(kind, line, col)
        return _PendingOp([op], value)


class _PendingOp:
    """A comm coroutine built but not yet driven by ``yield from``."""

    __slots__ = ("ops", "value")

    def __init__(self, ops: List[Any], value: Any):
        self.ops = ops
        self.value = value


class _CommMethod:
    __slots__ = ("comm", "name")

    def __init__(self, comm: CommVal, name: str):
        self.comm = comm
        self.name = name


class _Intrinsic:
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name


class _ShapePreserver:
    __slots__ = ("array",)

    def __init__(self, array: SymArray):
        self.array = array


class _RangeExpr:
    """``range()`` over rank expressions: iterable only as a trip count."""

    __slots__ = ("count",)

    def __init__(self, count: RankExpr):
        self.count = count


class _NullContext:
    pass


def _wildcardify(value: Any) -> Any:
    """Map the simulator's ANY_SOURCE/ANY_TAG globals to -1."""
    if isinstance(value, Unknown) and value.key in (
        ("global", "ANY_SOURCE"), ("global", "ANY_TAG")
    ):
        return _WILDCARD
    return value


def _collective_result(kind: str, line: int, col: int) -> Any:
    if kind == "barrier":
        return None
    if kind in ("bcast", "allreduce", "allgather", "alltoall"):
        # Same value on every rank (allgather/alltoall: same list shape).
        return Unknown(rank_dep=False, key=(kind, line, col))
    return Unknown(rank_dep=True)


def _slice_extent(item: slice) -> Optional[Any]:
    """Concrete extent of a slice when derivable without the base size."""
    start, stop, step = item.start, item.stop, item.step
    if step is not None and step != 1:
        return None
    if start is None and isinstance(stop, int) and not isinstance(stop, bool):
        if stop >= 0:
            return stop
        return None
    if stop is None and isinstance(start, int) and not isinstance(start, bool):
        if start < 0:
            return -start
        return None
    if isinstance(start, int) and isinstance(stop, int) and not isinstance(
        start, bool
    ) and not isinstance(stop, bool) and start >= 0 and stop >= start:
        return stop - start
    if isinstance(start, RankExpr) and isinstance(stop, RankExpr):
        # x[lo:hi] with lo/hi affine of equal slope: extent is uniform.
        if start.affine and stop.affine and start.affine[2] is None and \
                stop.affine[2] is None and start.affine[0] == stop.affine[0]:
            return stop.affine[1] - start.affine[1]
        return Unknown(rank_dep=True)
    if any(isinstance(v, (RankExpr, Unknown)) for v in (start, stop)):
        dep = any(is_rank_dep(v) for v in (start, stop) if v is not None)
        return Unknown(rank_dep=dep)
    return None


def _is_concrete_scalar(value: Any) -> bool:
    return isinstance(value, (int, float, bool)) and not isinstance(value, complex)


def _is_real(value: Any) -> bool:
    """A value safe to hand to real Python code."""
    if value is None or isinstance(value, (int, float, bool, str, StencilSpec)):
        return True
    if isinstance(value, (tuple, list)):
        return all(_is_real(v) for v in value)
    if isinstance(value, (Unknown, RankExpr, RankBool, SymArray, Record,
                          CommVal, _PendingOp, _CommMethod, _Intrinsic,
                          _RangeExpr, _NullContext, _ShapePreserver, _Callable)):
        return False
    return True  # assumed objects (grids, arrays) pass through


def _wrap_real(value: Any) -> Any:
    if isinstance(value, (list, range)) and len(value) <= 4 * UNROLL_MAX:
        return tuple(value) if isinstance(value, list) else value
    return value


_BINOPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.Pow: lambda a, b: a ** b,
    ast.LShift: lambda a, b: a << b,
    ast.RShift: lambda a, b: a >> b,
    ast.BitAnd: lambda a, b: a & b,
    ast.BitOr: lambda a, b: a | b,
    ast.BitXor: lambda a, b: a ^ b,
}

_CMPOPS = {
    ast.Eq: lambda a, b: a == b,
    ast.NotEq: lambda a, b: a != b,
    ast.Lt: lambda a, b: a < b,
    ast.LtE: lambda a, b: a <= b,
    ast.Gt: lambda a, b: a > b,
    ast.GtE: lambda a, b: a >= b,
    ast.Is: lambda a, b: a is b,
    ast.IsNot: lambda a, b: a is not b,
    ast.In: lambda a, b: a in b,
    ast.NotIn: lambda a, b: a not in b,
}

_BUILTINS = {
    "len": len, "abs": abs, "int": int, "float": float, "bool": bool,
    "sum": sum, "sorted": sorted, "list": list, "tuple": tuple, "set": set,
    "str": str, "enumerate": enumerate, "zip": zip, "divmod": divmod,
    "round": round,
}

_GLOBAL_VALUES: Dict[str, Any] = {
    "ANY_SOURCE": _WILDCARD,
    "ANY_TAG": _WILDCARD,
    "True": True,
    "False": False,
    "None": None,
}

_INTRINSICS = frozenset(
    set(_BUILTINS)
    | {"range", "min", "max", "next", "print",
       "block_range", "block_ranges", "strip_halo", "grid_halo"}
)

_SHAPE_PRESERVING = frozenset({
    "array", "asarray", "ascontiguousarray", "copy", "roll", "exp", "abs",
    "zeros_like", "ones_like", "empty_like",
})

_STACKING = frozenset({"vstack", "hstack", "stack", "concatenate"})

_COLLECTIVE_SIGNATURES: Dict[str, Tuple[str, ...]] = {
    "barrier": (),
    "bcast": ("value", "root", "algorithm"),
    "reduce": ("value", "op", "root"),
    "allreduce": ("value", "op", "algorithm"),
    "gather": ("value", "root", "algorithm"),
    "allgather": ("value", "algorithm"),
    "scatter": ("values", "root", "algorithm"),
    "alltoall": ("values", "algorithm"),
    "scan": ("value", "op"),
    "reduce_scatter": ("values", "op"),
}

_COLLECTIVE_DEFAULT_ALGO: Dict[str, str] = {
    "barrier": "dissemination",
    "bcast": "tree",
    "reduce": "binomial",
    "allreduce": "reduce_bcast",
    "gather": "tree",
    "allgather": "ring",
    "scatter": "tree",
    "alltoall": "cyclic",
    "scan": "linear",
    "reduce_scatter": "pairwise",
}

_ROOTED = frozenset({"bcast", "reduce", "gather", "scatter"})


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------

def interpret_def(fn: ast.FunctionDef, n_ranks: int, filename: str = "<source>",
                  assume: Optional[Dict[str, Any]] = None) -> SymbolicProgram:
    """Partially evaluate one rank-program definition."""
    program = _Interp(fn, n_ranks, filename, assume=assume).run()
    return program


def interpret_source(source: str, n_ranks: int, filename: str = "<source>",
                     *, line_offset: int = 0,
                     assume: Optional[Dict[str, Any]] = None
                     ) -> List[SymbolicProgram]:
    """All rank programs in a source string, symbolically evaluated."""
    try:
        tree = ast.parse(textwrap.dedent(source), filename=filename)
    except SyntaxError as exc:
        raise AnalysisError(f"{filename}: cannot parse: {exc}") from exc
    if line_offset:
        ast.increment_lineno(tree, line_offset)
    return [
        interpret_def(fn, n_ranks, filename, assume=assume)
        for fn in iter_program_defs(tree)
    ]


def interpret_program(fn_or_source: Union[Callable, str], n_ranks: int,
                      *, assume: Optional[Dict[str, Any]] = None
                      ) -> SymbolicProgram:
    """Symbolically evaluate one rank program (function or source)."""
    if isinstance(fn_or_source, str):
        programs = interpret_source(fn_or_source, n_ranks, assume=assume)
        if not programs:
            raise AnalysisError("no rank program found in source")
        return programs[0]
    try:
        source = inspect.getsource(fn_or_source)
        filename = inspect.getsourcefile(fn_or_source) or "<source>"
        _, first_line = inspect.getsourcelines(fn_or_source)
    except (OSError, TypeError) as exc:
        raise AnalysisError(
            f"cannot retrieve source for {fn_or_source!r}: {exc}"
        ) from exc
    programs = interpret_source(
        source, n_ranks, filename, line_offset=first_line - 1, assume=assume
    )
    for program in programs:
        if program.name == getattr(fn_or_source, "__name__", None):
            return program
    if not programs:
        raise AnalysisError(f"no rank program found in {filename}")
    return programs[0]
