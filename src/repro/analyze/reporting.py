"""Render findings for terminals and CI logs."""

from __future__ import annotations

import json
from typing import Iterable, List

from repro.analyze.findings import Finding, sort_findings


def summarize(findings: Iterable[Finding]) -> str:
    """``"3 findings (2 errors, 1 warning) in 2 files"``."""
    items: List[Finding] = list(findings)
    if not items:
        return "no issues found"
    errors = sum(1 for f in items if f.severity == "error")
    warnings = len(items) - errors
    files = len({f.file for f in items})
    plural = "s" if len(items) != 1 else ""
    parts = []
    if errors:
        parts.append(f"{errors} error{'s' if errors != 1 else ''}")
    if warnings:
        parts.append(f"{warnings} warning{'s' if warnings != 1 else ''}")
    file_plural = "s" if files != 1 else ""
    return (
        f"{len(items)} finding{plural} ({', '.join(parts)}) "
        f"in {files} file{file_plural}"
    )


def format_findings(findings: Iterable[Finding], *, summary: bool = True) -> str:
    """One ``file:line: CODE severity: message`` line per finding, in
    deterministic order, plus a closing summary line."""
    items = sort_findings(findings)
    lines = [f.render() for f in items]
    if summary:
        if lines:
            lines.append("")
        lines.append(summarize(items))
    return "\n".join(lines)


def format_findings_json(findings: Iterable[Finding]) -> str:
    """One JSON object per line (JSON-lines), in deterministic order,
    so CI and ``repro.report`` can consume lint output without parsing
    human-readable text.  Empty string when there are no findings."""
    items = sort_findings(findings)
    return "\n".join(json.dumps(f.to_dict(), sort_keys=False) for f in items)
