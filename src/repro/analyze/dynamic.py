"""Dynamic confirmation: run a suspect program under forced rendezvous.

The static rules flag *hazards*; this module turns a hazard into a
reproduced failure.  :func:`confirm_deadlock` executes the rank program
on a tiny crossbar machine with the eager threshold at zero, so every
payload-bearing send takes the rendezvous path -- the regime where
W004-style bugs actually deadlock.  On deadlock it returns the
:class:`~repro.util.errors.DeadlockError`, whose ``wait_for`` graph and
``cycle`` attributes (built by the engine's wait-for-graph explainer)
identify the ranks involved; a clean run returns ``None``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.util.errors import DeadlockError


def _toy_machine(n_ranks: int):
    from repro.machine import FullyConnected, LinkModel, Machine, NodeSpec

    return Machine(
        name="lint-confirm",
        node=NodeSpec("lint", peak_flops=1e8, memory_bytes=1e9,
                      sustained_fraction=1.0),
        topology=FullyConnected(n_ranks),
        link=LinkModel(latency_s=1e-5, bandwidth_bytes_per_s=1e8),
    )


def confirm_deadlock(
    program: Callable,
    *args: Any,
    n_ranks: int = 2,
    machine: Any = None,
    eager_threshold_bytes: float = 0.0,
    max_events: int = 1_000_000,
    **kwargs: Any,
) -> Optional[DeadlockError]:
    """Execute ``program`` under forced rendezvous; return the
    :class:`DeadlockError` if it deadlocks, else ``None``.

    The default ``eager_threshold_bytes=0.0`` sends every non-empty
    payload through the rendezvous handshake, the strictest legal MPI
    semantics -- a program that survives it is safe at any threshold.
    """
    from repro.simmpi.engine import Engine

    if machine is None:
        machine = _toy_machine(n_ranks)
    engine = Engine(
        machine,
        n_ranks,
        eager_threshold_bytes=eager_threshold_bytes,
        max_events=max_events,
    )
    try:
        engine.run(program, *args, **kwargs)
    except DeadlockError as err:
        return err
    return None
