"""Named, traced workloads for the ``repro profile`` CLI.

Each profile runs one of the repository's distributed algorithms with
span tracing enabled and returns the :class:`SimResult`; the CLI then
feeds it to the critical-path analyser, the text timeline and the
Chrome-trace exporter.  Sizes default to something that runs in well
under a second -- profiling is about *where the virtual time goes*, not
about large numerics.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

from repro.simmpi.delivery import DeliveryModel
from repro.simmpi.engine import SimResult
from repro.util.errors import ConfigurationError

_Delivery = Union[str, DeliveryModel]


def _profile_lu(machine, ranks, size, overlap, eager, delivery, seed) -> SimResult:
    from repro.linalg.blocklu import make_test_matrix
    from repro.linalg.decomp import near_square_grid
    from repro.linalg.lu2d import lu2d

    grid = near_square_grid(ranks)
    res = lu2d(
        machine, grid, make_test_matrix(size, seed=seed),
        nb=max(1, size // (4 * grid.prows)), seed=seed, overlap=overlap,
        eager_threshold_bytes=eager, delivery=delivery, trace=True,
    )
    return res.sim


def _profile_summa(machine, ranks, size, overlap, eager, delivery, seed) -> SimResult:
    import numpy as np

    from repro.linalg.decomp import near_square_grid
    from repro.linalg.summa import summa

    grid = near_square_grid(ranks)
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((size, size))
    b = rng.standard_normal((size, size))
    res = summa(
        machine, grid, a, b, panel=max(1, size // (2 * grid.pcols)),
        seed=seed, overlap=overlap, eager_threshold_bytes=eager,
        delivery=delivery, trace=True,
    )
    return res.sim


def _profile_cg(machine, ranks, size, overlap, eager, delivery, seed) -> SimResult:
    from repro.linalg.cg import distributed_cg, make_spd_matrix

    import numpy as np

    a = make_spd_matrix(size, seed=seed)
    b = np.ones(size)
    res = distributed_cg(
        machine, ranks, a, b, tol=1e-8, seed=seed, overlap=overlap,
        eager_threshold_bytes=eager, delivery=delivery, trace=True,
    )
    return res.sim


def _profile_cannon(machine, ranks, size, overlap, eager, delivery, seed) -> SimResult:
    import math

    import numpy as np

    from repro.linalg.cannon import cannon

    q = math.isqrt(ranks)
    if q * q != ranks:
        raise ConfigurationError(
            f"cannon needs a square rank count, got {ranks}"
        )
    n = size - size % q if size % q else size
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    return cannon(machine, q, a, b, seed=seed, trace=True).sim


def _profile_ocean(machine, ranks, size, overlap, eager, delivery, seed) -> SimResult:
    from repro.apps.ocean import OceanConfig, distributed_run, gaussian_bump

    config = OceanConfig(nx=size, ny=size)
    state = gaussian_bump(config)
    return distributed_run(
        machine, ranks, state, config, steps=8, seed=seed, trace=True
    ).sim


def _profile_nbody(machine, ranks, size, overlap, eager, delivery, seed) -> SimResult:
    from repro.apps.nbody import distributed_run, random_cluster

    bodies = random_cluster(max(size, ranks), seed=seed)
    return distributed_run(
        machine, ranks, bodies, steps=2, seed=seed, trace=True
    ).sim


def _profile_poisson(machine, ranks, size, overlap, eager, delivery, seed) -> SimResult:
    from repro.apps.poisson import PoissonConfig, distributed_solve, smooth_source

    config = PoissonConfig(nx=size, ny=size)
    res = distributed_solve(
        machine, ranks, smooth_source(config), config,
        tol=1e-3, max_sweeps=2000, seed=seed, trace=True,
    )
    return res.sim


def _profile_md(machine, ranks, size, overlap, eager, delivery, seed) -> SimResult:
    from repro.apps.md import MDConfig, distributed_run, lattice_fluid

    config = MDConfig(box=float(max(ranks, 4)) * 2.5)
    particles = lattice_fluid(size, config, seed=seed)
    return distributed_run(
        machine, ranks, particles, config, steps=3, seed=seed, trace=True
    ).sim


def _profile_cfd(machine, ranks, size, overlap, eager, delivery, seed) -> SimResult:
    from repro.apps.cfd import CFDConfig, distributed_run, gaussian_blob

    config = CFDConfig(nx=size, ny=size)
    u0 = gaussian_blob(config)
    return distributed_run(
        machine, ranks, u0, config, steps=8, seed=seed, trace=True
    ).sim


#: name -> (runner, default ranks, default size)
PROFILES: Dict[str, tuple] = {
    "lu": (_profile_lu, 16, 96),
    "summa": (_profile_summa, 16, 96),
    "cg": (_profile_cg, 8, 96),
    "cannon": (_profile_cannon, 16, 96),
    "ocean": (_profile_ocean, 8, 48),
    "nbody": (_profile_nbody, 8, 64),
    "poisson": (_profile_poisson, 8, 32),
    "md": (_profile_md, 4, 64),
    "cfd": (_profile_cfd, 8, 48),
}


def run_profile(
    name: str,
    machine,
    *,
    ranks: int = 0,
    size: int = 0,
    overlap: bool = False,
    eager_threshold_bytes: float = float("inf"),
    delivery: _Delivery = "alphabeta",
    seed: int = 0,
) -> SimResult:
    """Run one named workload traced; returns its :class:`SimResult`."""
    try:
        runner, default_ranks, default_size = PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown profile {name!r}; available: {sorted(PROFILES)}"
        ) from None
    ranks = ranks or default_ranks
    size = size or default_size
    return runner(
        machine, ranks, size, overlap, eager_threshold_bytes, delivery, seed
    )


def profile_report(
    result: SimResult,
    *,
    top: int = 5,
    timeline: bool = False,
    timeline_width: int = 72,
) -> str:
    """Full text report: critical path plus optional timeline."""
    from repro.obs.critical_path import critical_path
    from repro.obs.timeline import span_timeline

    path = critical_path(result)
    parts = [path.describe(top=top)]
    if timeline:
        parts.append("")
        parts.append(span_timeline(result, width=timeline_width))
    return "\n".join(parts)


def profile_summary_line(name: str, result: SimResult) -> str:
    """One-line summary for embedding in the ``repro all`` report."""
    from repro.obs.critical_path import critical_path
    from repro.obs.diff import segments_summary

    path = critical_path(result)
    cats = ", ".join(segments_summary(path, top=3))
    return (
        f"{name}: makespan {result.time:.6g} s on {result.n_ranks} ranks; "
        f"critical path = {cats}"
    )
