"""Critical-path extraction from a traced simulation.

The span trace of a run (``Engine(trace=True)``) gives, per rank, a
chronological list of typed activity intervals tiling ``[0, finish]``,
where every span whose end time was *decided by another rank* carries a
binding :class:`~repro.simmpi.trace.SpanCause`.  The makespan of the
run is therefore the end of one specific causal chain -- compute bursts,
send startups, wire transfers, rendezvous handshakes -- threading
through the ranks.  This module walks that chain backwards from the
last finish to virtual time zero and reports where the makespan
actually went: the classic critical-path analysis of parallel-program
tracing tools (IPS, Paradyn-era), applied to simulated runs.

Walk invariants
---------------

* The cursor starts at the makespan (the latest ``finish_time``; per
  rank the last span ends exactly there because spans tile) and only
  moves backwards along span boundaries and causal edges.
* Every step attributes exactly ``old_cursor - new_cursor`` seconds to
  one :class:`PathSegment`, so the total path length **telescopes**:
  ``length == makespan - final_cursor``, float-exact, and the walk ends
  at exactly 0.0 (rank timelines start at exactly 0.0).
* A message edge splits its wire interval at the uncontended
  alpha-beta arrival: time up to it is ``wire``, any excess is
  ``contention-stall`` (shared links / FIFO ordering).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.simmpi.engine import SimResult
from repro.simmpi.trace import COMPUTE, IDLE, Span
from repro.util.errors import SimulationError

#: Synthesized path categories (never recorded by the engine).
WIRE = "wire"
CONTENTION = "contention-stall"


@dataclass(frozen=True)
class PathSegment:
    """One stretch of the critical path.

    For ``wire``/``contention-stall`` segments ``rank`` is the
    receiving rank and ``peer`` the sender; for engine-recorded span
    kinds they mirror the span's fields.
    """

    rank: int
    kind: str
    t0: float
    t1: float
    name: Optional[str] = None
    peer: int = -1
    nbytes: float = 0.0

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass
class CriticalPath:
    """The makespan-determining chain of one traced run."""

    segments: List[PathSegment]
    makespan: float
    #: Telescoped path length; equals ``makespan`` when the walk
    #: reached virtual time zero (``complete``).
    length: float
    complete: bool = True

    def by_category(self) -> Dict[str, float]:
        """Seconds of critical path per segment kind."""
        out: Dict[str, float] = {}
        for seg in self.segments:
            out[seg.kind] = out.get(seg.kind, 0.0) + seg.duration
        return out

    def by_rank(self) -> Dict[int, float]:
        """Seconds of critical path per rank (wire time is attributed
        to the receiving rank)."""
        out: Dict[int, float] = {}
        for seg in self.segments:
            out[seg.rank] = out.get(seg.rank, 0.0) + seg.duration
        return out

    def by_phase(self) -> Dict[str, float]:
        """Seconds of critical path per phase label (``"-"`` when the
        activity ran outside any ``comm.phase`` block)."""
        out: Dict[str, float] = {}
        for seg in self.segments:
            key = seg.name or "-"
            out[key] = out.get(key, 0.0) + seg.duration
        return out

    def by_link(self) -> Dict[Tuple[int, int], float]:
        """Wire + contention seconds per (src, dst) rank pair."""
        out: Dict[Tuple[int, int], float] = {}
        for seg in self.segments:
            if seg.kind in (WIRE, CONTENTION):
                key = (seg.peer, seg.rank)
                out[key] = out.get(key, 0.0) + seg.duration
        return out

    def top_elongations(self, k: int = 10) -> List[PathSegment]:
        """The ``k`` longest non-compute segments: the waits, wires and
        stalls elongating the makespan beyond the compute chain."""
        stretchers = [s for s in self.segments if s.kind != COMPUTE and s.duration > 0]
        stretchers.sort(key=lambda s: (-s.duration, s.t0))
        return stretchers[:k]

    def describe(self, top: int = 5) -> str:
        """Human-readable breakdown."""
        lines = [
            f"critical path: {self.length:.6g} s over {len(self.segments)} "
            f"segments (makespan {self.makespan:.6g} s)"
        ]
        if not self.complete:
            lines.append("  [walk incomplete: span trace was truncated]")
        cats = sorted(self.by_category().items(), key=lambda kv: -kv[1])
        for kind, secs in cats:
            pct = 100.0 * secs / self.length if self.length > 0 else 0.0
            lines.append(f"  {kind:<16} {secs:12.6g} s  {pct:5.1f}%")
        phases = [(k, v) for k, v in self.by_phase().items() if k != "-"]
        if phases:
            lines.append("  by phase:")
            for name, secs in sorted(phases, key=lambda kv: -kv[1])[:top]:
                pct = 100.0 * secs / self.length if self.length > 0 else 0.0
                lines.append(f"    {name:<20} {secs:12.6g} s  {pct:5.1f}%")
        tops = self.top_elongations(top)
        if tops:
            lines.append(f"  top {len(tops)} elongations:")
            for seg in tops:
                where = f"rank {seg.rank}"
                if seg.peer >= 0:
                    where += f" <- {seg.peer}" if seg.kind in (WIRE, CONTENTION) else f" / {seg.peer}"
                label = f" [{seg.name}]" if seg.name else ""
                lines.append(
                    f"    {seg.kind:<16} {seg.duration:10.6g} s  {where}"
                    f" @ t={seg.t0:.6g}{label}"
                )
        return "\n".join(lines)


@dataclass
class _RankIndex:
    """Per-rank span list with an end-time index for boundary lookup."""

    spans: List[Span]
    ends: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.ends = [s.t1 for s in self.spans]

    def span_ending_at(self, cursor: float) -> Optional[Span]:
        """The span occupying ``cursor`` from below: the first span
        with ``t1 >= cursor`` (tiling makes its ``t0 <= cursor``;
        zero-length spans exactly at the cursor are skipped naturally
        because an earlier span shares their end time)."""
        i = bisect_left(self.ends, cursor)
        if i >= len(self.spans):
            return None
        return self.spans[i]


def critical_path(result: SimResult) -> CriticalPath:
    """Extract the makespan-determining chain from a traced run."""
    tracer = result.tracer
    if not tracer.enabled or not tracer.spans:
        raise SimulationError(
            "critical_path needs a span trace: run with Engine(trace=True)"
        )
    truncated = tracer.dropped_spans > 0
    index = {
        rank: _RankIndex(spans) for rank, spans in tracer.spans_by_rank().items()
    }

    makespan = result.time
    # Start on the rank that finished last (its final span ends there).
    rank = max(range(len(result.stats)), key=lambda r: result.stats[r].finish_time)
    cursor = makespan
    segments: List[PathSegment] = []
    complete = True

    def emit(seg_rank, kind, t0, t1, *, name=None, peer=-1, nbytes=0.0):
        if t1 > t0:
            segments.append(
                PathSegment(
                    rank=seg_rank, kind=kind, t0=t0, t1=t1,
                    name=name, peer=peer, nbytes=nbytes,
                )
            )

    # Generous step budget: each step either consumes a span or jumps a
    # causal edge, both bounded by the trace size.
    budget = 4 * len(tracer.spans) + 1000
    while cursor > 0.0:
        budget -= 1
        if budget < 0:
            complete = False
            break
        ri = index.get(rank)
        span = ri.span_ending_at(cursor) if ri is not None else None
        if span is None:
            # Past the rank's recorded timeline (possible only on a
            # truncated trace): close out as idle and stop.
            last = ri.ends[-1] if ri is not None and ri.ends else 0.0
            emit(rank, IDLE, last, cursor)
            cursor = last
            if cursor > 0.0:
                complete = False
                break
            continue
        cause = span.cause if span.t1 == cursor else None
        if cause is None:
            # Local step: the span itself carried the chain.
            emit(
                rank, span.kind, span.t0, cursor,
                name=span.name, peer=span.peer, nbytes=span.nbytes,
            )
            cursor = span.t0
        elif cause.kind == "msg":
            # A message arrival ended this wait: cross the wire back to
            # the sender, splitting contention excess from wire time.
            ws = min(cause.wire_start, cursor)
            split = min(cursor, max(ws, cause.wire_min_end))
            emit(
                rank, CONTENTION, split, cursor,
                name=span.name, peer=cause.src_rank, nbytes=span.nbytes,
            )
            emit(
                rank, WIRE, ws, split,
                name=span.name, peer=cause.src_rank, nbytes=span.nbytes,
            )
            cursor = ws
            rank = cause.src_rank
        else:
            # A remote rank's action (rendezvous handshake) ended this
            # span; the stretch back to the handshake is protocol time
            # charged to this span's kind, then the chain continues on
            # the remote timeline.
            src_time = min(cause.src_time, cursor)
            emit(
                rank, span.kind, src_time, cursor,
                name=span.name, peer=span.peer, nbytes=span.nbytes,
            )
            cursor = src_time
            rank = cause.src_rank

    length = makespan - cursor
    segments.reverse()
    return CriticalPath(
        segments=segments,
        makespan=makespan,
        length=length,
        complete=complete and not truncated and cursor == 0.0,
    )
