"""Chrome ``trace_event`` export for traced simulated runs.

Produces the JSON object format consumed by ``chrome://tracing`` and
Perfetto: one complete (``"X"``) event per span with microsecond
timestamps, a thread per rank, and flow (``"s"``/``"f"``) event pairs
drawing message arrows from sender to receiver.  Virtual seconds map
to trace microseconds, so a 0.3 s simulated run renders as a 300 ms
timeline.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.simmpi.engine import SimResult
from repro.util.errors import SimulationError

#: Virtual seconds -> trace microseconds.
_US = 1e6


def chrome_trace(result: SimResult) -> Dict[str, Any]:
    """Build the ``trace_event`` object for one traced run."""
    tracer = result.tracer
    if not tracer.enabled:
        raise SimulationError(
            "chrome_trace needs a trace: run with Engine(trace=True)"
        )
    events: List[Dict[str, Any]] = []
    for rank in range(len(result.stats)):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": rank,
                "args": {"name": f"rank {rank}"},
            }
        )
    for span in tracer.spans:
        args: Dict[str, Any] = {"kind": span.kind}
        if span.peer >= 0:
            args["peer"] = span.peer
        if span.nbytes:
            args["nbytes"] = span.nbytes
        events.append(
            {
                "ph": "X",
                "name": span.name or span.kind,
                "cat": span.kind,
                "ts": span.t0 * _US,
                "dur": span.duration * _US,
                "pid": 0,
                "tid": span.rank,
                "args": args,
            }
        )
    for i, rec in enumerate(tracer.records):
        common = {"name": "msg", "cat": "msg", "pid": 0, "id": i}
        events.append(
            {
                **common,
                "ph": "s",
                "ts": rec.send_time * _US,
                "tid": rec.source,
                "args": {"nbytes": rec.nbytes, "tag": rec.tag},
            }
        )
        events.append(
            {
                **common,
                "ph": "f",
                "bp": "e",
                "ts": rec.arrival_time * _US,
                "tid": rec.dest,
                "args": {"nbytes": rec.nbytes, "tag": rec.tag},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "n_ranks": len(result.stats),
            "makespan_s": result.time,
            "spans": len(tracer.spans),
            "messages": len(tracer.records),
            "dropped_spans": tracer.dropped_spans,
            "dropped_messages": tracer.dropped,
        },
    }


def write_chrome_trace(result: SimResult, path: str) -> str:
    """Write the trace JSON to ``path``; returns the path."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(result), fh)
    return path
