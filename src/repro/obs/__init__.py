"""repro.obs: observability for simulated runs.

Span tracing lives in the engine (:mod:`repro.simmpi.trace`); this
package analyses and exports the traces:

* :mod:`repro.obs.critical_path` -- walk the span/cause DAG backwards
  from the last finish to the makespan-determining chain;
* :mod:`repro.obs.chrome_trace` -- ``chrome://tracing`` / Perfetto
  JSON export;
* :mod:`repro.obs.timeline` -- plain-text per-rank activity strips;
* :mod:`repro.obs.diff` -- critical-path diffing between two runs;
* :mod:`repro.obs.profile` -- named traced workloads for the
  ``repro profile`` CLI.
"""

from repro.obs.chrome_trace import chrome_trace, write_chrome_trace
from repro.obs.critical_path import (
    CONTENTION,
    WIRE,
    CriticalPath,
    PathSegment,
    critical_path,
)
from repro.obs.diff import RunDiff, diff_runs
from repro.obs.profile import (
    PROFILES,
    profile_report,
    profile_summary_line,
    run_profile,
)
from repro.obs.timeline import span_timeline

__all__ = [
    "CONTENTION",
    "WIRE",
    "CriticalPath",
    "PathSegment",
    "PROFILES",
    "RunDiff",
    "chrome_trace",
    "critical_path",
    "diff_runs",
    "profile_report",
    "profile_summary_line",
    "run_profile",
    "span_timeline",
    "write_chrome_trace",
]
