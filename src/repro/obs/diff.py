"""Run diffing: where did the time go between two configurations?

Compares two traced runs of the same workload -- e.g. ``overlap=False``
vs ``overlap=True`` SUMMA, or eager vs rendezvous LU -- through their
critical paths and aggregate accounting, and reports the per-category
deltas that explain the makespan change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.obs.critical_path import CriticalPath, critical_path
from repro.simmpi.engine import SimResult


@dataclass
class RunDiff:
    """Structured comparison of two traced runs."""

    label_a: str
    label_b: str
    time_a: float
    time_b: float
    path_a: CriticalPath
    path_b: CriticalPath
    messages_a: int
    messages_b: int
    bytes_a: float
    bytes_b: float

    @property
    def speedup(self) -> float:
        """Makespan ratio a/b (> 1 means b is faster)."""
        return self.time_a / self.time_b if self.time_b > 0 else float("inf")

    def category_delta(self) -> Dict[str, float]:
        """Critical-path seconds by category, b minus a (negative means
        b spends less makespan on that category)."""
        cat_a = self.path_a.by_category()
        cat_b = self.path_b.by_category()
        out: Dict[str, float] = {}
        for kind in sorted(set(cat_a) | set(cat_b)):
            out[kind] = cat_b.get(kind, 0.0) - cat_a.get(kind, 0.0)
        return out

    def describe(self) -> str:
        a, b = self.label_a, self.label_b
        lines = [
            f"run diff: {a} vs {b}",
            f"  makespan      {self.time_a:12.6g} s -> {self.time_b:12.6g} s"
            f"  ({self.speedup:.3f}x)",
            f"  messages      {self.messages_a:12d}   -> {self.messages_b:12d}",
            f"  bytes         {self.bytes_a:12.6g}   -> {self.bytes_b:12.6g}",
            "  critical path by category (delta = b - a):",
        ]
        cat_a = self.path_a.by_category()
        cat_b = self.path_b.by_category()
        deltas = self.category_delta()
        for kind, delta in sorted(deltas.items(), key=lambda kv: kv[1]):
            lines.append(
                f"    {kind:<16} {cat_a.get(kind, 0.0):12.6g} -> "
                f"{cat_b.get(kind, 0.0):12.6g}  ({delta:+.6g})"
            )
        return "\n".join(lines)


def diff_runs(
    a: SimResult,
    b: SimResult,
    *,
    label_a: str = "a",
    label_b: str = "b",
) -> RunDiff:
    """Diff two traced runs via their critical paths."""
    return RunDiff(
        label_a=label_a,
        label_b=label_b,
        time_a=a.time,
        time_b=b.time,
        path_a=critical_path(a),
        path_b=critical_path(b),
        messages_a=a.total_messages,
        messages_b=b.total_messages,
        bytes_a=a.total_bytes,
        bytes_b=b.total_bytes,
    )


def segments_summary(path: CriticalPath, top: int = 3) -> List[str]:
    """Short per-category lines for embedding in reports."""
    lines = []
    for kind, secs in sorted(path.by_category().items(), key=lambda kv: -kv[1])[:top]:
        pct = 100.0 * secs / path.length if path.length > 0 else 0.0
        lines.append(f"{kind} {pct:.0f}%")
    return lines
