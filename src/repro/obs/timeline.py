"""Plain-text per-rank timeline rendering of a span trace.

One row per rank, one character per time bucket, the bucket showing
whichever activity kind dominated it.  Good enough to spot load
imbalance, serialisation chains and communication storms directly in a
terminal, without loading the Chrome trace.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.simmpi.engine import SimResult
from repro.simmpi.trace import (
    COMPUTE,
    IDLE,
    RECV_WAIT,
    RNDV_WAIT,
    SEND,
    SEND_WAIT,
)
from repro.util.errors import SimulationError

#: One glyph per span kind (dominant activity per bucket).
GLYPHS = {
    COMPUTE: "#",
    SEND: "s",
    RECV_WAIT: ".",
    SEND_WAIT: "w",
    RNDV_WAIT: "r",
    IDLE: " ",
}


def span_timeline(
    result: SimResult,
    *,
    width: int = 72,
    max_ranks: int = 32,
    legend: bool = True,
) -> str:
    """Render the traced run as per-rank activity strips."""
    tracer = result.tracer
    if not tracer.enabled or not tracer.spans:
        raise SimulationError(
            "span_timeline needs a span trace: run with Engine(trace=True)"
        )
    span_map = tracer.spans_by_rank()
    makespan = result.time
    if makespan <= 0:
        return "(empty run: makespan is zero)"
    n_ranks = len(result.stats)
    shown = min(n_ranks, max_ranks)
    dt = makespan / width

    lines: List[str] = [
        f"timeline: {n_ranks} ranks x {makespan:.6g} s "
        f"({dt:.3g} s per column)"
    ]
    label_w = len(str(shown - 1))
    for rank in range(shown):
        # Per bucket, accumulate occupancy per kind; dominant kind wins.
        buckets: List[Optional[Dict[str, float]]] = [None] * width
        for span in span_map.get(rank, []):
            if span.t1 <= span.t0:
                continue
            first = min(width - 1, int(span.t0 / dt))
            last = min(width - 1, int(span.t1 / dt))
            for b in range(first, last + 1):
                b0, b1 = b * dt, (b + 1) * dt
                overlap = min(span.t1, b1) - max(span.t0, b0)
                if overlap <= 0:
                    continue
                cell = buckets[b]
                if cell is None:
                    cell = buckets[b] = {}
                cell[span.kind] = cell.get(span.kind, 0.0) + overlap
        row = "".join(
            GLYPHS.get(max(cell, key=cell.get), "?") if cell else " "
            for cell in buckets
        )
        lines.append(f"r{rank:<{label_w}} |{row}|")
    if shown < n_ranks:
        lines.append(f"... ({n_ranks - shown} more ranks not shown)")
    if legend:
        lines.append(
            "legend: #=compute s=send .=recv-wait w=send-wait "
            "r=rendezvous-wait (blank=idle)"
        )
    return "\n".join(lines)
