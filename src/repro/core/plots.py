"""ASCII charts for terminal reports.

Scaling studies read better as pictures even in a terminal; these
renderers keep the library dependency-free while giving examples and
benchmarks a visual channel (the 1992 equivalent was a pen plotter).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.evaluation import ScalingStudy
from repro.util.errors import ConfigurationError


def ascii_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    width: int = 50,
    height: int = 12,
    title: Optional[str] = None,
    marker: str = "*",
    y_label: str = "",
) -> str:
    """Scatter ``ys`` against ``xs`` on a character grid.

    Axes are linear; the y range is padded to include zero so bar-like
    quantities read intuitively.
    """
    if len(xs) != len(ys):
        raise ConfigurationError(f"{len(xs)} xs vs {len(ys)} ys")
    if not xs:
        raise ConfigurationError("nothing to plot")
    if width < 8 or height < 3:
        raise ConfigurationError("chart must be at least 8x3 characters")

    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(0.0, min(ys)), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:.3g}"
    bottom_label = f"{y_lo:.3g}"
    pad = max(len(top_label), len(bottom_label))
    for i, row_chars in enumerate(grid):
        label = top_label if i == 0 else (bottom_label if i == height - 1 else "")
        lines.append(f"{label:>{pad}} |{''.join(row_chars)}")
    lines.append(f"{'':>{pad}} +{'-' * width}")
    x_axis = f"{x_lo:.3g}"
    x_end = f"{x_hi:.3g}"
    gap = max(1, width - len(x_axis) - len(x_end))
    lines.append(f"{'':>{pad}}  {x_axis}{' ' * gap}{x_end}")
    if y_label:
        lines.append(f"{'':>{pad}}  ({y_label})")
    return "\n".join(lines)


def speedup_chart(study: ScalingStudy, *, width: int = 50, height: int = 12) -> str:
    """Measured speedup (``*``) against the ideal line (``.``)."""
    xs = [float(pt.n_ranks) for pt in study.points]
    measured = [pt.speedup for pt in study.points]
    chart = ascii_chart(
        xs, measured,
        width=width, height=height,
        title=f"Speedup: {study.workload} on {study.machine}",
        marker="*",
        y_label="speedup; '.' = ideal",
    )
    # Overlay the ideal (y = x) line with dots on the chart's own
    # scale, clipping ideal points that exceed the measured range.
    lines = chart.split("\n")
    y_hi = max(0.0, max(measured))
    x_lo, x_hi = xs[0], xs[-1]
    grid_top = 1  # after the title line
    for x in xs:
        if x > y_hi or y_hi == 0.0:
            continue
        col = int((x - x_lo) / (x_hi - x_lo or 1.0) * (width - 1))
        row = int(x / y_hi * (height - 1))
        line_idx = grid_top + (height - 1 - row)
        if 0 <= line_idx < len(lines):
            line = lines[line_idx]
            bar = line.index("|") + 1
            pos = bar + col
            if pos < len(line) and line[pos] == " ":
                lines[line_idx] = line[:pos] + "." + line[pos + 1:]
    return "\n".join(lines)
