"""Evaluation campaigns: scaling studies and machine comparisons.

This is the HPCC "approach" in executable form: take a workload, run it
across partition sizes and machines, and report speedup, efficiency,
and the Amdahl serial-fraction estimate -- the numbers the application
software teams produced when they "utilized and evaluated" the
testbeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.workload import Workload, WorkloadResult
from repro.machine.machine import Machine
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class ScalingPoint:
    """One rank count of a scaling study."""

    n_ranks: int
    result: WorkloadResult
    speedup: float
    efficiency: float


@dataclass
class ScalingStudy:
    """Strong-scaling sweep of one workload on one machine."""

    workload: str
    machine: str
    points: List[ScalingPoint]

    @property
    def baseline_time(self) -> float:
        return self.points[0].result.virtual_time * self.points[0].speedup

    def best_speedup(self) -> ScalingPoint:
        return max(self.points, key=lambda pt: pt.speedup)

    def amdahl_serial_fraction(self) -> float:
        """Least-squares fit of 1/S = f + (1-f)/p over the sweep.

        Returns the estimated serial fraction ``f`` (clamped to [0, 1]).
        With one point the fit is undefined; returns 0.
        """
        if len(self.points) < 2:
            return 0.0
        ps = np.array([pt.n_ranks for pt in self.points], dtype=float)
        inv_s = np.array([1.0 / pt.speedup for pt in self.points])
        # 1/S = f*(1 - 1/p) + 1/p  =>  y = f*x with
        # y = 1/S - 1/p, x = 1 - 1/p.
        x = 1.0 - 1.0 / ps
        y = inv_s - 1.0 / ps
        denom = float(x @ x)
        if denom == 0.0:
            return 0.0
        f = float(x @ y) / denom
        return min(max(f, 0.0), 1.0)


def scaling_study(
    workload: Workload,
    machine: Machine,
    rank_counts: Sequence[int],
    *,
    seed: int = 0,
) -> ScalingStudy:
    """Run ``workload`` at each rank count; speedups are relative to the
    smallest count in the sweep (include 1 for true strong scaling)."""
    counts = sorted(set(rank_counts))
    if not counts:
        raise ConfigurationError("rank_counts must be non-empty")
    if counts[0] < 1:
        raise ConfigurationError(f"rank counts must be >= 1, got {counts[0]}")
    results = [workload.run(machine.subset(p) if p < machine.n_nodes else machine,
                            p, seed=seed) for p in counts]
    base_p = counts[0]
    base_time = results[0].virtual_time
    points = []
    for p, res in zip(counts, results):
        speedup = base_p * base_time / res.virtual_time if res.virtual_time > 0 else float("inf")
        points.append(
            ScalingPoint(
                n_ranks=p,
                result=res,
                speedup=speedup,
                efficiency=speedup / p,
            )
        )
    return ScalingStudy(workload=workload.name, machine=machine.name, points=points)


@dataclass(frozen=True)
class WeakScalingPoint:
    """One rank count of a weak-scaling (scaled-speedup) study."""

    n_ranks: int
    result: WorkloadResult
    #: t_base / t_p -- ideal weak scaling keeps time constant (1.0).
    efficiency: float


@dataclass
class WeakScalingStudy:
    """Gustafson-style sweep: the problem grows with the machine."""

    workload_family: str
    machine: str
    points: List[WeakScalingPoint]

    def final_efficiency(self) -> float:
        return self.points[-1].efficiency


def weak_scaling_study(
    workload_factory,
    machine: Machine,
    rank_counts: Sequence[int],
    *,
    seed: int = 0,
) -> WeakScalingStudy:
    """Run ``workload_factory(p)`` at each rank count ``p``.

    The factory must scale the problem proportionally to ``p`` (e.g.
    rows = base_rows * p); efficiency is base time over each time, so a
    perfectly-scaling code holds 1.0 -- Gustafson's scaled speedup, the
    methodology the Delta's Grand Challenge results were reported in.
    """
    counts = sorted(set(rank_counts))
    if not counts:
        raise ConfigurationError("rank_counts must be non-empty")
    if counts[0] < 1:
        raise ConfigurationError(f"rank counts must be >= 1, got {counts[0]}")
    points = []
    base_time = None
    family = None
    for p in counts:
        workload = workload_factory(p)
        family = family or workload.name
        target = machine.subset(p) if p < machine.n_nodes else machine
        result = workload.run(target, p, seed=seed)
        if base_time is None:
            base_time = result.virtual_time
        eff = base_time / result.virtual_time if result.virtual_time > 0 else 1.0
        points.append(WeakScalingPoint(n_ranks=p, result=result, efficiency=eff))
    return WeakScalingStudy(
        workload_family=family, machine=machine.name, points=points
    )


@dataclass(frozen=True)
class MachineComparison:
    """One workload run on several machines at a fixed rank count."""

    workload: str
    n_ranks: int
    results: List[WorkloadResult]

    def winner(self) -> WorkloadResult:
        return min(self.results, key=lambda r: r.virtual_time)

    def speedup_over(self, baseline_machine: str) -> dict:
        """Each machine's speedup relative to the named baseline."""
        base = next(
            (r for r in self.results if r.machine == baseline_machine), None
        )
        if base is None:
            raise ConfigurationError(
                f"baseline {baseline_machine!r} not among "
                f"{[r.machine for r in self.results]}"
            )
        return {
            r.machine: base.virtual_time / r.virtual_time for r in self.results
        }


def compare_machines(
    workload: Workload,
    machines: Sequence[Machine],
    n_ranks: int,
    *,
    seed: int = 0,
) -> MachineComparison:
    """Run the same workload and rank count on each machine."""
    if not machines:
        raise ConfigurationError("machines must be non-empty")
    results = []
    for machine in machines:
        target = machine.subset(n_ranks) if n_ranks < machine.n_nodes else machine
        results.append(workload.run(target, n_ranks, seed=seed))
    return MachineComparison(
        workload=workload.name, n_ranks=n_ranks, results=results
    )
