"""Speedup laws: the analytic backbone of 1992 scalability arguments.

Amdahl's law bounded fixed-size speedup and was the stock argument
*against* massive parallelism; Gustafson's scaled speedup (from Sandia,
1988) was the program's counter.  The Karp-Flatt metric turns measured
speedups back into an experimentally-determined serial fraction, which
is how application teams diagnosed their codes.

These closed forms complement the measured studies in
:mod:`repro.core.evaluation`: tests cross-check the simulator's scaling
output against them.
"""

from __future__ import annotations

from typing import Sequence

from repro.util.errors import ConfigurationError


def _check_fraction(f: float) -> None:
    if not 0.0 <= f <= 1.0:
        raise ConfigurationError(f"serial fraction must be in [0, 1], got {f}")


def _check_ranks(p: int) -> None:
    if p < 1:
        raise ConfigurationError(f"rank count must be >= 1, got {p}")


def amdahl_speedup(serial_fraction: float, p: int) -> float:
    """Fixed-size speedup bound: 1 / (f + (1-f)/p)."""
    _check_fraction(serial_fraction)
    _check_ranks(p)
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / p)


def amdahl_limit(serial_fraction: float) -> float:
    """Asymptotic speedup ceiling 1/f (infinite for f = 0)."""
    _check_fraction(serial_fraction)
    if serial_fraction == 0.0:
        return float("inf")
    return 1.0 / serial_fraction


def gustafson_speedup(serial_fraction: float, p: int) -> float:
    """Scaled speedup: f + (1-f) * p.

    The problem grows with the machine so the parallel part stays a
    constant share of wall time -- the Delta's Grand Challenge results
    were reported this way.
    """
    _check_fraction(serial_fraction)
    _check_ranks(p)
    return serial_fraction + (1.0 - serial_fraction) * p


def karp_flatt(speedup: float, p: int) -> float:
    """Experimentally-determined serial fraction.

        e = (1/S - 1/p) / (1 - 1/p)

    Rising e with p indicates communication overhead, not just inherent
    serial work -- the diagnostic the metric was invented for.
    """
    _check_ranks(p)
    if p == 1:
        raise ConfigurationError("Karp-Flatt is undefined at p = 1")
    if speedup <= 0:
        raise ConfigurationError(f"speedup must be positive, got {speedup}")
    return (1.0 / speedup - 1.0 / p) / (1.0 - 1.0 / p)


def efficiency(speedup: float, p: int) -> float:
    """Parallel efficiency S/p."""
    _check_ranks(p)
    if speedup < 0:
        raise ConfigurationError(f"speedup must be >= 0, got {speedup}")
    return speedup / p


def isoefficiency_problem_growth(
    efficiencies: Sequence[float],
    problem_sizes: Sequence[float],
    target: float,
) -> float:
    """Crude isoefficiency estimate: smallest measured problem size
    whose efficiency meets ``target`` (inf if none does).

    A full isoefficiency function needs the overhead model; given only
    a sweep of (size, efficiency) pairs this returns the empirical
    threshold, which is what teams actually read off their plots.
    """
    if len(efficiencies) != len(problem_sizes):
        raise ConfigurationError(
            f"{len(efficiencies)} efficiencies vs {len(problem_sizes)} sizes"
        )
    if not 0.0 < target <= 1.0:
        raise ConfigurationError(f"target must be in (0, 1], got {target}")
    qualifying = [
        size for size, eff in zip(problem_sizes, efficiencies) if eff >= target
    ]
    return min(qualifying) if qualifying else float("inf")
