"""Text reports for evaluation results (used by examples and benches)."""

from __future__ import annotations


from repro.core.evaluation import MachineComparison, ScalingStudy, WeakScalingStudy
from repro.util.tables import render_table
from repro.util.units import format_time


def scaling_table(study: ScalingStudy) -> str:
    """Render a strong-scaling sweep."""
    rows = []
    for pt in study.points:
        rows.append([
            pt.n_ranks,
            format_time(pt.result.virtual_time),
            pt.speedup,
            100.0 * pt.efficiency,
            100.0 * pt.result.comm_fraction,
        ])
    return render_table(
        ["Ranks", "Time", "Speedup", "Efficiency %", "Comm %"],
        rows,
        title=f"Scaling: {study.workload} on {study.machine}",
        float_fmt=",.2f",
    )


def weak_scaling_table(study: WeakScalingStudy) -> str:
    """Render a scaled-speedup sweep."""
    rows = []
    for pt in study.points:
        rows.append([
            pt.n_ranks,
            pt.result.workload,
            format_time(pt.result.virtual_time),
            100.0 * pt.efficiency,
            100.0 * pt.result.comm_fraction,
        ])
    return render_table(
        ["Ranks", "Problem", "Time", "Weak eff. %", "Comm %"],
        rows,
        title=f"Weak scaling: {study.workload_family} family on {study.machine}",
        float_fmt=",.2f",
    )


def comparison_table(cmp: MachineComparison) -> str:
    """Render a machine shoot-out at fixed rank count."""
    fastest = cmp.winner().virtual_time
    rows = []
    for res in sorted(cmp.results, key=lambda r: r.virtual_time):
        rows.append([
            res.machine,
            format_time(res.virtual_time),
            res.virtual_time / fastest,
            100.0 * res.comm_fraction,
        ])
    return render_table(
        ["Machine", "Time", "Slowdown vs best", "Comm %"],
        rows,
        title=f"{cmp.workload} at {cmp.n_ranks} ranks",
        float_fmt=",.2f",
    )


def amdahl_summary(study: ScalingStudy) -> str:
    """One-line Amdahl diagnosis for a study."""
    f = study.amdahl_serial_fraction()
    best = study.best_speedup()
    limit = "unbounded" if f == 0 else f"{1.0 / f:,.0f}x"
    return (
        f"{study.workload}: serial fraction ~{100 * f:.2f}% "
        f"(Amdahl ceiling {limit}); best observed {best.speedup:.1f}x "
        f"at {best.n_ranks} ranks"
    )
