"""Testbeds: machine + network + home site, the program's deliverable.

"ESTABLISH HIGH PERFORMANCE COMPUTING TESTBEDS" is the first line of
the paper's approach slide.  A :class:`Testbed` binds a simulated
machine to its consortium network location so campaigns can answer the
full user-experience question: run time on the machine *plus* the time
for a remote partner to move results home -- the end-to-end number that
motivated pairing HPCS with NREN in one program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.workload import Workload, WorkloadResult
from repro.machine.machine import Machine
from repro.network.graph import WideAreaNetwork
from repro.network.transfer import TransferEstimate, transfer_time
from repro.util.errors import ConfigurationError, NetworkError


@dataclass(frozen=True)
class CampaignResult:
    """A workload execution plus the result-retrieval transfer."""

    run: WorkloadResult
    transfer: Optional[TransferEstimate]

    @property
    def end_to_end_s(self) -> float:
        """Machine time plus (if remote) network time."""
        total = self.run.virtual_time
        if self.transfer is not None:
            total += self.transfer.time_s
        return total

    @property
    def network_fraction(self) -> float:
        """Share of end-to-end time spent on the wide-area network."""
        if self.transfer is None or self.end_to_end_s == 0:
            return 0.0
        return self.transfer.time_s / self.end_to_end_s


class Testbed:
    """A machine installed at a site on a consortium network."""

    # Not a test case despite the Test* name (silences pytest collection).
    __test__ = False

    def __init__(
        self,
        machine: Machine,
        network: Optional[WideAreaNetwork] = None,
        home_site: Optional[str] = None,
    ):
        if (network is None) != (home_site is None):
            raise ConfigurationError(
                "network and home_site must be given together"
            )
        if network is not None:
            network.site(home_site)  # validates
        self.machine = machine
        self.network = network
        self.home_site = home_site

    @classmethod
    def delta_at_caltech(cls) -> "Testbed":
        """The flagship: Touchstone Delta on the consortium network."""
        from repro.machine.presets import touchstone_delta
        from repro.network.consortium_net import DELTA_SITE, delta_consortium

        return cls(touchstone_delta(), delta_consortium(), DELTA_SITE)

    def campaign(
        self,
        workload: Workload,
        n_ranks: int,
        *,
        user_site: Optional[str] = None,
        result_bytes: float = 0.0,
        seed: int = 0,
    ) -> CampaignResult:
        """Run a workload for a (possibly remote) user.

        ``user_site`` of None (or the home site) means a local user; a
        remote user pays the transfer of ``result_bytes`` home.
        """
        if result_bytes < 0:
            raise ConfigurationError(
                f"result_bytes must be >= 0, got {result_bytes}"
            )
        target = (
            self.machine.subset(n_ranks)
            if n_ranks < self.machine.n_nodes
            else self.machine
        )
        run = workload.run(target, n_ranks, seed=seed)
        transfer = None
        if user_site is not None and user_site != self.home_site:
            if self.network is None:
                raise NetworkError(
                    "testbed has no network; cannot serve remote users"
                )
            transfer = transfer_time(
                self.network, self.home_site, user_site, result_bytes
            )
        return CampaignResult(run=run, transfer=transfer)
