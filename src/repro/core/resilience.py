"""Checkpoint/restart economics: running long jobs on failing nodes.

A 528-node machine built from workstation-class parts fails daily;
Grand Challenge runs lasted weeks.  The operational answer was
checkpoint/restart, and its planning mathematics is Young's classic
first-order analysis:

* a machine of N nodes with per-node MTBF ``m`` fails about every
  ``m / N`` hours;
* checkpointing costs ``C`` (state size over I/O bandwidth);
* the optimal checkpoint interval is ``tau* = sqrt(2 * C * MTBF)``;
* expected completion time inflates by the checkpoint overhead plus
  expected rework after each failure.

The fault-injection hooks in :mod:`repro.simmpi.engine` demonstrate the
failure mechanics; this module quantifies the policy response.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.errors import ConfigurationError


def system_mtbf(node_mtbf_s: float, n_nodes: int) -> float:
    """Aggregate mean time between failures of an N-node machine
    (independent exponential node failures)."""
    if node_mtbf_s <= 0:
        raise ConfigurationError(f"node MTBF must be positive, got {node_mtbf_s}")
    if n_nodes < 1:
        raise ConfigurationError(f"need at least one node, got {n_nodes}")
    return node_mtbf_s / n_nodes


def checkpoint_cost(state_bytes: float, io_bandwidth_bytes_per_s: float) -> float:
    """Seconds to write one checkpoint."""
    if state_bytes < 0:
        raise ConfigurationError(f"state size must be >= 0, got {state_bytes}")
    if io_bandwidth_bytes_per_s <= 0:
        raise ConfigurationError(
            f"I/O bandwidth must be positive, got {io_bandwidth_bytes_per_s}"
        )
    return state_bytes / io_bandwidth_bytes_per_s


def young_interval(cost_s: float, mtbf_s: float) -> float:
    """Young's optimal checkpoint interval sqrt(2 * C * MTBF)."""
    if cost_s <= 0:
        raise ConfigurationError(f"checkpoint cost must be positive, got {cost_s}")
    if mtbf_s <= 0:
        raise ConfigurationError(f"MTBF must be positive, got {mtbf_s}")
    return math.sqrt(2.0 * cost_s * mtbf_s)


def expected_runtime(
    work_s: float,
    interval_s: float,
    cost_s: float,
    mtbf_s: float,
    *,
    restart_s: float = 0.0,
) -> float:
    """Expected wall time for ``work_s`` of useful computation.

    First-order model: each interval carries its checkpoint cost; a
    failure (rate 1/MTBF) loses on average half an interval plus the
    restart, and the run repeats the loss.

        T = (work / tau) * (tau + C)
            + (T / MTBF) * (tau / 2 + restart)

    solved for T.  Valid while the failure-loss factor stays below one
    (raise otherwise: the job never finishes at this interval).
    """
    if work_s < 0:
        raise ConfigurationError(f"work must be >= 0, got {work_s}")
    if interval_s <= 0:
        raise ConfigurationError(f"interval must be positive, got {interval_s}")
    if cost_s < 0 or restart_s < 0:
        raise ConfigurationError("costs must be >= 0")
    if mtbf_s <= 0:
        raise ConfigurationError(f"MTBF must be positive, got {mtbf_s}")
    base = work_s * (interval_s + cost_s) / interval_s
    loss_factor = (interval_s / 2.0 + restart_s) / mtbf_s
    if loss_factor >= 1.0:
        raise ConfigurationError(
            f"failure loss factor {loss_factor:.2f} >= 1: the machine fails "
            "faster than it recovers at this interval"
        )
    return base / (1.0 - loss_factor)


@dataclass(frozen=True)
class CheckpointPlan:
    """A complete checkpoint policy for one job on one machine."""

    work_s: float
    state_bytes: float
    io_bandwidth_bytes_per_s: float
    node_mtbf_s: float
    n_nodes: int
    restart_s: float = 60.0

    @property
    def mtbf_s(self) -> float:
        return system_mtbf(self.node_mtbf_s, self.n_nodes)

    @property
    def cost_s(self) -> float:
        return checkpoint_cost(self.state_bytes, self.io_bandwidth_bytes_per_s)

    @property
    def interval_s(self) -> float:
        return young_interval(self.cost_s, self.mtbf_s)

    @property
    def expected_s(self) -> float:
        return expected_runtime(
            self.work_s, self.interval_s, self.cost_s, self.mtbf_s,
            restart_s=self.restart_s,
        )

    @property
    def overhead_fraction(self) -> float:
        """Wall-time inflation over failure-free, checkpoint-free work."""
        if self.work_s == 0:
            return 0.0
        return self.expected_s / self.work_s - 1.0

    def naive_no_checkpoint_feasible(self) -> bool:
        """Could the job plausibly finish with no checkpoints at all?
        (Rule of thumb: work must fit well inside one MTBF.)"""
        return self.work_s < 0.5 * self.mtbf_s

    @classmethod
    def for_machine(
        cls,
        machine,
        io,
        *,
        work_s: float,
        state_fraction: float = 0.5,
        node_mtbf_s: float = 30 * 24 * 3600.0,
        restart_s: float = 60.0,
    ) -> "CheckpointPlan":
        """Build a plan from a machine model and an I/O subsystem.

        ``state_fraction`` is the share of aggregate memory that must be
        checkpointed (a halo code's live field, not every byte).
        """
        if not 0 < state_fraction <= 1:
            raise ConfigurationError(
                f"state_fraction must be in (0, 1], got {state_fraction}"
            )
        return cls(
            work_s=work_s,
            state_bytes=machine.total_memory_bytes * state_fraction,
            io_bandwidth_bytes_per_s=io.aggregate_bandwidth_bytes_per_s,
            node_mtbf_s=node_mtbf_s,
            n_nodes=machine.n_nodes,
            restart_s=restart_s,
        )
