"""Workload descriptors: uniform interface over the application kernels.

The program's approach slide calls for "application software teams ...
to utilize and evaluate testbeds".  A :class:`Workload` is the unit of
that evaluation: a named, parameterised problem that can be run on any
simulated machine at any rank count, returning uniform metrics.

Concrete workloads wrap the grand-challenge kernels
(:mod:`repro.apps`) and the ASTA algorithms (:mod:`repro.linalg`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.machine.machine import Machine
from repro.simmpi.engine import SimResult
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class WorkloadResult:
    """Uniform metrics from one workload execution."""

    workload: str
    machine: str
    n_ranks: int
    virtual_time: float
    total_messages: int
    total_bytes: float
    compute_time: float
    comm_time: float

    @property
    def comm_fraction(self) -> float:
        """Fraction of aggregate busy time spent communicating."""
        busy = self.compute_time + self.comm_time
        return self.comm_time / busy if busy > 0 else 0.0


def _from_sim(workload: str, machine: Machine, n_ranks: int, sim: SimResult) -> WorkloadResult:
    return WorkloadResult(
        workload=workload,
        machine=machine.name,
        n_ranks=n_ranks,
        virtual_time=sim.time,
        total_messages=sim.total_messages,
        total_bytes=sim.total_bytes,
        compute_time=sim.total_compute_time,
        comm_time=sim.total_comm_time,
    )


class Workload(ABC):
    """A named problem runnable at any rank count on any machine."""

    name: str = "abstract"

    @abstractmethod
    def run(self, machine: Machine, n_ranks: int, *, seed: int = 0) -> WorkloadResult:
        """Execute on a simulated machine and return uniform metrics."""

    @abstractmethod
    def max_ranks(self) -> int:
        """Largest rank count the problem decomposes over."""

    def check_ranks(self, machine: Machine, n_ranks: int) -> None:
        if not 1 <= n_ranks <= machine.n_nodes:
            raise ConfigurationError(
                f"{n_ranks} ranks outside machine of {machine.n_nodes} nodes"
            )
        if n_ranks > self.max_ranks():
            raise ConfigurationError(
                f"{self.name}: {n_ranks} ranks exceeds decomposition limit "
                f"{self.max_ranks()}"
            )


class CFDWorkload(Workload):
    """Structured-grid advection-diffusion (CAS aerosciences proxy)."""

    def __init__(self, nx: int = 64, ny: int = 64, steps: int = 10):
        from repro.apps.cfd import CFDConfig

        self.config = CFDConfig(nx=nx, ny=ny, dt=0.05)
        self.steps = steps
        self.name = f"cfd-{nx}x{ny}x{steps}"

    def max_ranks(self) -> int:
        return self.config.ny

    def run(self, machine: Machine, n_ranks: int, *, seed: int = 0) -> WorkloadResult:
        from repro.apps.cfd import distributed_run, gaussian_blob

        self.check_ranks(machine, n_ranks)
        u0 = gaussian_blob(self.config)
        out = distributed_run(machine, n_ranks, u0, self.config, self.steps, seed=seed)
        return _from_sim(self.name, machine, n_ranks, out.sim)


class OceanWorkload(Workload):
    """Shallow-water basin (NOAA ocean/atmosphere proxy)."""

    def __init__(self, nx: int = 64, ny: int = 64, steps: int = 10):
        from repro.apps.ocean import OceanConfig

        self.config = OceanConfig(nx=nx, ny=ny, dt=10.0)
        self.steps = steps
        self.name = f"ocean-{nx}x{ny}x{steps}"

    def max_ranks(self) -> int:
        return self.config.ny

    def run(self, machine: Machine, n_ranks: int, *, seed: int = 0) -> WorkloadResult:
        from repro.apps.ocean import distributed_run, gaussian_bump

        self.check_ranks(machine, n_ranks)
        state = gaussian_bump(self.config)
        out = distributed_run(machine, n_ranks, state, self.config, self.steps, seed=seed)
        return _from_sim(self.name, machine, n_ranks, out.sim)


class NBodyWorkload(Workload):
    """Direct-sum gravity (space-sciences proxy)."""

    def __init__(self, n_bodies: int = 128, steps: int = 2):
        if n_bodies < 1:
            raise ConfigurationError(f"need bodies, got {n_bodies}")
        self.n_bodies = n_bodies
        self.steps = steps
        self.name = f"nbody-{n_bodies}x{steps}"

    def max_ranks(self) -> int:
        return self.n_bodies

    def run(self, machine: Machine, n_ranks: int, *, seed: int = 0) -> WorkloadResult:
        from repro.apps.nbody import distributed_run, random_cluster

        self.check_ranks(machine, n_ranks)
        bodies = random_cluster(self.n_bodies, seed=seed)
        out = distributed_run(
            machine, n_ranks, bodies, dt=0.01, steps=self.steps, seed=seed
        )
        return _from_sim(self.name, machine, n_ranks, out.sim)


class LUWorkload(Workload):
    """Executable column-cyclic LU (small-order LINPACK)."""

    def __init__(self, n: int = 64):
        if n < 1:
            raise ConfigurationError(f"order must be >= 1, got {n}")
        self.n = n
        self.name = f"lu-{n}"

    def max_ranks(self) -> int:
        return self.n

    def run(self, machine: Machine, n_ranks: int, *, seed: int = 0) -> WorkloadResult:
        from repro.linalg.blocklu import distributed_lu, make_test_matrix

        self.check_ranks(machine, n_ranks)
        a = make_test_matrix(self.n, seed=seed)
        out = distributed_lu(machine, n_ranks, a, seed=seed)
        return _from_sim(self.name, machine, n_ranks, out.sim)


class FFTWorkload(Workload):
    """Transpose FFT (signal/spectral proxy; bisection stress)."""

    def __init__(self, n: int = 4096):
        # Power-of-two keeps every rank count in the sweep valid.
        if n < 4 or n & (n - 1):
            raise ConfigurationError(f"FFT size must be a power of two >= 4, got {n}")
        self.n = n
        self.name = f"fft-{n}"
        self._n1 = 1
        while self._n1 * self._n1 < n:
            self._n1 *= 2

    def max_ranks(self) -> int:
        return min(self._n1, self.n // self._n1)

    def run(self, machine: Machine, n_ranks: int, *, seed: int = 0) -> WorkloadResult:
        from repro.linalg.fft import distributed_fft

        self.check_ranks(machine, n_ranks)
        if self._n1 % n_ranks or (self.n // self._n1) % n_ranks:
            raise ConfigurationError(
                f"{self.name}: rank count {n_ranks} must divide both FFT "
                f"factors ({self._n1}, {self.n // self._n1})"
            )
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(self.n)
        out = distributed_fft(machine, n_ranks, x, n1=self._n1, seed=seed)
        return _from_sim(self.name, machine, n_ranks, out.sim)


class CGWorkload(Workload):
    """Distributed conjugate gradient (implicit-solver proxy)."""

    def __init__(self, n: int = 96, tol: float = 1e-8):
        if n < 2:
            raise ConfigurationError(f"order must be >= 2, got {n}")
        self.n = n
        self.tol = tol
        self.name = f"cg-{n}"

    def max_ranks(self) -> int:
        return self.n

    def run(self, machine: Machine, n_ranks: int, *, seed: int = 0) -> WorkloadResult:
        from repro.linalg.cg import distributed_cg, make_spd_matrix

        self.check_ranks(machine, n_ranks)
        a = make_spd_matrix(self.n, seed=seed)
        b = np.ones(self.n)
        out = distributed_cg(machine, n_ranks, a, b, tol=self.tol, seed=seed)
        return _from_sim(self.name, machine, n_ranks, out.sim)


class PoissonWorkload(Workload):
    """Relaxation Poisson solve (energy grand-challenge proxy).

    ``method`` selects Jacobi or red-black Gauss-Seidel; the two differ
    in convergence rate *and* halo cost, which is the point.
    """

    def __init__(self, nx: int = 32, ny: int = 32, method: str = "jacobi",
                 tol: float = 1e-4):
        from repro.apps.poisson import PoissonConfig

        if method not in ("jacobi", "redblack"):
            raise ConfigurationError(f"unknown method {method!r}")
        self.config = PoissonConfig(nx=nx, ny=ny, h=1.0 / (ny + 1))
        self.method = method
        self.tol = tol
        self.name = f"poisson-{method}-{nx}x{ny}"

    def max_ranks(self) -> int:
        return self.config.ny

    def run(self, machine: Machine, n_ranks: int, *, seed: int = 0) -> WorkloadResult:
        from repro.apps.poisson import distributed_solve, smooth_source

        self.check_ranks(machine, n_ranks)
        f = smooth_source(self.config)
        out = distributed_solve(
            machine, n_ranks, f, self.config, method=self.method,
            tol=self.tol, seed=seed,
        )
        return _from_sim(self.name, machine, n_ranks, out.sim)


class LinpackWorkload(Workload):
    """End-to-end executable LINPACK: factor + triangular solves."""

    def __init__(self, n: int = 48):
        if n < 1:
            raise ConfigurationError(f"order must be >= 1, got {n}")
        self.n = n
        self.name = f"linpack-{n}"

    def max_ranks(self) -> int:
        return self.n

    def run(self, machine: Machine, n_ranks: int, *, seed: int = 0) -> WorkloadResult:
        from repro.linalg.trisolve import linpack_benchmark

        self.check_ranks(machine, n_ranks)
        out = linpack_benchmark(machine, n_ranks, self.n, seed=seed)
        return _from_sim(self.name, machine, n_ranks, out.sim)


class MDWorkload(Workload):
    """Slab-decomposed molecular dynamics (chemistry/materials proxy).

    Rank count is capped by the slab-width-vs-cutoff constraint, which
    is itself an instructive limit: short-range MD needs a big box (or
    2-D/3-D decomposition) before it can use many nodes.
    """

    def __init__(self, n_side: int = 8, steps: int = 4, box: float = 10.0):
        from repro.apps.md import MDConfig

        self.config = MDConfig(box=box)
        self.n_side = n_side
        self.steps = steps
        self.name = f"md-{n_side * n_side}x{steps}"

    def max_ranks(self) -> int:
        return max(1, int(self.config.box / self.config.cutoff))

    def run(self, machine: Machine, n_ranks: int, *, seed: int = 0) -> WorkloadResult:
        from repro.apps.md import distributed_run, lattice_fluid

        self.check_ranks(machine, n_ranks)
        particles = lattice_fluid(self.n_side, self.config, seed=seed)
        out = distributed_run(
            machine, n_ranks, particles, self.config, self.steps, seed=seed
        )
        return _from_sim(self.name, machine, n_ranks, out.sim)


#: Registry of workload factories for CLI-ish use in examples/benches.
WORKLOADS: Dict[str, type] = {
    "cfd": CFDWorkload,
    "ocean": OceanWorkload,
    "nbody": NBodyWorkload,
    "lu": LUWorkload,
    "fft": FFTWorkload,
    "cg": CGWorkload,
    "poisson": PoissonWorkload,
    "linpack": LinpackWorkload,
    "md": MDWorkload,
}
