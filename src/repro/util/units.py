"""Unit helpers for performance quantities.

The library works internally in SI base units: seconds, bytes,
flops (floating-point operations), flop/s, and bit/s for wide-area
links.  These helpers exist so that module code and tests never embed
bare magic multipliers like ``1e9``; a reader can always tell whether a
number is "32 GFLOPS" or "32e9 flop/s".

The 1992-era machines the paper describes are quoted in MFLOPS/GFLOPS
and network links in kbps/Mbps, so both decimal scales are provided.
"""

from __future__ import annotations

# --- decimal scale factors -------------------------------------------------

KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

# Binary scales for memory sizes (a 16 MB i860 node means 16 * 2**20 bytes).
KIB = 1024
MIB = 1024**2
GIB = 1024**3


# --- flop rates ------------------------------------------------------------

def mflops(x: float) -> float:
    """Convert MFLOPS to flop/s."""
    return x * MEGA


def gflops(x: float) -> float:
    """Convert GFLOPS to flop/s."""
    return x * GIGA


def tflops(x: float) -> float:
    """Convert TFLOPS to flop/s."""
    return x * TERA


def as_gflops(rate: float) -> float:
    """Express a flop/s rate in GFLOPS (for reporting)."""
    return rate / GIGA


def as_mflops(rate: float) -> float:
    """Express a flop/s rate in MFLOPS (for reporting)."""
    return rate / MEGA


# --- byte counts -----------------------------------------------------------

def kib(x: float) -> float:
    """Convert KiB to bytes."""
    return x * KIB


def mib(x: float) -> float:
    """Convert MiB to bytes."""
    return x * MIB


def gib(x: float) -> float:
    """Convert GiB to bytes."""
    return x * GIB


def megabytes(x: float) -> float:
    """Convert decimal MB to bytes (network payload convention)."""
    return x * MEGA


# --- link rates (bits per second, the WAN convention) ----------------------

def kbps(x: float) -> float:
    """Convert kbit/s to bit/s."""
    return x * KILO


def mbps(x: float) -> float:
    """Convert Mbit/s to bit/s."""
    return x * MEGA


def gbps(x: float) -> float:
    """Convert Gbit/s to bit/s."""
    return x * GIGA


def bits_to_bytes_per_second(rate_bps: float) -> float:
    """Convert a bit/s link rate to byte/s throughput."""
    return rate_bps / 8.0


# --- bandwidths (bytes per second, the interconnect convention) ------------

def mb_per_s(x: float) -> float:
    """Convert MB/s to byte/s."""
    return x * MEGA


# --- times -----------------------------------------------------------------

def microseconds(x: float) -> float:
    """Convert microseconds to seconds."""
    return x * 1e-6

def milliseconds(x: float) -> float:
    """Convert milliseconds to seconds."""
    return x * 1e-3


def as_microseconds(t: float) -> float:
    """Express seconds in microseconds (for reporting)."""
    return t * 1e6


# --- human-readable formatting ---------------------------------------------

_TIME_STEPS = (
    (1.0, "s"),
    (1e-3, "ms"),
    (1e-6, "us"),
    (1e-9, "ns"),
)


def format_time(seconds: float) -> str:
    """Render a duration with a sensible unit, e.g. ``'72.0 us'``.

    Durations of a minute or more are rendered as ``h:mm:ss`` because
    wide-area transfer times in the paper span microseconds to hours.
    """
    if seconds < 0:
        return "-" + format_time(-seconds)
    if seconds >= 60.0:
        whole = int(round(seconds))
        hours, rem = divmod(whole, 3600)
        minutes, secs = divmod(rem, 60)
        return f"{hours:d}:{minutes:02d}:{secs:02d}"
    for scale, suffix in _TIME_STEPS:
        if seconds >= scale:
            return f"{seconds / scale:.3g} {suffix}"
    return "0 s" if seconds == 0 else f"{seconds:.3g} s"


def format_rate(flops_per_s: float) -> str:
    """Render a flop rate, e.g. ``'32.0 GFLOPS'``."""
    for scale, suffix in ((TERA, "TFLOPS"), (GIGA, "GFLOPS"), (MEGA, "MFLOPS"), (KILO, "kFLOPS")):
        if flops_per_s >= scale:
            return f"{flops_per_s / scale:.4g} {suffix}"
    return f"{flops_per_s:.4g} FLOPS"


def format_bandwidth(bits_per_s: float) -> str:
    """Render a WAN link rate, e.g. ``'45 Mbps'``."""
    for scale, suffix in ((GIGA, "Gbps"), (MEGA, "Mbps"), (KILO, "kbps")):
        if bits_per_s >= scale:
            return f"{bits_per_s / scale:.4g} {suffix}"
    return f"{bits_per_s:.4g} bps"


def format_bytes(nbytes: float) -> str:
    """Render a byte count, e.g. ``'1.5 GB'`` (decimal, WAN convention)."""
    for scale, suffix in ((TERA, "TB"), (GIGA, "GB"), (MEGA, "MB"), (KILO, "kB")):
        if nbytes >= scale:
            return f"{nbytes / scale:.4g} {suffix}"
    return f"{nbytes:.4g} B"
