"""Shared utilities: units, table rendering, RNG discipline, errors."""

from repro.util.errors import (
    CommunicationError,
    ConfigurationError,
    ConvergenceError,
    DeadlockError,
    DecompositionError,
    NetworkError,
    ProgramModelError,
    ReproError,
    SimulationError,
    TopologyError,
)
from repro.util.rng import resolve_rng, spawn, stable_seed
from repro.util.tables import render_matrix, render_table
from repro.util.units import (
    format_bandwidth,
    format_bytes,
    format_rate,
    format_time,
    gflops,
    mflops,
    tflops,
)

__all__ = [
    "CommunicationError",
    "ConfigurationError",
    "ConvergenceError",
    "DeadlockError",
    "DecompositionError",
    "NetworkError",
    "ProgramModelError",
    "ReproError",
    "SimulationError",
    "TopologyError",
    "resolve_rng",
    "spawn",
    "stable_seed",
    "render_matrix",
    "render_table",
    "format_bandwidth",
    "format_bytes",
    "format_rate",
    "format_time",
    "gflops",
    "mflops",
    "tflops",
]
