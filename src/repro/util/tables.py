"""Plain-text table rendering used by reports and benchmark output.

The paper's exhibits are slides full of tables; every benchmark in
``benchmarks/`` regenerates one of them as text.  This module provides a
single, dependency-free renderer so all output is uniform.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(value: Cell, float_fmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    *,
    title: Optional[str] = None,
    float_fmt: str = ",.1f",
    align_right_from: int = 1,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table.

    Parameters
    ----------
    headers:
        Column titles.
    rows:
        Iterable of row sequences; each row must have ``len(headers)``
        cells.  Floats are formatted with ``float_fmt``.
    title:
        Optional heading printed above the table with an underline.
    float_fmt:
        ``format()`` spec applied to float cells.
    align_right_from:
        Column index from which cells are right-aligned (numeric columns
        conventionally follow a left-aligned label column).
    """
    str_rows = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        str_rows.append([_format_cell(c, float_fmt) for c in row])

    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i >= align_right_from:
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


def render_matrix(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    cells: Sequence[Sequence[Cell]],
    *,
    title: Optional[str] = None,
    corner: str = "",
) -> str:
    """Render a labelled matrix (used for the responsibilities exhibit)."""
    headers = [corner, *col_labels]
    rows = [[label, *row] for label, row in zip(row_labels, cells)]
    return render_table(headers, rows, title=title)
