"""Deterministic random-number helpers.

Simulation components never call ``np.random`` module-level functions;
they take an explicit ``numpy.random.Generator`` (or a seed) so runs are
reproducible and tests are stable.  ``spawn`` derives independent child
streams, mirroring how each simulated rank gets its own stream.

Child derivation is the one per-rank setup cost that cannot be deferred
by laziness alone -- a 10^6-rank machine needs 10^6 streams *available*
even if almost none are drawn from.  Two facts make it O(1) per rank:

* ``SeedSequence(entropy, spawn_key=(i,))`` is, by construction, the
  i-th child of ``SeedSequence(entropy).spawn(n)`` -- the spawn index is
  just one more entropy word, so any single child derives without
  deriving its siblings.
* The entropy-mixing hash's evolving multiplier depends only on *how
  many* words were mixed, never on their values, so the pool state
  after the shared words (seed entropy + parent spawn key) is common to
  every child and the per-child tail (one ``uint32`` spawn word into a
  4-word pool) vectorizes elementwise across all children.

:class:`RankStreams` packages both: O(1) lazy access to any one rank's
generator, and a batched path that expands the shared entropy once and
derives every PCG64 seed state with a handful of numpy array ops.  Both
are regression-tested bit-identical to the explicit
``SeedSequence.spawn`` loop (``tests/util/test_rng_vectorized.py``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np
from numpy.random.bit_generator import ISeedSequence

SeedLike = Union[int, np.random.Generator, None]

# numpy's SeedSequence mixing constants (O'Neill's seed_seq_fe).  The
# reimplementation below is pinned bit-for-bit against numpy in the
# regression tests; these values have been stable since numpy 1.17.
_M32 = 0xFFFFFFFF
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_L = 0xCA01F9DD
_MIX_R = 0x4973F715
_XSHIFT = 16
_POOL_SIZE = 4


def resolve_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a Generator from a seed, an existing Generator, or None."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _uint32_words(value: int) -> List[int]:
    """``value`` as little-endian uint32 words (numpy's int coercion)."""
    if value < 0:
        raise ValueError("expected a non-negative integer")
    if value == 0:
        return [0]
    words = []
    while value > 0:
        words.append(value & _M32)
        value >>= 32
    return words


def _entropy_words(entropy: Union[int, Sequence[int]]) -> List[int]:
    """Entropy (int or sequence of ints) as uint32 words."""
    if isinstance(entropy, (int, np.integer)):
        return _uint32_words(int(entropy))
    words: List[int] = []
    for part in entropy:
        words.extend(_uint32_words(int(part)))
    return words


class _EntropyMixer:
    """Scalar reimplementation of ``SeedSequence.mix_entropy``.

    Exposes the mixing state (pool + evolving hash multiplier) after an
    arbitrary prefix of entropy words, which is what lets the batched
    spawn hash the shared words once and vectorize only the per-child
    spawn word.
    """

    __slots__ = ("pool", "_hash_const")

    def __init__(self, prefix_words: Sequence[int]):
        self._hash_const = _INIT_A
        n = len(prefix_words)
        pool = [
            self._hash(prefix_words[i] if i < n else 0)
            for i in range(_POOL_SIZE)
        ]
        self.pool = pool
        for src in range(_POOL_SIZE):
            for dst in range(_POOL_SIZE):
                if src != dst:
                    pool[dst] = _mix(pool[dst], self._hash(pool[src]))
        for src in range(_POOL_SIZE, n):
            for dst in range(_POOL_SIZE):
                pool[dst] = _mix(pool[dst], self._hash(prefix_words[src]))

    def _hash(self, value: int) -> int:
        value = (value ^ self._hash_const) & _M32
        self._hash_const = (self._hash_const * _MULT_A) & _M32
        value = (value * self._hash_const) & _M32
        value ^= value >> _XSHIFT
        return value

    def child_pools(self, child_words: np.ndarray) -> np.ndarray:
        """Mix one per-child uint32 word into the shared pool, batched.

        ``child_words`` is a uint32 array of n spawn words; the result is
        an ``(n, POOL_SIZE)`` uint32 array of child pools, bit-identical
        to constructing each child ``SeedSequence`` individually.
        """
        w = np.ascontiguousarray(child_words, dtype=np.uint32)
        pools = np.empty((len(w), _POOL_SIZE), dtype=np.uint32)
        hc = self._hash_const
        for dst in range(_POOL_SIZE):
            # hash(): the multiplier sequence is data-independent, so a
            # single scalar constant serves every child in the batch.
            v = w ^ np.uint32(hc)
            hc = (hc * _MULT_A) & _M32
            v = v * np.uint32(hc)
            v ^= v >> np.uint32(_XSHIFT)
            # mix(): elementwise over children against the shared word.
            r = np.uint32((self.pool[dst] * _MIX_L) & _M32) - v * np.uint32(_MIX_R)
            r ^= r >> np.uint32(_XSHIFT)
            pools[:, dst] = r
        return pools


def _mix(x: int, y: int) -> int:
    r = ((x * _MIX_L) - (y * _MIX_R)) & _M32
    r ^= r >> _XSHIFT
    return r


def _generate_state_batch(pools: np.ndarray, n_words32: int) -> np.ndarray:
    """``SeedSequence.generate_state`` over an ``(n, POOL_SIZE)`` batch.

    Returns ``(n, n_words32)`` uint32.  The output multiplier sequence is
    data-independent, so each word position is one vectorized expression
    over the corresponding pool column.
    """
    n = pools.shape[0]
    out = np.empty((n, n_words32), dtype=np.uint32)
    hc = _INIT_B
    for k in range(n_words32):
        v = pools[:, k % _POOL_SIZE] ^ np.uint32(hc)
        hc = (hc * _MULT_B) & _M32
        v = v * np.uint32(hc)
        v ^= v >> np.uint32(_XSHIFT)
        out[:, k] = v
    return out


class _BatchDerivedSeed(ISeedSequence):
    """An ``ISeedSequence`` carrying one batch-derived child's state.

    PCG64 (and every numpy bit generator) seeds itself through
    ``generate_state``; handing it the precomputed words skips the
    per-child ``SeedSequence`` construction entirely.  Requests beyond
    the precomputed width regenerate from the stored pool scalar-wise,
    so the shim is a faithful stand-in, not a truncation.
    """

    __slots__ = ("_pool", "_state32")

    def __init__(self, pool_row: np.ndarray, state_row: np.ndarray):
        self._pool = pool_row
        self._state32 = state_row

    def generate_state(self, n_words: int, dtype=np.uint32) -> np.ndarray:
        out_dtype = np.dtype(dtype)
        if out_dtype == np.dtype(np.uint32):
            n32 = n_words
        elif out_dtype == np.dtype(np.uint64):
            n32 = n_words * 2
        else:
            raise ValueError("only uint32 and uint64 supported")
        if n32 <= len(self._state32):
            state = self._state32[:n32].copy()
        else:
            state = _generate_state_batch(self._pool[None, :], n32)[0]
        if out_dtype == np.dtype(np.uint64):
            state = state.view(np.uint64)
        return state


class RankStreams:
    """Lazy, O(1)-per-rank view of ``SeedSequence(seed).spawn(n)``.

    ``streams[i]`` derives rank i's generator alone (one single-child
    ``SeedSequence``, no sibling work); :meth:`generators` derives all n
    through one vectorized entropy expansion.  Both are bit-identical to
    the eager spawn loop.  ``Generator`` seeds fall back to
    ``Generator.spawn`` eagerly (that path is stateful in the parent).
    """

    __slots__ = ("n", "entropy", "spawn_key", "_eager")

    def __init__(self, seed: SeedLike, n: int):
        if n < 0:
            raise ValueError(f"cannot spawn {n} generators")
        self.n = n
        self._eager: Optional[List[np.random.Generator]] = None
        if isinstance(seed, np.random.Generator):
            self._eager = list(seed.spawn(n))
            self.entropy: Union[int, Tuple[int, ...]] = 0
            self.spawn_key: Tuple[int, ...] = ()
            return
        if isinstance(seed, np.random.SeedSequence):
            base = seed
        else:
            base = np.random.SeedSequence(seed)
        entropy = base.entropy
        assert entropy is not None  # SeedSequence always assembles some
        self.entropy = entropy if isinstance(entropy, int) else tuple(entropy)
        self.spawn_key = tuple(base.spawn_key)

    def __len__(self) -> int:
        return self.n

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.n:
            raise IndexError(f"rank {rank} outside {self.n} streams")

    def child_sequence(self, rank: int) -> np.random.SeedSequence:
        """Rank ``rank``'s ``SeedSequence``, derived without siblings."""
        self._check(rank)
        return np.random.SeedSequence(
            entropy=self.entropy, spawn_key=self.spawn_key + (rank,)
        )

    def __getitem__(self, rank: int) -> np.random.Generator:
        if self._eager is not None:
            self._check(rank)
            return self._eager[rank]
        return np.random.default_rng(self.child_sequence(rank))

    def _prefix_words(self) -> List[int]:
        words = _entropy_words(self.entropy)
        # Children always carry a non-empty spawn key, which pins the
        # key's word position by padding short entropy to the pool size
        # (mirrors SeedSequence.get_assembled_entropy).
        if len(words) < _POOL_SIZE:
            words = words + [0] * (_POOL_SIZE - len(words))
        for part in self.spawn_key:
            words.extend(_uint32_words(part))
        return words

    def _batch_pools(self) -> np.ndarray:
        if self.n > _M32 + 1:  # pragma: no cover - >2**32 children
            raise ValueError("batched spawn supports at most 2**32 children")
        mixer = _EntropyMixer(self._prefix_words())
        return mixer.child_pools(np.arange(self.n, dtype=np.uint32))

    def state_words(self) -> np.ndarray:
        """PCG64 seed states for every rank, ``(n, 4)`` uint64, batched."""
        return np.ascontiguousarray(
            _generate_state_batch(self._batch_pools(), 8)
        ).view(np.uint64)

    def generators(self) -> List[np.random.Generator]:
        """All n generators via the single vectorized derivation."""
        if self._eager is not None:
            return list(self._eager)
        if self.n == 0:
            return []
        pools = self._batch_pools()
        states = _generate_state_batch(pools, 8)
        Generator, PCG64 = np.random.Generator, np.random.PCG64
        return [
            Generator(PCG64(_BatchDerivedSeed(pools[i], states[i])))
            for i in range(self.n)
        ]


def spawn(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Child streams are bit-identical to ``SeedSequence.spawn`` children
    (derived through one vectorized entropy expansion rather than n
    per-child mixes), and come from ``Generator.spawn`` for an existing
    generator, so both paths give independence guarantees.
    """
    return RankStreams(seed, n).generators()


def stable_seed(*parts: Union[int, str], base: Optional[int] = None) -> int:
    """Hash heterogeneous identifiers into a stable 63-bit seed.

    Used to give named entities (a rank, a site, a workload) seeds that
    do not depend on iteration order.  Python's builtin ``hash`` is
    salted per-process for strings, so we use a small explicit FNV-1a.
    """
    acc = 0xCBF29CE484222325 if base is None else (base & 0xFFFFFFFFFFFFFFFF)
    for part in parts:
        data = str(part).encode("utf-8")
        for byte in data:
            acc ^= byte
            acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc & 0x7FFFFFFFFFFFFFFF
