"""Deterministic random-number helpers.

Simulation components never call ``np.random`` module-level functions;
they take an explicit ``numpy.random.Generator`` (or a seed) so runs are
reproducible and tests are stable.  ``spawn`` derives independent child
streams, mirroring how each simulated rank gets its own stream.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def resolve_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a Generator from a seed, an existing Generator, or None."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Child streams are derived via ``SeedSequence.spawn`` when a plain
    seed is given, and via ``Generator.spawn`` for an existing
    generator, so both paths give independence guarantees.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    if isinstance(seed, np.random.Generator):
        return list(seed.spawn(n))
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(n)]


def stable_seed(*parts: Union[int, str], base: Optional[int] = None) -> int:
    """Hash heterogeneous identifiers into a stable 63-bit seed.

    Used to give named entities (a rank, a site, a workload) seeds that
    do not depend on iteration order.  Python's builtin ``hash`` is
    salted per-process for strings, so we use a small explicit FNV-1a.
    """
    acc = 0xCBF29CE484222325 if base is None else (base & 0xFFFFFFFFFFFFFFFF)
    for part in parts:
        data = str(part).encode("utf-8")
        for byte in data:
            acc ^= byte
            acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc & 0x7FFFFFFFFFFFFFFF
