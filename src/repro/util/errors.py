"""Exception hierarchy shared across the ``repro`` library.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch library-level failures without also swallowing programming errors
(``TypeError``, ``KeyError`` from unrelated code, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A machine, network, or program model was built with invalid
    parameters (non-positive counts, unknown presets, inconsistent
    shapes)."""


class TopologyError(ConfigurationError):
    """An interconnect topology was asked about a node it does not
    contain, or was constructed with an impossible shape."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class DeadlockError(SimulationError):
    """All live ranks are blocked on communication that can never
    complete (e.g. a receive with no matching send)."""


class CommunicationError(SimulationError):
    """A point-to-point or collective call was issued with invalid
    arguments (bad rank, mismatched collective participation, ...)."""


class DecompositionError(ReproError):
    """A data decomposition request cannot be satisfied (e.g. more
    processes than elements with a zero-padding-forbidden layout)."""


class ConvergenceError(ReproError):
    """An iterative solver failed to reach its tolerance within the
    allowed number of iterations."""


class NetworkError(ReproError):
    """A wide-area network query referenced unknown sites or an
    unreachable destination."""


class ProgramModelError(ReproError):
    """The HPCC program model was queried with unknown agencies,
    components, or fiscal years."""
