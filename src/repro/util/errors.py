"""Exception hierarchy shared across the ``repro`` library.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch library-level failures without also swallowing programming errors
(``TypeError``, ``KeyError`` from unrelated code, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A machine, network, or program model was built with invalid
    parameters (non-positive counts, unknown presets, inconsistent
    shapes)."""


class TopologyError(ConfigurationError):
    """An interconnect topology was asked about a node it does not
    contain, or was constructed with an impossible shape."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class DeadlockError(SimulationError):
    """All live ranks are blocked on communication that can never
    complete (e.g. a receive with no matching send).

    Carries the engine's wait-for-graph explanation of the deadlock:

    ``wait_for``
        ``{blocked_rank: [ranks it waits on]}`` -- the edges of the
        wait-for graph at the moment of deadlock.
    ``cycle``
        The detected cycle as a rank list with the start repeated, e.g.
        ``[0, 1, 0]`` for a symmetric exchange -- or ``None`` when the
        deadlock is acyclic (a wait on a failed or finished rank).
    ``failed_ranks``
        Ranks removed by fault injection before the deadlock.
    """

    def __init__(
        self,
        message: str = "",
        *,
        wait_for=None,
        cycle=None,
        failed_ranks=None,
    ) -> None:
        super().__init__(message)
        self.wait_for = {r: list(ts) for r, ts in wait_for.items()} if wait_for else {}
        self.cycle = list(cycle) if cycle else None
        self.failed_ranks = list(failed_ranks) if failed_ranks else []


class CommunicationError(SimulationError):
    """A point-to-point or collective call was issued with invalid
    arguments (bad rank, mismatched collective participation, ...)."""


class SweepPointError(ReproError):
    """One sweep point's workload raised; the original exception is
    chained as ``__cause__`` (serial runs) or summarised in the message
    (process-pool runs, where causes do not cross the pickle boundary).

    ``index``
        The point's position in the sweep's config list -- the position
        that also determined its derived seed.
    ``config_token``
        A compact canonical rendering of the failing config, so logs
        and job reports name the point without the caller re-deriving
        it.
    """

    def __init__(
        self,
        message: str = "",
        *,
        index: int = None,
        config_token: str = None,
    ) -> None:
        super().__init__(message)
        self.index = index
        self.config_token = config_token

    def __reduce__(self):
        # Exceptions pickle by (cls, args); carry the keyword-only
        # attributes across process boundaries via the state dict.
        return (
            type(self),
            (self.args[0] if self.args else "",),
            {"index": self.index, "config_token": self.config_token},
        )


class DecompositionError(ReproError):
    """A data decomposition request cannot be satisfied (e.g. more
    processes than elements with a zero-padding-forbidden layout)."""


class ConvergenceError(ReproError):
    """An iterative solver failed to reach its tolerance within the
    allowed number of iterations."""


class NetworkError(ReproError):
    """A wide-area network query referenced unknown sites or an
    unreachable destination."""


class ProgramModelError(ReproError):
    """The HPCC program model was queried with unknown agencies,
    components, or fiscal years."""


class AnalysisError(ReproError):
    """The static analyzer was given input it cannot process (unparsable
    source, an unknown rule code, a missing path)."""
