"""The wire protocol: job-spec validation and JSON schemas.

A job submission is a JSON object::

    {
      "workload": "lu2d",                 # a registered workload name
      "configs": [{"prows": 2, ...}, ...] # 1..MAX_POINTS config objects
      "seed": 0                           # optional master seed
    }

(``"config": {...}`` is accepted as sugar for a single-point
``configs`` list.)  Validation resolves the workload through the
registry (:func:`repro.sweep.get_workload`) and builds each config
through the workload's dataclass -- unknown fields, missing required
fields, and type-shaped mistakes come back as structured 400s naming
the offending point, never as a half-submitted job.

The seed semantics are exactly ``run_sweep``'s: point ``i`` runs with
``sweep_seeds(seed, n)[i]``, so a served job is bit-identical to the
same sweep run directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.serve.errors import ProtocolError, UnknownWorkloadError
from repro.sweep import WorkloadEntry, config_from_dict, get_workload
from repro.util.errors import ConfigurationError

#: Upper bound on points per job: one request must not pin the whole
#: backend indefinitely; split larger campaigns across jobs.
MAX_POINTS = 4096

#: Upper bound on jobs per ``POST /jobs/batch`` request.
MAX_BATCH_JOBS = 256

#: Upper bound on total points across one batch request -- the same
#: work bound a single maximal job carries.
MAX_BATCH_POINTS = MAX_POINTS

#: Fields a submission may carry; anything else is a typo we reject.
_ALLOWED_KEYS = frozenset({"workload", "config", "configs", "seed"})

#: Fields a batch envelope may carry.
_BATCH_KEYS = frozenset({"jobs"})


@dataclass(frozen=True)
class JobSpec:
    """A validated job submission."""

    workload: str
    configs: Sequence[Any]  # workload config dataclass instances
    seed: int = 0
    raw_configs: Sequence[Mapping[str, Any]] = field(default=(), compare=False)

    @property
    def points(self) -> int:
        return len(self.configs)


def parse_job_spec(
    payload: Any,
    resolve: Optional[Callable[[str], WorkloadEntry]] = None,
) -> "tuple[WorkloadEntry, JobSpec]":
    """Validate a decoded submission body into ``(entry, spec)``.

    ``resolve`` defaults to the global workload registry; the server
    passes its own resolver so tests can inject private workloads.
    """
    if resolve is None:
        resolve = get_workload
    if not isinstance(payload, Mapping):
        raise ProtocolError(
            f"job spec must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - _ALLOWED_KEYS)
    if unknown:
        raise ProtocolError(
            f"unknown job spec field(s): {', '.join(unknown)}",
            details={"unknown": unknown, "allowed": sorted(_ALLOWED_KEYS)},
        )

    name = payload.get("workload")
    if not isinstance(name, str) or not name:
        raise ProtocolError("job spec needs a non-empty string 'workload'")
    try:
        entry = resolve(name)
    except ConfigurationError as exc:
        raise UnknownWorkloadError(str(exc), details={"workload": name}) from None

    if "config" in payload and "configs" in payload:
        raise ProtocolError("give either 'config' or 'configs', not both")
    if "config" in payload:
        raw_configs: Any = [payload["config"]]
    else:
        raw_configs = payload.get("configs")
    if not isinstance(raw_configs, list) or not raw_configs:
        raise ProtocolError(
            "job spec needs 'configs' (a non-empty list of config objects) "
            "or 'config' (a single config object)"
        )
    if len(raw_configs) > MAX_POINTS:
        raise ProtocolError(
            f"too many points: {len(raw_configs)} > {MAX_POINTS}; "
            "split the campaign across jobs",
            details={"max_points": MAX_POINTS},
        )

    seed = payload.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise ProtocolError(f"seed must be an integer, got {seed!r}")

    configs = []
    for i, raw in enumerate(raw_configs):
        try:
            configs.append(config_from_dict(entry.config_type, raw))
        except (ConfigurationError, TypeError) as exc:
            raise ProtocolError(
                f"bad config at point {i}: {exc}", details={"point": i}
            ) from None

    spec = JobSpec(
        workload=name,
        configs=tuple(configs),
        seed=seed,
        raw_configs=tuple(dict(r) for r in raw_configs),
    )
    return entry, spec


def parse_job_batch(
    payload: Any,
    resolve: Optional[Callable[[str], WorkloadEntry]] = None,
) -> "List[tuple[WorkloadEntry, JobSpec]]":
    """Validate a ``POST /jobs/batch`` body into ``[(entry, spec), ...]``.

    The envelope is ``{"jobs": [<job spec>, ...]}`` where each element
    obeys :func:`parse_job_spec` exactly.  Validation is all-or-nothing
    -- a bad job rejects the whole batch naming its index, never a
    half-submitted batch -- and amortised: each workload name is
    resolved through the registry once per batch, not once per job.
    """
    if resolve is None:
        resolve = get_workload
    if not isinstance(payload, Mapping):
        raise ProtocolError(
            f"batch body must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - _BATCH_KEYS)
    if unknown:
        raise ProtocolError(
            f"unknown batch field(s): {', '.join(unknown)}",
            details={"unknown": unknown, "allowed": sorted(_BATCH_KEYS)},
        )
    jobs = payload.get("jobs")
    if not isinstance(jobs, list) or not jobs:
        raise ProtocolError(
            "batch body needs 'jobs' (a non-empty list of job specs)"
        )
    if len(jobs) > MAX_BATCH_JOBS:
        raise ProtocolError(
            f"too many jobs in one batch: {len(jobs)} > {MAX_BATCH_JOBS}; "
            "split the submission across batches",
            details={"max_batch_jobs": MAX_BATCH_JOBS},
        )

    # One registry resolution per distinct workload name in the batch.
    memo: Dict[str, WorkloadEntry] = {}

    def memo_resolve(name: str) -> WorkloadEntry:
        entry = memo.get(name)
        if entry is None:
            entry = memo[name] = resolve(name)
        return entry

    parsed: List[tuple] = []
    total_points = 0
    for j, job_payload in enumerate(jobs):
        try:
            entry, spec = parse_job_spec(job_payload, resolve=memo_resolve)
        except ProtocolError as exc:
            raise ProtocolError(
                f"bad job at index {j}: {exc}",
                details={**exc.details, "job_index": j},
            ) from None
        total_points += spec.points
        parsed.append((entry, spec))
    if total_points > MAX_BATCH_POINTS:
        raise ProtocolError(
            f"too many points across the batch: {total_points} > "
            f"{MAX_BATCH_POINTS}; split the campaign",
            details={"max_batch_points": MAX_BATCH_POINTS},
        )
    return parsed


def registry_resolver(
    overrides: Optional[Mapping[str, WorkloadEntry]] = None,
) -> Callable[[str], WorkloadEntry]:
    """A resolver checking ``overrides`` first, then the global registry.

    Servers are constructed with this so tests can mount private
    workloads (sleepers, crashers) without touching global state.
    """
    table: Dict[str, WorkloadEntry] = dict(overrides or {})

    def resolve(name: str) -> WorkloadEntry:
        if name in table:
            return table[name]
        return get_workload(name)

    return resolve
