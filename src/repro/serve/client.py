"""A small synchronous client for the job server, plus a test harness.

The client speaks plain stdlib ``http.client`` -- one connection per
request, matching the server's ``Connection: close`` policy -- and is
what the end-to-end tests, the benchmark, and ``examples/serve_demo.py``
drive.  :func:`serve_in_thread` runs a :class:`JobServer` on its own
event loop in a daemon thread, so synchronous code (pytest, demos) can
exercise the full HTTP path without managing asyncio itself.
"""

from __future__ import annotations

import asyncio
import contextlib
import http.client
import json
import threading
import time
from typing import Any, Dict, Iterator, List, Optional

from repro.serve.app import JobServer
from repro.serve.errors import ServeClientError, ServeError


class ServeClient:
    """Talk to a running job server over HTTP/JSON."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8732, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing -----------------------------------------------------

    def request(
        self, method: str, path: str, payload: Any = None
    ) -> "tuple[int, Any]":
        """One round trip; returns ``(status, decoded_json)`` raw.

        Error statuses are returned, not raised -- tests assert on
        them; the typed helpers below raise :class:`ServeClientError`.
        """
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            text = response.read().decode("utf-8")
            decoded = json.loads(text) if text else None
            return response.status, decoded
        finally:
            conn.close()

    def _checked(self, method: str, path: str, payload: Any = None) -> Any:
        status, decoded = self.request(method, path, payload)
        if status >= 400:
            message = (
                decoded.get("error", {}).get("message", "")
                if isinstance(decoded, dict)
                else str(decoded)
            )
            raise ServeClientError(
                f"{method} {path} -> {status}: {message}",
                status=status,
                payload=decoded,
            )
        return decoded

    # -- API ----------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._checked("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._checked("GET", "/stats")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._checked("GET", "/jobs")["jobs"]

    def submit(
        self,
        workload: str,
        configs: List[Dict[str, Any]],
        seed: int = 0,
    ) -> Dict[str, Any]:
        """Submit a job; returns the submit summary (job_id, dedupe)."""
        return self._checked(
            "POST", "/jobs", {"workload": workload, "configs": configs, "seed": seed}
        )

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._checked("GET", f"/jobs/{job_id}")

    def wait(
        self, job_id: str, timeout: float = 60.0, poll_s: float = 0.02
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its full payload."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.job(job_id)
            if payload["state"] in ("done", "failed"):
                return payload
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"timed out after {timeout}s waiting for {job_id} "
                    f"(state {payload['state']}, "
                    f"{payload['settled']}/{payload['points']} settled)"
                )
            time.sleep(poll_s)

    def run(
        self,
        workload: str,
        configs: List[Dict[str, Any]],
        seed: int = 0,
        timeout: float = 60.0,
    ) -> Dict[str, Any]:
        """Submit and wait; the one-call path the demo and bench use."""
        submitted = self.submit(workload, configs, seed=seed)
        if submitted["state"] in ("done", "failed"):
            # Fully deduped jobs settle inside the submit request.
            payload = self.job(submitted["job_id"])
        else:
            payload = self.wait(submitted["job_id"], timeout=timeout)
        payload["dedupe"] = submitted["dedupe"]
        return payload

    def events(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Stream the job's NDJSON progress events until it finishes."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                text = response.read().decode("utf-8")
                decoded = json.loads(text) if text else None
                raise ServeClientError(
                    f"GET /jobs/{job_id}/events -> {response.status}",
                    status=response.status,
                    payload=decoded,
                )
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()


class ServerHandle:
    """What :func:`serve_in_thread` yields: address + a bound client."""

    def __init__(self, server: JobServer, loop: asyncio.AbstractEventLoop):
        self.server = server
        self.loop = loop

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def client(self, timeout: float = 30.0) -> ServeClient:
        return ServeClient(self.server.host, self.server.port, timeout=timeout)


@contextlib.contextmanager
def serve_in_thread(startup_timeout: float = 10.0, **server_kwargs):
    """Run a :class:`JobServer` in a daemon thread; yield a handle.

    The server (and its asyncio primitives) is constructed *inside* the
    thread's event loop; shutdown is requested thread-safely and the
    thread joined on exit.
    """
    started = threading.Event()
    state: Dict[str, Any] = {}

    async def _main() -> None:
        server = JobServer(**server_kwargs)
        try:
            await server.start()
        except Exception as exc:
            state["error"] = exc
            started.set()
            return
        state["server"] = server
        state["loop"] = asyncio.get_running_loop()
        started.set()
        try:
            await server.wait_closed()
        finally:
            await server.close()

    thread = threading.Thread(
        target=lambda: asyncio.run(_main()), name="repro-serve", daemon=True
    )
    thread.start()
    if not started.wait(timeout=startup_timeout):
        raise ServeError("job server failed to start within the timeout")
    if "error" in state:
        raise state["error"]
    server: JobServer = state["server"]
    loop: asyncio.AbstractEventLoop = state["loop"]
    try:
        yield ServerHandle(server, loop)
    finally:
        def _shutdown() -> None:
            asyncio.ensure_future(server.close())

        try:
            loop.call_soon_threadsafe(_shutdown)
        except RuntimeError:
            pass  # loop already gone
        thread.join(timeout=startup_timeout)
