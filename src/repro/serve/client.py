"""A small synchronous client for the job server, plus a test harness.

The client speaks plain stdlib ``http.client`` over a **pool of
persistent connections**: the server's HTTP/1.1 keep-alive means a
high-rate caller pays TCP setup once per connection, not once per
request.  A pooled connection the server has since idle-closed is
detected on use and transparently retried on a fresh one; a connection
that dies *mid-response* surfaces as a typed
:class:`~repro.serve.errors.ServeTransportError` carrying the request
context (method, path, job id when identifiable, bytes/events read) --
never a bare socket error.  ``keep_alive=False`` restores the old
one-connection-per-request behaviour.

:func:`serve_in_thread` runs a :class:`JobServer` on its own event loop
in a daemon thread, so synchronous code (pytest, demos) can exercise
the full HTTP path without managing asyncio itself.
"""

from __future__ import annotations

import asyncio
import contextlib
import http.client
import json
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.serve.app import JobServer
from repro.serve.errors import ServeClientError, ServeError, ServeTransportError

#: Job states a poller treats as finished.
TERMINAL_STATES = ("done", "failed", "cancelled")


def _job_id_from_path(path: str) -> Optional[str]:
    """The job id named by a ``/jobs/{id}[...]`` path, if any."""
    segments = [s for s in path.split("/") if s]
    if len(segments) >= 2 and segments[0] == "jobs" and segments[1] != "batch":
        return segments[1]
    return None


class ServeClient:
    """Talk to a running job server over HTTP/JSON.

    Thread-safe: the connection pool is guarded by a lock and each
    in-flight request owns its connection exclusively.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8732,
        timeout: float = 30.0,
        keep_alive: bool = True,
        pool_size: int = 4,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.keep_alive = keep_alive
        self.pool_size = pool_size
        self._pool: List[http.client.HTTPConnection] = []
        self._lock = threading.Lock()

    # -- connection pool ----------------------------------------------

    def _fresh(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    def _acquire(self) -> "Tuple[http.client.HTTPConnection, bool]":
        """A connection plus whether it was pooled (already used once).

        Only pooled connections risk the stale-keep-alive race (the
        server idle-closing between our requests), so only they earn a
        retry on failure.
        """
        with self._lock:
            if self._pool:
                return self._pool.pop(), True
        return self._fresh(), False

    def _release(self, conn: http.client.HTTPConnection) -> None:
        if not self.keep_alive:
            conn.close()
            return
        with self._lock:
            if len(self._pool) < self.pool_size:
                self._pool.append(conn)
                return
        conn.close()

    def close(self) -> None:
        """Drop every pooled connection; the client stays usable."""
        with self._lock:
            pool, self._pool = self._pool, []
        for conn in pool:
            conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- plumbing -----------------------------------------------------

    def request(
        self, method: str, path: str, payload: Any = None
    ) -> "tuple[int, Any]":
        """One round trip; returns ``(status, decoded_json)`` raw.

        Error statuses are returned, not raised -- tests assert on
        them; the typed helpers below raise :class:`ServeClientError`.
        Transport failures (server gone, connection closed before or
        during the response) raise :class:`ServeTransportError`.
        """
        body = None
        headers: Dict[str, str] = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if not self.keep_alive:
            headers["Connection"] = "close"

        for attempt in (0, 1):
            if attempt == 0:
                conn, pooled = self._acquire()
            else:
                conn, pooled = self._fresh(), False
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
            except (http.client.HTTPException, OSError) as exc:
                conn.close()
                if pooled:
                    continue  # stale keep-alive connection: retry fresh
                raise ServeTransportError(
                    f"{method} {path}: no response from "
                    f"{self.host}:{self.port} ({type(exc).__name__}: {exc})",
                    method=method,
                    path=path,
                    job_id=_job_id_from_path(path),
                ) from exc
            try:
                text = response.read().decode("utf-8")
            except (http.client.HTTPException, OSError) as exc:
                conn.close()
                partial = getattr(exc, "partial", b"") or b""
                raise ServeTransportError(
                    f"{method} {path}: server closed the connection "
                    f"mid-response (status {response.status}, "
                    f"{len(partial)} bytes read)",
                    method=method,
                    path=path,
                    job_id=_job_id_from_path(path),
                    partial_bytes=len(partial),
                ) from exc
            if response.will_close:
                conn.close()
            else:
                self._release(conn)
            decoded = json.loads(text) if text else None
            return response.status, decoded
        raise AssertionError("unreachable: fresh-connection attempt raises")

    def _checked(self, method: str, path: str, payload: Any = None) -> Any:
        status, decoded = self.request(method, path, payload)
        if status >= 400:
            message = (
                decoded.get("error", {}).get("message", "")
                if isinstance(decoded, dict)
                else str(decoded)
            )
            raise ServeClientError(
                f"{method} {path} -> {status}: {message}",
                status=status,
                payload=decoded,
            )
        return decoded

    # -- API ----------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._checked("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._checked("GET", "/stats")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._checked("GET", "/jobs")["jobs"]

    def submit(
        self,
        workload: str,
        configs: List[Dict[str, Any]],
        seed: int = 0,
    ) -> Dict[str, Any]:
        """Submit a job; returns the submit summary (job_id, dedupe)."""
        return self._checked(
            "POST", "/jobs", {"workload": workload, "configs": configs, "seed": seed}
        )

    def submit_batch(self, jobs: List[Dict[str, Any]]) -> Dict[str, Any]:
        """Submit many job specs in one request (``POST /jobs/batch``).

        Each element is a full job spec dict (``workload``, ``configs``
        or ``config``, optional ``seed``).  Returns the batch summary:
        per-job summaries (with ``location``) plus aggregated dedupe.
        """
        return self._checked("POST", "/jobs/batch", {"jobs": jobs})

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._checked("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel a job's pending points (``DELETE /jobs/{id}``)."""
        return self._checked("DELETE", f"/jobs/{job_id}")

    def wait(
        self, job_id: str, timeout: float = 60.0, poll_s: float = 0.02
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its full payload."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.job(job_id)
            if payload["state"] in TERMINAL_STATES:
                return payload
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"timed out after {timeout}s waiting for {job_id} "
                    f"(state {payload['state']}, "
                    f"{payload['settled']}/{payload['points']} settled)"
                )
            time.sleep(poll_s)

    def run(
        self,
        workload: str,
        configs: List[Dict[str, Any]],
        seed: int = 0,
        timeout: float = 60.0,
    ) -> Dict[str, Any]:
        """Submit and wait; the one-call path the demo and bench use."""
        submitted = self.submit(workload, configs, seed=seed)
        if submitted["state"] in TERMINAL_STATES:
            # Fully deduped jobs settle inside the submit request.
            payload = self.job(submitted["job_id"])
        else:
            payload = self.wait(submitted["job_id"], timeout=timeout)
        payload["dedupe"] = submitted["dedupe"]
        return payload

    def run_batch(
        self, jobs: List[Dict[str, Any]], timeout: float = 60.0
    ) -> List[Dict[str, Any]]:
        """Submit a batch and wait for every job; full payloads in order."""
        batch = self.submit_batch(jobs)
        payloads = []
        for summary in batch["jobs"]:
            if summary["state"] in TERMINAL_STATES:
                payload = self.job(summary["job_id"])
            else:
                payload = self.wait(summary["job_id"], timeout=timeout)
            payload["dedupe"] = summary["dedupe"]
            payloads.append(payload)
        return payloads

    def events(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Stream the job's NDJSON progress events until it finishes.

        The stream is close-delimited, so it rides its own dedicated
        connection, never a pooled one.
        """
        conn = self._fresh()
        received = 0
        try:
            try:
                conn.request("GET", f"/jobs/{job_id}/events")
                response = conn.getresponse()
            except (http.client.HTTPException, OSError) as exc:
                raise ServeTransportError(
                    f"GET /jobs/{job_id}/events: no response from "
                    f"{self.host}:{self.port} ({type(exc).__name__}: {exc})",
                    method="GET",
                    path=f"/jobs/{job_id}/events",
                    job_id=job_id,
                ) from exc
            if response.status >= 400:
                text = response.read().decode("utf-8")
                decoded = json.loads(text) if text else None
                raise ServeClientError(
                    f"GET /jobs/{job_id}/events -> {response.status}",
                    status=response.status,
                    payload=decoded,
                )
            while True:
                try:
                    line = response.readline()
                except (http.client.HTTPException, OSError) as exc:
                    raise ServeTransportError(
                        f"GET /jobs/{job_id}/events: server closed the "
                        f"stream mid-flight after {received} events "
                        f"({type(exc).__name__}: {exc})",
                        method="GET",
                        path=f"/jobs/{job_id}/events",
                        job_id=job_id,
                        events_received=received,
                    ) from exc
                if not line:
                    return
                line = line.strip()
                if line:
                    received += 1
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()


class ServerHandle:
    """What :func:`serve_in_thread` yields: address + a bound client."""

    def __init__(self, server: JobServer, loop: asyncio.AbstractEventLoop):
        self.server = server
        self.loop = loop

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def client(self, timeout: float = 30.0, **kwargs) -> ServeClient:
        return ServeClient(
            self.server.host, self.server.port, timeout=timeout, **kwargs
        )


@contextlib.contextmanager
def serve_in_thread(startup_timeout: float = 10.0, **server_kwargs):
    """Run a :class:`JobServer` in a daemon thread; yield a handle.

    The server (and its asyncio primitives) is constructed *inside* the
    thread's event loop; shutdown is requested thread-safely and the
    thread joined on exit.
    """
    started = threading.Event()
    state: Dict[str, Any] = {}

    async def _main() -> None:
        server = JobServer(**server_kwargs)
        try:
            await server.start()
        except Exception as exc:
            state["error"] = exc
            started.set()
            return
        state["server"] = server
        state["loop"] = asyncio.get_running_loop()
        started.set()
        try:
            await server.wait_closed()
        finally:
            await server.close()

    thread = threading.Thread(
        target=lambda: asyncio.run(_main()), name="repro-serve", daemon=True
    )
    thread.start()
    if not started.wait(timeout=startup_timeout):
        raise ServeError("job server failed to start within the timeout")
    if "error" in state:
        raise state["error"]
    server: JobServer = state["server"]
    loop: asyncio.AbstractEventLoop = state["loop"]
    try:
        yield ServerHandle(server, loop)
    finally:
        def _shutdown() -> None:
            asyncio.ensure_future(server.close())

        try:
            loop.call_soon_threadsafe(_shutdown)
        except RuntimeError:
            pass  # loop already gone
        thread.join(timeout=startup_timeout)
