"""Pluggable execution backends for the job server.

The front-end (routes, job table, dedupe) is one fixed piece; *where*
sweep points actually execute is a backend decision -- the SHARP-style
split between launcher and interchangeable execution engines.  A
backend exposes one awaitable operation::

    result = await backend.run_point(fn, config, seed, index)

plus ``utilization()`` for ``/stats`` and ``close()`` for shutdown.
Both shipped backends funnel the call through
:func:`repro.sweep.call_sweep_point`, so workload failures surface as
the same :class:`~repro.util.errors.SweepPointError` the sweep runner
raises -- one failure vocabulary across CLI and service.

``InProcessBackend``
    A thread pool in the server process.  No pickling, so tests can run
    closures and private workloads; simulation work holds the GIL, so
    it is a correctness/test backend, not a throughput one.

``PoolBackend``
    A persistent ``concurrent.futures.ProcessPoolExecutor`` (a
    multiprocessing worker pool with health detection).  Workload
    functions and configs must be picklable -- exactly the registry
    contract.  A dead worker (OOM-kill, segfault, ``os._exit``) breaks
    the pool: the affected points fail with :class:`BackendError`, the
    pool is replaced in place, and the server keeps serving.

``ShardedBackend``
    The multi-host story: N child backends (pool servers by default)
    behind one interface, points routed by **consistent hashing on the
    point's cache key** -- the same content hash the RunCache and the
    dedupe layer use -- so a given (workload, config, seed) always
    lands on the same shard and whatever warm state that shard holds
    stays useful.  A shard dying fails only *its* in-flight points
    (annotated with the shard index) and is replaced in place, leaving
    the hash ring -- and therefore every other point's routing --
    untouched.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import os
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional

from repro.serve.errors import BackendError
from repro.sweep import cache_key, call_sweep_point
from repro.util.errors import ConfigurationError


class Backend:
    """Interface: run one sweep point somewhere, asynchronously.

    ``key`` is the point's content-address (``sweep.cache.cache_key``);
    callers that already computed it pass it so routing backends do not
    hash twice.  Backends that do not route may ignore it.
    """

    name = "abstract"

    async def run_point(
        self,
        fn: Callable[[Any, int], Any],
        config: Any,
        seed: int,
        index: int = 0,
        key: Optional[str] = None,
    ) -> Any:
        raise NotImplementedError

    def utilization(self) -> Dict[str, Any]:
        """Point-in-time load for ``/stats``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release workers; idempotent."""


class _ExecutorBackend(Backend):
    """Shared machinery: dispatch to a concurrent.futures executor."""

    def __init__(self, workers: int):
        if workers < 1:
            raise ConfigurationError(f"backend workers must be >= 1, got {workers}")
        self.workers = workers
        self.busy = 0
        self.completed = 0
        self.failed = 0

    def _executor(self):
        raise NotImplementedError

    async def run_point(self, fn, config, seed, index=0, key=None):
        loop = asyncio.get_running_loop()
        executor = self._executor()
        self.busy += 1
        try:
            result = await loop.run_in_executor(
                executor, call_sweep_point, fn, config, seed, index
            )
        except BrokenExecutor as exc:
            self.failed += 1
            self._on_broken(executor)
            raise BackendError(
                f"{self.name} backend lost a worker running point {index}; "
                "the pool was replaced and the server stays up",
                details={"point": index},
            ) from exc
        except Exception:
            self.failed += 1
            raise
        else:
            self.completed += 1
            return result
        finally:
            self.busy -= 1

    def _on_broken(self, executor) -> None:
        """React to a broken executor (process backends replace it)."""

    def utilization(self) -> Dict[str, Any]:
        return {
            "backend": self.name,
            "workers": self.workers,
            "busy": self.busy,
            "completed": self.completed,
            "failed": self.failed,
        }


class InProcessBackend(_ExecutorBackend):
    """Run points on server-process threads (tests, demos, tiny jobs)."""

    name = "inprocess"

    def __init__(self, workers: int = 1):
        super().__init__(workers)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )

    def _executor(self):
        return self._pool

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)


class PoolBackend(_ExecutorBackend):
    """Run points on a persistent process pool; survives worker death."""

    name = "pool"

    def __init__(self, workers: Optional[int] = None):
        super().__init__(workers or os.cpu_count() or 1)
        self._pool = ProcessPoolExecutor(max_workers=self.workers)
        self.restarts = 0

    def _executor(self):
        return self._pool

    def _on_broken(self, executor) -> None:
        # Several in-flight points can observe the same broken pool;
        # only the first one swaps in a replacement.
        if executor is self._pool:
            self.restarts += 1
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
            executor.shutdown(wait=False)

    def utilization(self) -> Dict[str, Any]:
        info = super().utilization()
        info["restarts"] = self.restarts
        return info

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)


class _HashRing:
    """A consistent-hash ring over shard indices.

    Each shard owns ``replicas`` pseudo-random positions on a 64-bit
    ring (SHA-256 of ``"shard-{s}-{r}"``); a cache key is placed by its
    leading 64 bits and routed clockwise to the next shard position.
    The layout depends only on (shard count, replicas), so every server
    with the same shard count routes a key identically -- and replacing
    a dead shard *in place* changes nothing at all.
    """

    def __init__(self, shards: int, replicas: int = 64):
        if shards < 1:
            raise ConfigurationError(f"hash ring needs >= 1 shard, got {shards}")
        if replicas < 1:
            raise ConfigurationError(f"hash ring needs >= 1 replica, got {replicas}")
        points = []
        for shard in range(shards):
            for replica in range(replicas):
                digest = hashlib.sha256(f"shard-{shard}-{replica}".encode()).digest()
                points.append((int.from_bytes(digest[:8], "big"), shard))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._shards = [s for _, s in points]

    def lookup(self, key: str) -> int:
        """The shard owning ``key`` (a sha256 hex cache key)."""
        position = int(key[:16], 16)
        i = bisect.bisect_right(self._hashes, position)
        if i == len(self._hashes):
            i = 0  # wrap around the ring
        return self._shards[i]


class ShardedBackend(Backend):
    """Split points across several child backends by cache-key hash.

    The default child is a :class:`PoolBackend` -- N independent pool
    servers behind one front door, the commodity scale-out shape.  A
    custom ``factory(index) -> Backend`` swaps in anything else (tests
    use in-process shards).  Failure containment is per shard: a
    worker death inside shard *k* fails only the points in flight on
    *k* (the :class:`BackendError` is annotated with the shard index)
    while the shard heals itself in place; :meth:`replace_shard` is the
    explicit big hammer for a shard wedged beyond self-repair, and
    neither changes the ring, so cache affinity survives.
    """

    name = "sharded"

    def __init__(
        self,
        shards: int = 2,
        workers: Optional[int] = None,
        factory: Optional[Callable[[int], Backend]] = None,
        replicas: int = 64,
    ):
        if shards < 1:
            raise ConfigurationError(f"sharded backend needs >= 1 shard, got {shards}")
        if factory is None:
            per_shard = workers  # None = each pool sizes itself
            factory = lambda index: PoolBackend(per_shard)  # noqa: E731
        self._factory = factory
        self.shards: List[Backend] = [factory(i) for i in range(shards)]
        self.ring = _HashRing(shards, replicas)
        self.points_by_shard = [0] * shards
        self.failed_by_shard = [0] * shards
        self.shards_replaced = 0

    @property
    def workers(self) -> int:
        return sum(getattr(shard, "workers", 1) for shard in self.shards)

    def shard_for(self, key: str) -> int:
        """Which shard a cache key routes to (tests and /stats use it)."""
        return self.ring.lookup(key)

    async def run_point(self, fn, config, seed, index=0, key=None):
        if key is None:
            key = cache_key(fn, config, seed)
        shard = self.ring.lookup(key)
        self.points_by_shard[shard] += 1
        try:
            return await self.shards[shard].run_point(
                fn, config, seed, index, key=key
            )
        except BackendError as exc:
            # Containment: only this shard's points fail; the child has
            # already replaced its own pool.  Name the shard so the
            # job-level failure says where the machine died.
            self.failed_by_shard[shard] += 1
            exc.details["shard"] = shard
            raise

    def replace_shard(self, index: int) -> Backend:
        """Rebuild shard ``index`` in place via the factory.

        The ring is untouched: the replacement inherits exactly the key
        range its predecessor owned.
        """
        old = self.shards[index]
        self.shards[index] = self._factory(index)
        self.shards_replaced += 1
        try:
            old.close()
        except Exception:
            pass  # a wedged shard must not block its own replacement
        return self.shards[index]

    def utilization(self) -> Dict[str, Any]:
        per_shard = [shard.utilization() for shard in self.shards]
        return {
            "backend": self.name,
            "shards": len(self.shards),
            "workers": self.workers,
            "busy": sum(u.get("busy", 0) for u in per_shard),
            "completed": sum(u.get("completed", 0) for u in per_shard),
            "failed": sum(u.get("failed", 0) for u in per_shard),
            "restarts": sum(u.get("restarts", 0) for u in per_shard),
            "points_by_shard": list(self.points_by_shard),
            "failed_by_shard": list(self.failed_by_shard),
            "shards_replaced": self.shards_replaced,
            "per_shard": per_shard,
        }

    def close(self) -> None:
        for shard in self.shards:
            shard.close()


#: Backend factories by CLI name.
BACKENDS: Dict[str, Callable[..., Backend]] = {
    "inprocess": InProcessBackend,
    "pool": PoolBackend,
}


def make_backend(
    name: str, workers: Optional[int] = None, shards: int = 0
) -> Backend:
    """Build a backend by registry name (``inprocess`` or ``pool``).

    ``shards >= 2`` wraps the named backend in a
    :class:`ShardedBackend`: N independent instances (``workers`` each)
    behind consistent-hash routing -- ``repro serve --shards N``.
    """
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {name!r}; available: {sorted(BACKENDS)}"
        ) from None
    if shards and shards >= 2:
        def shard_factory(index: int) -> Backend:
            return factory() if workers is None else factory(workers)

        return ShardedBackend(shards=shards, factory=shard_factory)
    if workers is None:
        return factory()
    return factory(workers)
