"""Pluggable execution backends for the job server.

The front-end (routes, job table, dedupe) is one fixed piece; *where*
sweep points actually execute is a backend decision -- the SHARP-style
split between launcher and interchangeable execution engines.  A
backend exposes one awaitable operation::

    result = await backend.run_point(fn, config, seed, index)

plus ``utilization()`` for ``/stats`` and ``close()`` for shutdown.
Both shipped backends funnel the call through
:func:`repro.sweep.call_sweep_point`, so workload failures surface as
the same :class:`~repro.util.errors.SweepPointError` the sweep runner
raises -- one failure vocabulary across CLI and service.

``InProcessBackend``
    A thread pool in the server process.  No pickling, so tests can run
    closures and private workloads; simulation work holds the GIL, so
    it is a correctness/test backend, not a throughput one.

``PoolBackend``
    A persistent ``concurrent.futures.ProcessPoolExecutor`` (a
    multiprocessing worker pool with health detection).  Workload
    functions and configs must be picklable -- exactly the registry
    contract.  A dead worker (OOM-kill, segfault, ``os._exit``) breaks
    the pool: the affected points fail with :class:`BackendError`, the
    pool is replaced in place, and the server keeps serving.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Dict, Optional

from repro.serve.errors import BackendError
from repro.sweep import call_sweep_point
from repro.util.errors import ConfigurationError


class Backend:
    """Interface: run one sweep point somewhere, asynchronously."""

    name = "abstract"

    async def run_point(
        self, fn: Callable[[Any, int], Any], config: Any, seed: int, index: int = 0
    ) -> Any:
        raise NotImplementedError

    def utilization(self) -> Dict[str, Any]:
        """Point-in-time load for ``/stats``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release workers; idempotent."""


class _ExecutorBackend(Backend):
    """Shared machinery: dispatch to a concurrent.futures executor."""

    def __init__(self, workers: int):
        if workers < 1:
            raise ConfigurationError(f"backend workers must be >= 1, got {workers}")
        self.workers = workers
        self.busy = 0
        self.completed = 0
        self.failed = 0

    def _executor(self):
        raise NotImplementedError

    async def run_point(self, fn, config, seed, index=0):
        loop = asyncio.get_running_loop()
        executor = self._executor()
        self.busy += 1
        try:
            result = await loop.run_in_executor(
                executor, call_sweep_point, fn, config, seed, index
            )
        except BrokenExecutor as exc:
            self.failed += 1
            self._on_broken(executor)
            raise BackendError(
                f"{self.name} backend lost a worker running point {index}; "
                "the pool was replaced and the server stays up",
                details={"point": index},
            ) from exc
        except Exception:
            self.failed += 1
            raise
        else:
            self.completed += 1
            return result
        finally:
            self.busy -= 1

    def _on_broken(self, executor) -> None:
        """React to a broken executor (process backends replace it)."""

    def utilization(self) -> Dict[str, Any]:
        return {
            "backend": self.name,
            "workers": self.workers,
            "busy": self.busy,
            "completed": self.completed,
            "failed": self.failed,
        }


class InProcessBackend(_ExecutorBackend):
    """Run points on server-process threads (tests, demos, tiny jobs)."""

    name = "inprocess"

    def __init__(self, workers: int = 1):
        super().__init__(workers)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )

    def _executor(self):
        return self._pool

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)


class PoolBackend(_ExecutorBackend):
    """Run points on a persistent process pool; survives worker death."""

    name = "pool"

    def __init__(self, workers: Optional[int] = None):
        super().__init__(workers or os.cpu_count() or 1)
        self._pool = ProcessPoolExecutor(max_workers=self.workers)
        self.restarts = 0

    def _executor(self):
        return self._pool

    def _on_broken(self, executor) -> None:
        # Several in-flight points can observe the same broken pool;
        # only the first one swaps in a replacement.
        if executor is self._pool:
            self.restarts += 1
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
            executor.shutdown(wait=False)

    def utilization(self) -> Dict[str, Any]:
        info = super().utilization()
        info["restarts"] = self.restarts
        return info

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)


#: Backend factories by CLI name.
BACKENDS: Dict[str, Callable[..., Backend]] = {
    "inprocess": InProcessBackend,
    "pool": PoolBackend,
}


def make_backend(name: str, workers: Optional[int] = None) -> Backend:
    """Build a backend by registry name (``inprocess`` or ``pool``)."""
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {name!r}; available: {sorted(BACKENDS)}"
        ) from None
    if workers is None:
        return factory()
    return factory(workers)
