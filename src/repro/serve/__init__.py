"""``repro.serve``: simulation as a service over the sweep layer.

The HPCC testbeds were *shared national resources* -- many users, one
machine room.  This package is that front door for the reproduction: an
asyncio HTTP/JSON job server that accepts machine+workload specs,
answers repeated questions from the content-addressed run cache in
O(1), coalesces identical in-flight requests onto one simulation, and
executes fresh work on pluggable backends (in-process threads or a
persistent process pool).

Quickstart::

    python -m repro serve --port 8732 --backend pool &   # add --shards 4
                                                         # for N pool shards
    curl -d '{"workload": "lu2d", "config": {"prows": 2, "pcols": 2,
              "n": 32}}' http://127.0.0.1:8732/jobs

or, from Python/tests::

    from repro.serve import InProcessBackend, serve_in_thread
    with serve_in_thread(backend=InProcessBackend(workers=2)) as handle:
        result = handle.client().run("lu2d", [{"prows": 2, "pcols": 2, "n": 32}])
"""

from repro.serve.app import JobServer, run_server
from repro.serve.backends import (
    BACKENDS,
    Backend,
    InProcessBackend,
    PoolBackend,
    ShardedBackend,
    make_backend,
)
from repro.serve.client import ServeClient, ServerHandle, serve_in_thread
from repro.serve.errors import (
    BackendError,
    JobNotFoundError,
    ProtocolError,
    ServeClientError,
    ServeError,
    ServeTransportError,
    UnknownWorkloadError,
)
from repro.serve.jobs import Job, JobManager
from repro.serve.protocol import (
    MAX_BATCH_JOBS,
    MAX_BATCH_POINTS,
    MAX_POINTS,
    JobSpec,
    parse_job_batch,
    parse_job_spec,
)

__all__ = [
    "JobServer",
    "run_server",
    "Backend",
    "InProcessBackend",
    "PoolBackend",
    "ShardedBackend",
    "BACKENDS",
    "make_backend",
    "ServeClient",
    "ServerHandle",
    "serve_in_thread",
    "Job",
    "JobManager",
    "JobSpec",
    "parse_job_spec",
    "parse_job_batch",
    "MAX_POINTS",
    "MAX_BATCH_JOBS",
    "MAX_BATCH_POINTS",
    "ServeError",
    "ProtocolError",
    "UnknownWorkloadError",
    "JobNotFoundError",
    "BackendError",
    "ServeClientError",
    "ServeTransportError",
]
