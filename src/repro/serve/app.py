"""The asyncio HTTP/JSON front-end: simulation as a service.

A deliberately small HTTP/1.1 server over stdlib ``asyncio`` streams --
no framework, no new dependencies.  Connections are **persistent**:
HTTP/1.1 keep-alive semantics (``Connection:`` headers honoured, close
on request for HTTP/1.0), a bounded request count per connection, and
an idle timeout between requests, so a high-rate client pays the TCP +
handshake cost once per *session*, not once per job.

Routes::

    POST   /jobs              submit a job spec; 201 + dedupe summary
    POST   /jobs/batch        submit many job specs in one body
    GET    /jobs              job summaries, newest first
    GET    /jobs/{id}         full status + results
    DELETE /jobs/{id}         cancel the job's pending points
    GET    /jobs/{id}/events  NDJSON progress stream until terminal
    GET    /healthz           liveness
    GET    /stats             queue depth, dedupe + data-plane counters

Errors are structured JSON (``{"error": {"code", "message", ...}}``)
with the status taken from the raised :class:`ServeError`; an
unexpected exception is a 500 that never takes the server down -- and,
being framed with ``Content-Length``, never takes the connection down
either.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.serve.backends import Backend, InProcessBackend, make_backend
from repro.serve.errors import JobNotFoundError, ProtocolError, ServeError
from repro.serve.jobs import JobManager
from repro.serve.protocol import parse_job_batch
from repro.sweep import RunCache, WorkloadEntry, workload_names

#: Largest request body accepted, to bound memory per connection.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Per-request header/body read timeout (first request on a
#: connection; see ``keepalive_idle_s`` for the between-request clock).
READ_TIMEOUT_S = 30.0

#: Default idle window a kept-alive connection may sit between
#: requests before the server closes it.
KEEPALIVE_IDLE_S = 30.0

#: Default cap on requests served over one connection -- a backstop
#: against a single client pinning a connection (and its buffers)
#: forever.
MAX_REQUESTS_PER_CONNECTION = 1000

_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large", 500: "Internal Server Error",
}


class JobServer:
    """The job server: routes + job manager + backend, one event loop."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        backend: Optional[Backend] = None,
        cache: Optional[RunCache] = None,
        registry: Optional[Mapping[str, WorkloadEntry]] = None,
        max_jobs: int = 1024,
        keepalive_idle_s: float = KEEPALIVE_IDLE_S,
        max_requests_per_connection: int = MAX_REQUESTS_PER_CONNECTION,
    ):
        self.host = host
        self.port = port  # 0 = ephemeral; updated to the bound port on start()
        self.backend = backend if backend is not None else InProcessBackend()
        self.manager = JobManager(
            self.backend, cache=cache, registry=registry, max_jobs=max_jobs
        )
        self.keepalive_idle_s = keepalive_idle_s
        self.max_requests_per_connection = max_requests_per_connection
        self.started_at: Optional[float] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._closed = asyncio.Event()
        #: Live connection state, so close() can retire kept-alive
        #: connections instead of leaving them to be cancelled mid-read
        #: at loop teardown.
        self._conn_writers: set = set()
        self._conn_tasks: set = set()
        self.requests_served = 0
        self.connections_accepted = 0
        self.connections_open = 0
        #: Connections that served at least a second request -- the
        #: keep-alive win existing at all.
        self.connections_reused = 0
        #: Requests beyond the first on their connection -- each one an
        #: avoided TCP setup/teardown.
        self.requests_reused = 0

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.time()

    async def serve_forever(self) -> None:
        """Run until :meth:`close` (used by the CLI entrypoint)."""
        if self._server is None:
            await self.start()
        await self._closed.wait()

    async def wait_closed(self) -> None:
        await self._closed.wait()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Retire open keep-alive connections: closing the transport
        # EOFs the pending request read, so each handler returns
        # through its normal exit path.  Stragglers (e.g. a watcher
        # streaming a job that never finishes) are cancelled.
        for writer in list(self._conn_writers):
            writer.close()
        pending = {t for t in self._conn_tasks if not t.done()}
        if pending:
            await asyncio.wait(pending, timeout=2.0)
            for task in pending:
                task.cancel()
        self.backend.close()
        self._closed.set()

    # -- HTTP plumbing ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve requests off one connection until it closes.

        HTTP/1.1 keep-alive: the loop keeps reading requests until the
        client asks to close (``Connection: close``, or an HTTP/1.0
        client that never opted in), the per-connection request cap is
        hit, the idle timeout expires between requests, or a response
        without ``Content-Length`` framing (the NDJSON event stream)
        has to close the connection to delimit itself.
        """
        self.connections_accepted += 1
        self.connections_open += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._conn_writers.add(writer)
        served = 0
        try:
            while True:
                timeout = READ_TIMEOUT_S if served == 0 else self.keepalive_idle_s
                try:
                    method, path, headers, version, body = await asyncio.wait_for(
                        self._read_request(reader), timeout=timeout
                    )
                except (asyncio.TimeoutError, asyncio.IncompleteReadError, ValueError):
                    return  # unparsable, idle-expired, or closed: drop it
                served += 1
                self.requests_served += 1
                if served == 2:
                    self.connections_reused += 1
                if served > 1:
                    self.requests_reused += 1
                keep_alive = (
                    _wants_keepalive(version, headers)
                    and served < self.max_requests_per_connection
                )
                streamed = False
                try:
                    streamed = bool(
                        await self._dispatch(
                            method, path, body, writer, keep_alive=keep_alive
                        )
                    )
                except ServeError as exc:
                    await self._send_json(
                        writer, exc.status, exc.to_payload(), keep_alive=keep_alive
                    )
                except (ConnectionResetError, BrokenPipeError):
                    return  # client went away mid-response
                except Exception as exc:  # never let one request kill the server
                    await self._send_json(
                        writer,
                        500,
                        {"error": {"code": "internal",
                                   "message": f"{type(exc).__name__}: {exc}"}},
                        keep_alive=keep_alive,
                    )
                if streamed or not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError):
            return
        finally:
            self.connections_open -= 1
            self._conn_writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(
        self, reader
    ) -> Tuple[str, str, Dict[str, str], str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise ValueError("empty request")
        parts = request_line.split()
        if len(parts) != 3:
            raise ValueError(f"bad request line: {request_line!r}")
        method, target, version = parts
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise ValueError("body too large")
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method.upper(), path, headers, version.upper(), body

    async def _send_json(
        self,
        writer,
        status: int,
        payload: Any,
        extra_headers: Dict[str, str] = None,
        keep_alive: bool = False,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(body)),
            "Connection": "keep-alive" if keep_alive else "close",
        }
        if extra_headers:
            headers.update(extra_headers)
        writer.write(_head(status, headers) + body)
        await writer.drain()

    # -- routing ------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, body: bytes, writer, keep_alive: bool = False
    ) -> Optional[bool]:
        """Route one request; returns truthy when the response was a
        close-delimited stream (the connection cannot be reused)."""
        segments = [s for s in path.split("/") if s]
        if path == "/healthz" and method == "GET":
            await self._send_json(
                writer, 200,
                {"status": "ok", "backend": self.backend.name,
                 "workloads": workload_names()},
                keep_alive=keep_alive,
            )
        elif path == "/stats" and method == "GET":
            stats = self.manager.stats()
            stats["uptime_s"] = round(time.time() - (self.started_at or time.time()), 3)
            stats["requests_served"] = self.requests_served
            stats["http"] = {
                "connections_accepted": self.connections_accepted,
                "connections_open": self.connections_open,
                "connections_reused": self.connections_reused,
                "requests_reused": self.requests_reused,
                "max_requests_per_connection": self.max_requests_per_connection,
                "keepalive_idle_s": self.keepalive_idle_s,
            }
            await self._send_json(writer, 200, stats, keep_alive=keep_alive)
        elif path == "/jobs/batch" and method == "POST":
            await self._post_batch(body, writer, keep_alive)
        elif path == "/jobs" and method == "POST":
            await self._post_job(body, writer, keep_alive)
        elif path == "/jobs" and method == "GET":
            jobs = sorted(self.manager.jobs.values(), key=lambda j: j.id, reverse=True)
            await self._send_json(
                writer, 200, {"jobs": [j.summary() for j in jobs]},
                keep_alive=keep_alive,
            )
        elif len(segments) == 2 and segments[0] == "jobs" and method == "GET":
            job = self.manager.get(segments[1])
            await self._send_json(writer, 200, job.to_payload(), keep_alive=keep_alive)
        elif len(segments) == 2 and segments[0] == "jobs" and method == "DELETE":
            report = self.manager.cancel(segments[1])
            await self._send_json(writer, 200, report, keep_alive=keep_alive)
        elif (
            len(segments) == 3
            and segments[0] == "jobs"
            and segments[2] == "events"
            and method == "GET"
        ):
            await self._stream_events(segments[1], writer)
            return True
        elif path in ("/healthz", "/stats", "/jobs") or (
            segments and segments[0] == "jobs"
        ):
            raise ServeErrorMethod(method, path)
        else:
            raise JobNotFoundError(f"no such route: {method} {path}")
        return False

    @staticmethod
    def _decode_body(body: bytes, what: str) -> Any:
        try:
            payload = json.loads(body.decode("utf-8")) if body else None
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from None
        if payload is None:
            raise ProtocolError(what)
        return payload

    async def _post_job(self, body: bytes, writer, keep_alive: bool) -> None:
        payload = self._decode_body(body, "POST /jobs needs a JSON job spec body")
        job = self.manager.submit_payload(payload)
        response = job.summary()
        response["location"] = f"/jobs/{job.id}"
        await self._send_json(
            writer, 201, response,
            extra_headers={"Location": f"/jobs/{job.id}"},
            keep_alive=keep_alive,
        )

    async def _post_batch(self, body: bytes, writer, keep_alive: bool) -> None:
        payload = self._decode_body(
            body, "POST /jobs/batch needs a JSON body with a 'jobs' list"
        )
        parsed = parse_job_batch(payload, resolve=self.manager.resolve)
        jobs = self.manager.submit_batch(parsed)
        summaries = []
        dedupe = {"cache_hits": 0, "coalesced": 0, "scheduled": 0}
        for job in jobs:
            summary = job.summary()
            summary["location"] = f"/jobs/{job.id}"
            summaries.append(summary)
            for bucket, count in summary["dedupe"].items():
                dedupe[bucket] += count
        await self._send_json(
            writer, 201,
            {
                "jobs": summaries,
                "batch": {
                    "jobs": len(jobs),
                    "points": sum(s["points"] for s in summaries),
                    "dedupe": dedupe,
                },
            },
            keep_alive=keep_alive,
        )

    async def _stream_events(self, job_id: str, writer) -> None:
        job = self.manager.get(job_id)  # 404 before headers, not mid-stream
        writer.write(
            _head(
                200,
                {"Content-Type": "application/x-ndjson", "Connection": "close"},
            )
        )
        await writer.drain()
        async for event in job.stream_events():
            writer.write((json.dumps(event, sort_keys=True) + "\n").encode("utf-8"))
            await writer.drain()


class ServeErrorMethod(ServeError):
    """Known path, wrong method (HTTP 405)."""

    status = 405
    code = "method-not-allowed"

    def __init__(self, method: str, path: str):
        super().__init__(f"{method} not allowed on {path}")


def _wants_keepalive(version: str, headers: Mapping[str, str]) -> bool:
    """HTTP/1.1 defaults to keep-alive; ``Connection: close`` (or an
    HTTP/1.0 client that never opted in) closes."""
    connection = headers.get("connection", "").lower()
    if "close" in connection:
        return False
    if version == "HTTP/1.0":
        return "keep-alive" in connection
    return True


def _head(status: int, headers: Dict[str, str]) -> bytes:
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}"]
    lines.extend(f"{k}: {v}" for k, v in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def run_server(
    *,
    host: str = "127.0.0.1",
    port: int = 8732,
    backend: str = "pool",
    workers: Optional[int] = None,
    cache_dir: Optional[str] = ".repro-cache",
    shards: int = 0,
    max_jobs: int = 1024,
) -> None:
    """Blocking entrypoint behind ``repro serve``: run until Ctrl-C."""
    cache = RunCache(cache_dir) if cache_dir else None

    async def _main() -> None:
        server = JobServer(
            host=host,
            port=port,
            backend=make_backend(backend, workers, shards=shards),
            cache=cache,
            max_jobs=max_jobs,
        )
        await server.start()
        sharding = f", shards={shards}" if shards and shards >= 2 else ""
        print(
            f"repro serve listening on http://{server.host}:{server.port} "
            f"(backend={backend}{sharding}, workers={server.backend.workers}, "
            f"cache={'off' if cache is None else cache.root}, "
            f"workloads: {', '.join(workload_names())})",
            flush=True,
        )
        try:
            await server.wait_closed()
        finally:
            await server.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("repro serve: shut down", flush=True)
