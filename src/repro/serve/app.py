"""The asyncio HTTP/JSON front-end: simulation as a service.

A deliberately small HTTP/1.1 server over stdlib ``asyncio`` streams --
no framework, no new dependencies.  One connection carries one request
(``Connection: close``), which keeps the parser ~40 lines and is plenty
for a job API whose unit of work is a whole simulation.

Routes::

    POST /jobs              submit a job spec; 201 + dedupe summary
    GET  /jobs              job summaries, newest first
    GET  /jobs/{id}         full status + results
    GET  /jobs/{id}/events  NDJSON progress stream until terminal
    GET  /healthz           liveness
    GET  /stats             queue depth, dedupe counters, backend load

Errors are structured JSON (``{"error": {"code", "message", ...}}``)
with the status taken from the raised :class:`ServeError`; an
unexpected exception is a 500 that never takes the server down.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.serve.backends import Backend, InProcessBackend, make_backend
from repro.serve.errors import JobNotFoundError, ProtocolError, ServeError
from repro.serve.jobs import JobManager
from repro.sweep import RunCache, WorkloadEntry, workload_names

#: Largest request body accepted, to bound memory per connection.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Per-request header/body read timeout.
READ_TIMEOUT_S = 30.0

_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large", 500: "Internal Server Error",
}


class JobServer:
    """The job server: routes + job manager + backend, one event loop."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        backend: Optional[Backend] = None,
        cache: Optional[RunCache] = None,
        registry: Optional[Mapping[str, WorkloadEntry]] = None,
    ):
        self.host = host
        self.port = port  # 0 = ephemeral; updated to the bound port on start()
        self.backend = backend if backend is not None else InProcessBackend()
        self.manager = JobManager(self.backend, cache=cache, registry=registry)
        self.started_at: Optional[float] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._closed = asyncio.Event()
        self.requests_served = 0

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.time()

    async def serve_forever(self) -> None:
        """Run until :meth:`close` (used by the CLI entrypoint)."""
        if self._server is None:
            await self.start()
        await self._closed.wait()

    async def wait_closed(self) -> None:
        await self._closed.wait()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.backend.close()
        self._closed.set()

    # -- HTTP plumbing ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await asyncio.wait_for(
                    self._read_request(reader), timeout=READ_TIMEOUT_S
                )
            except (asyncio.TimeoutError, asyncio.IncompleteReadError, ValueError):
                return  # unparsable or abandoned connection: drop it
            self.requests_served += 1
            try:
                await self._dispatch(method, path, body, writer)
            except ServeError as exc:
                await self._send_json(writer, exc.status, exc.to_payload())
            except (ConnectionResetError, BrokenPipeError):
                pass  # client went away mid-response
            except Exception as exc:  # never let one request kill the server
                await self._send_json(
                    writer,
                    500,
                    {"error": {"code": "internal",
                               "message": f"{type(exc).__name__}: {exc}"}},
                )
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader) -> Tuple[str, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise ValueError("empty request")
        parts = request_line.split()
        if len(parts) != 3:
            raise ValueError(f"bad request line: {request_line!r}")
        method, target, _version = parts
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise ValueError("body too large")
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method.upper(), path, body

    async def _send_json(
        self, writer, status: int, payload: Any, extra_headers: Dict[str, str] = None
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(body)),
            "Connection": "close",
        }
        if extra_headers:
            headers.update(extra_headers)
        writer.write(_head(status, headers) + body)
        await writer.drain()

    # -- routing ------------------------------------------------------

    async def _dispatch(self, method: str, path: str, body: bytes, writer) -> None:
        segments = [s for s in path.split("/") if s]
        if path == "/healthz" and method == "GET":
            await self._send_json(
                writer, 200,
                {"status": "ok", "backend": self.backend.name,
                 "workloads": workload_names()},
            )
        elif path == "/stats" and method == "GET":
            stats = self.manager.stats()
            stats["uptime_s"] = round(time.time() - (self.started_at or time.time()), 3)
            stats["requests_served"] = self.requests_served
            await self._send_json(writer, 200, stats)
        elif path == "/jobs" and method == "POST":
            await self._post_job(body, writer)
        elif path == "/jobs" and method == "GET":
            jobs = sorted(self.manager.jobs.values(), key=lambda j: j.id, reverse=True)
            await self._send_json(writer, 200, {"jobs": [j.summary() for j in jobs]})
        elif len(segments) == 2 and segments[0] == "jobs" and method == "GET":
            job = self.manager.get(segments[1])
            await self._send_json(writer, 200, job.to_payload())
        elif (
            len(segments) == 3
            and segments[0] == "jobs"
            and segments[2] == "events"
            and method == "GET"
        ):
            await self._stream_events(segments[1], writer)
        elif path in ("/healthz", "/stats", "/jobs") or (
            segments and segments[0] == "jobs"
        ):
            raise ServeErrorMethod(method, path)
        else:
            raise JobNotFoundError(f"no such route: {method} {path}")

    async def _post_job(self, body: bytes, writer) -> None:
        try:
            payload = json.loads(body.decode("utf-8")) if body else None
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from None
        if payload is None:
            raise ProtocolError("POST /jobs needs a JSON job spec body")
        job = self.manager.submit_payload(payload)
        response = job.summary()
        response["location"] = f"/jobs/{job.id}"
        await self._send_json(
            writer, 201, response, extra_headers={"Location": f"/jobs/{job.id}"}
        )

    async def _stream_events(self, job_id: str, writer) -> None:
        job = self.manager.get(job_id)  # 404 before headers, not mid-stream
        writer.write(
            _head(
                200,
                {"Content-Type": "application/x-ndjson", "Connection": "close"},
            )
        )
        await writer.drain()
        async for event in job.stream_events():
            writer.write((json.dumps(event, sort_keys=True) + "\n").encode("utf-8"))
            await writer.drain()


class ServeErrorMethod(ServeError):
    """Known path, wrong method (HTTP 405)."""

    status = 405
    code = "method-not-allowed"

    def __init__(self, method: str, path: str):
        super().__init__(f"{method} not allowed on {path}")


def _head(status: int, headers: Dict[str, str]) -> bytes:
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}"]
    lines.extend(f"{k}: {v}" for k, v in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def run_server(
    *,
    host: str = "127.0.0.1",
    port: int = 8732,
    backend: str = "pool",
    workers: Optional[int] = None,
    cache_dir: Optional[str] = ".repro-cache",
) -> None:
    """Blocking entrypoint behind ``repro serve``: run until Ctrl-C."""
    cache = RunCache(cache_dir) if cache_dir else None

    async def _main() -> None:
        server = JobServer(
            host=host,
            port=port,
            backend=make_backend(backend, workers),
            cache=cache,
        )
        await server.start()
        print(
            f"repro serve listening on http://{server.host}:{server.port} "
            f"(backend={backend}, workers={server.backend.workers}, "
            f"cache={'off' if cache is None else cache.root}, "
            f"workloads: {', '.join(workload_names())})",
            flush=True,
        )
        try:
            await server.wait_closed()
        finally:
            await server.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("repro serve: shut down", flush=True)
