"""Error hierarchy for the job server.

Every serve error maps to an HTTP status and a short machine-readable
code, so the app layer can turn any raised :class:`ServeError` into a
structured JSON error response without per-route handling.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.util.errors import ReproError


class ServeError(ReproError):
    """Base class for job-server failures (HTTP 500 unless narrowed)."""

    status = 500
    code = "internal"

    def __init__(self, message: str = "", *, details: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.details = dict(details) if details else {}

    def to_payload(self) -> Dict[str, Any]:
        """The JSON body the server sends for this error."""
        error: Dict[str, Any] = {"code": self.code, "message": str(self)}
        if self.details:
            error["details"] = self.details
        return {"error": error}


class ProtocolError(ServeError):
    """The request body or parameters are malformed (HTTP 400)."""

    status = 400
    code = "bad-request"


class UnknownWorkloadError(ProtocolError):
    """The spec names a workload the registry does not know (HTTP 400)."""

    code = "unknown-workload"


class JobNotFoundError(ServeError):
    """No job with the requested id (HTTP 404)."""

    status = 404
    code = "not-found"


class BackendError(ServeError):
    """The execution backend failed independent of the workload (e.g. a
    pool worker died); the point is failed but the server stays up."""

    status = 500
    code = "backend"


class ServeClientError(ServeError):
    """Raised by :class:`repro.serve.client.ServeClient` on an error
    response; carries the HTTP status and decoded payload."""

    def __init__(self, message: str, *, status: int, payload: Any = None):
        super().__init__(message)
        self.status = status
        self.payload = payload


class ServeTransportError(ServeError):
    """The TCP conversation with the server failed: connection refused,
    the server closed the socket before (or in the middle of) a
    response, or an event stream broke mid-flight.  Carries the request
    context -- method, path, the job id when one is identifiable, and
    how much of the response had been read -- so a high-rate client can
    tell a dead server from a half-answered question."""

    code = "transport"

    def __init__(
        self,
        message: str,
        *,
        method: Optional[str] = None,
        path: Optional[str] = None,
        job_id: Optional[str] = None,
        partial_bytes: Optional[int] = None,
        events_received: Optional[int] = None,
    ):
        details = {
            key: value
            for key, value in {
                "method": method,
                "path": path,
                "job_id": job_id,
                "partial_bytes": partial_bytes,
                "events_received": events_received,
            }.items()
            if value is not None
        }
        super().__init__(message, details=details)
        self.method = method
        self.path = path
        self.job_id = job_id
        self.partial_bytes = partial_bytes
        self.events_received = events_received
