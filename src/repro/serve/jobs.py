"""The job table: content-addressed dedupe, coalescing, progress.

Every sweep point a job carries is identified by
:func:`repro.sweep.cache.cache_key` over ``(workload, config,
derived_seed)`` -- the same key the on-disk
:class:`~repro.sweep.cache.RunCache` uses.  Submission classifies each
point exactly once:

``cache_hit``
    The key is already on disk: the stored result is attached
    immediately, no simulation, O(1).
``coalesced``
    An identical point is *in flight* for another job (or earlier in
    this one): the point attaches to the existing future -- one
    simulation feeds every waiter.
``scheduled``
    Genuinely new work: a future is registered in the in-flight map and
    the point is dispatched to the backend; the result lands in the
    cache before waiters are woken, so later duplicates hit disk.

All bookkeeping runs on the event loop (single-threaded); only the
simulation itself leaves it through the backend.  Progress is an
append-only per-job event list; watchers (the ``/events`` stream)
follow it with an :class:`asyncio.Event` edge trigger.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.serve.errors import JobNotFoundError
from repro.serve.protocol import JobSpec, parse_job_spec, registry_resolver
from repro.sweep import (
    RunCache,
    WorkloadEntry,
    batch_cache_keys,
    describe_config,
    sweep_seeds,
)
from repro.util.errors import SweepPointError

#: Distinguishes "not in the cache" from a legitimately cached None.
_MISS = object()

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"

#: Terminal lifecycle: a cancelled job ends here, not at FAILED, so
#: clients can tell "the machine said no" from "the user said stop".
CANCELLED = "cancelled"

TERMINAL = frozenset({DONE, FAILED, CANCELLED})

#: Point origins (how the submission classified the point).
CACHE_HIT, COALESCED, SCHEDULED = "cache_hit", "coalesced", "scheduled"


class Job:
    """One submitted job: n points, their origins, results, events."""

    def __init__(self, job_id: str, spec: JobSpec, keys: List[str]):
        self.id = job_id
        self.spec = spec
        self.keys = keys
        n = spec.points
        self.origins: List[str] = [""] * n
        self.results: List[Any] = [None] * n
        self.point_done: List[bool] = [False] * n
        self.errors: List[Optional[Dict[str, Any]]] = [None] * n
        self.settled = 0
        self.state = QUEUED
        self.cancel_requested = False
        self.created_at = time.time()
        self.finished_at: Optional[float] = None
        self.events: List[Dict[str, Any]] = []
        self._changed = asyncio.Event()

    @property
    def dedupe(self) -> Dict[str, int]:
        return {
            "cache_hits": self.origins.count(CACHE_HIT),
            "coalesced": self.origins.count(COALESCED),
            "scheduled": self.origins.count(SCHEDULED),
        }

    def summary(self) -> Dict[str, Any]:
        """The submit-response / job-list view."""
        return {
            "job_id": self.id,
            "workload": self.spec.workload,
            "state": self.state,
            "points": self.spec.points,
            "settled": self.settled,
            "dedupe": self.dedupe,
        }

    def to_payload(self) -> Dict[str, Any]:
        """The full ``GET /jobs/{id}`` view."""
        payload = self.summary()
        payload["seed"] = self.spec.seed
        payload["point_states"] = [
            {
                "origin": self.origins[i],
                "state": self._point_state(i),
            }
            for i in range(self.spec.points)
        ]
        payload["results"] = list(self.results)
        failures = [e for e in self.errors if e]
        if failures:
            payload["error"] = failures[0]
            payload["failures"] = failures
        if self.finished_at is not None:
            payload["elapsed_s"] = round(self.finished_at - self.created_at, 6)
        return payload

    def _point_state(self, i: int) -> str:
        if not self.point_done[i]:
            return "pending"
        error = self.errors[i]
        if error is None:
            return DONE
        return CANCELLED if error.get("code") == "cancelled" else FAILED

    def _emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)
        self._changed.set()

    async def stream_events(self):
        """Yield events as they land; returns once the job is terminal.

        Mutations happen on the same loop, so checking-then-waiting is
        race-free: nothing can append between our check and ``wait()``.
        """
        cursor = 0
        while True:
            while cursor < len(self.events):
                yield self.events[cursor]
                cursor += 1
            if self.state in TERMINAL:
                return
            self._changed.clear()
            await self._changed.wait()

    async def wait(self) -> None:
        """Block until the job is terminal."""
        async for _ in self.stream_events():
            pass


class JobManager:
    """Owns the job table, the in-flight map, and the counters."""

    def __init__(
        self,
        backend,
        cache: Optional[RunCache] = None,
        registry: Optional[Mapping[str, WorkloadEntry]] = None,
        max_jobs: int = 1024,
    ):
        self.backend = backend
        self.cache = cache
        self.resolve: Callable[[str], WorkloadEntry] = registry_resolver(registry)
        self.jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, asyncio.Future] = {}
        #: Live points (across all jobs) attached to each in-flight
        #: key.  Cancellation decrements; when the last waiter leaves,
        #: the simulation's future is cancelled so its result is not
        #: delivered to anyone (it is still cached if it completes).
        self._waiters: Dict[str, int] = {}
        #: Cap on the job table; terminal jobs beyond it are evicted
        #: oldest-first (``<= 0`` disables the cap).  Running jobs are
        #: never evicted, so a burst of active work can exceed the cap
        #: until it settles.
        self.max_jobs = max_jobs
        self._ids = itertools.count(1)
        self.counters: Dict[str, int] = {
            "jobs_submitted": 0,
            "jobs_done": 0,
            "jobs_failed": 0,
            "jobs_cancelled": 0,
            "jobs_evicted": 0,
            "points_total": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "scheduled": 0,
            "points_done": 0,
            "points_failed": 0,
            "points_cancelled": 0,
            "batch_requests": 0,
            "batch_jobs": 0,
        }
        self.largest_batch = 0
        #: Wall seconds actually spent by this server's executed points
        #: (origin SCHEDULED only -- cache hits and coalesced points
        #: reuse another execution's work), split the way the engine
        #: reports it: machine bring-up vs the event loop.  Workload
        #: dicts carry ``setup_wall_s``/``execute_wall_s`` per point.
        self.point_wall: Dict[str, float] = {
            "setup_wall_s": 0.0,
            "execute_wall_s": 0.0,
        }

    # -- submission ---------------------------------------------------

    def submit_payload(self, payload: Any) -> Job:
        """Validate a decoded request body and submit it."""
        entry, spec = parse_job_spec(payload, resolve=self.resolve)
        return self.submit(entry, spec)

    def submit(self, entry: WorkloadEntry, spec: JobSpec) -> Job:
        """Classify and dispatch every point; returns the live job."""
        seeds = sweep_seeds(spec.seed, spec.points)
        keys = batch_cache_keys(entry.fn, spec.configs, seeds)
        return self._admit(entry, spec, seeds, keys)

    def submit_batch(self, parsed: "List[tuple]") -> List[Job]:
        """Submit many validated ``(entry, spec)`` jobs in one pass.

        The whole batch's cache keys are computed up front
        (:func:`~repro.sweep.cache.batch_cache_keys`, one amortised
        pass per job) and the disk cache is probed **once per distinct
        key** across the batch, before any job is admitted to the
        table.  Classification then runs against the probe map and the
        in-flight map, so a point scheduled by an earlier job in the
        batch coalesces later duplicates exactly as concurrent HTTP
        submissions would -- no await between probe and admission means
        no race.
        """
        keyed = []
        for entry, spec in parsed:
            seeds = sweep_seeds(spec.seed, spec.points)
            keys = batch_cache_keys(entry.fn, spec.configs, seeds)
            keyed.append((entry, spec, seeds, keys))

        probe: Optional[Dict[str, Any]] = None
        if self.cache is not None:
            probe = {}
            for _, _, _, keys in keyed:
                for key in keys:
                    if key not in probe:
                        probe[key] = self.cache.get(key, _MISS)

        jobs = [
            self._admit(entry, spec, seeds, keys, probe=probe)
            for entry, spec, seeds, keys in keyed
        ]
        self.counters["batch_requests"] += 1
        self.counters["batch_jobs"] += len(jobs)
        self.largest_batch = max(self.largest_batch, len(jobs))
        return jobs

    def _admit(
        self,
        entry: WorkloadEntry,
        spec: JobSpec,
        seeds: List[int],
        keys: List[str],
        probe: Optional[Dict[str, Any]] = None,
    ) -> Job:
        """Admit one job whose keys are already computed.

        ``probe`` is a batch-wide ``{key: cached-or-_MISS}`` map; when
        absent the cache is probed per point (the single-submit path).
        """
        job = Job(f"job-{next(self._ids)}", spec, keys)
        self.jobs[job.id] = job
        self.counters["jobs_submitted"] += 1
        self.counters["points_total"] += spec.points
        job.state = RUNNING

        for i, (config, seed, key) in enumerate(zip(spec.configs, seeds, keys)):
            if self.cache is None:
                cached = _MISS
            elif probe is not None:
                cached = probe.get(key, _MISS)
            else:
                cached = self.cache.get(key, _MISS)
            if cached is not _MISS and key not in self._inflight:
                job.origins[i] = CACHE_HIT
                self.counters["cache_hits"] += 1
                self._settle_point(job, i, result=cached)
                continue
            fut = self._inflight.get(key)
            if fut is None:
                fut = asyncio.get_running_loop().create_future()
                self._inflight[key] = fut
                job.origins[i] = SCHEDULED
                self.counters["scheduled"] += 1
                asyncio.ensure_future(
                    self._run_point(entry, config, seed, i, key, fut)
                )
            else:
                job.origins[i] = COALESCED
                self.counters["coalesced"] += 1
            self._waiters[key] = self._waiters.get(key, 0) + 1
            fut.add_done_callback(self._settle_callback(job, i, config))
        return job

    def get(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise JobNotFoundError(f"no such job: {job_id}") from None

    # -- cancellation and eviction ------------------------------------

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel a job's unsettled points; returns a cancel summary.

        Every pending point settles *now* with a structured
        ``cancelled`` error (waking ``/events`` watchers), and the
        job's claim on each in-flight simulation is released.  A
        simulation whose **only** remaining waiter was this job has its
        future cancelled -- nobody is listening, so nobody is woken --
        but points from *other* jobs coalesced onto the same key keep
        the future alive and receive their results untouched.
        Cancelling a terminal (or already-cancelled) job is a no-op
        that reports the current state.
        """
        job = self.get(job_id)
        if job.state in TERMINAL:
            return {
                "job_id": job.id,
                "state": job.state,
                "cancelled_points": 0,
            }
        job.cancel_requested = True
        cancelled = 0
        for i in range(job.spec.points):
            if job.point_done[i]:
                continue
            key = job.keys[i]
            self._settle_point(
                job,
                i,
                error={
                    "type": "Cancelled",
                    "code": "cancelled",
                    "message": f"{job.id} cancelled by DELETE",
                    "index": i,
                },
            )
            self._release_waiter(key)
            cancelled += 1
        return {
            "job_id": job.id,
            "state": job.state,
            "cancelled_points": cancelled,
        }

    def _release_waiter(self, key: str) -> None:
        """Drop one waiter from ``key``; cancel orphaned simulations."""
        count = self._waiters.get(key)
        if count is None:
            return
        if count > 1:
            self._waiters[key] = count - 1
            return
        del self._waiters[key]
        fut = self._inflight.pop(key, None)
        if fut is not None and not fut.done():
            # The executor may still burn CPU on the point (threads and
            # processes cannot be preempted mid-simulation), but its
            # result will be delivered to no one.  It still lands in
            # the cache, so the work is not wasted if anyone re-asks.
            fut.cancel()

    def _evict(self) -> None:
        """Hold the job table at ``max_jobs``, oldest-terminal-first."""
        if self.max_jobs <= 0:
            return
        while len(self.jobs) > self.max_jobs:
            victim = next(
                (j for j in self.jobs.values() if j.state in TERMINAL), None
            )
            if victim is None:
                return  # everything is active; the cap waits
            del self.jobs[victim.id]
            self.counters["jobs_evicted"] += 1

    # -- execution ----------------------------------------------------

    async def _run_point(self, entry, config, seed, index, key, fut) -> None:
        """Drive one scheduled point through the backend; resolve its
        in-flight future, caching successes first so post-completion
        duplicates are cache hits."""
        try:
            result = await self.backend.run_point(
                entry.fn, config, seed, index, key=key
            )
        except Exception as exc:
            self._inflight.pop(key, None)
            self._waiters.pop(key, None)
            if not fut.cancelled():
                fut.set_exception(exc)
        else:
            if self.cache is not None:
                self.cache.put(key, result)
            self._inflight.pop(key, None)
            self._waiters.pop(key, None)
            if not fut.cancelled():
                fut.set_result(result)

    def _settle_callback(self, job: Job, index: int, config: Any):
        def on_done(fut: asyncio.Future) -> None:
            if fut.cancelled():
                self._settle_point(
                    job, index,
                    error={"type": "Cancelled", "code": "cancelled",
                           "message": "point cancelled",
                           "index": index, "config_token": describe_config(config)},
                )
                return
            exc = fut.exception()
            if exc is None:
                self._settle_point(job, index, result=fut.result())
            else:
                error = {
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "index": index,
                    "config_token": describe_config(config),
                }
                if isinstance(exc, SweepPointError) and exc.config_token:
                    error["config_token"] = exc.config_token
                details = getattr(exc, "details", None)
                if details:  # e.g. BackendError names the dead shard
                    error["details"] = dict(details)
                self._settle_point(job, index, error=error)

        return on_done

    def _settle_point(
        self,
        job: Job,
        index: int,
        result: Any = None,
        error: Optional[Dict[str, Any]] = None,
    ) -> None:
        if job.point_done[index]:  # defensive: never settle twice
            return
        job.point_done[index] = True
        job.results[index] = result
        job.errors[index] = error
        job.settled += 1
        cancelled = error is not None and error.get("code") == "cancelled"
        if error is None:
            self.counters["points_done"] += 1
            if job.origins[index] == SCHEDULED and isinstance(result, dict):
                self.point_wall["setup_wall_s"] += float(
                    result.get("setup_wall_s", 0.0)
                )
                self.point_wall["execute_wall_s"] += float(
                    result.get("execute_wall_s", 0.0)
                )
        elif cancelled:
            self.counters["points_cancelled"] += 1
        else:
            self.counters["points_failed"] += 1
        job._emit(
            {
                "event": "point",
                "job_id": job.id,
                "index": index,
                "origin": job.origins[index],
                "state": job._point_state(index),
                "settled": job.settled,
                "points": job.spec.points,
                **({"error": error} if error else {}),
            }
        )
        if job.settled == job.spec.points:
            if job.cancel_requested:
                job.state = CANCELLED
            else:
                job.state = FAILED if any(job.errors) else DONE
            job.finished_at = time.time()
            self.counters[
                {DONE: "jobs_done", FAILED: "jobs_failed", CANCELLED: "jobs_cancelled"}[
                    job.state
                ]
            ] += 1
            job._emit(
                {
                    "event": "job",
                    "job_id": job.id,
                    "state": job.state,
                    "dedupe": job.dedupe,
                }
            )
            self._evict()

    # -- introspection ------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Distinct points currently in flight (scheduled, unsettled)."""
        return len(self._inflight)

    def stats(self) -> Dict[str, Any]:
        active = sum(1 for j in self.jobs.values() if j.state in (QUEUED, RUNNING))
        payload: Dict[str, Any] = dict(self.counters)
        payload["jobs_active"] = active
        payload["jobs_tracked"] = len(self.jobs)
        payload["max_jobs"] = self.max_jobs
        payload["queue_depth"] = self.queue_depth
        payload["batch"] = {
            "requests": self.counters["batch_requests"],
            "jobs": self.counters["batch_jobs"],
            "largest": self.largest_batch,
        }
        payload["point_wall"] = {
            k: round(v, 6) for k, v in self.point_wall.items()
        }
        payload["cache"] = (
            {"enabled": True, "dir": self.cache.root, **self.cache.stats()}
            if self.cache is not None
            else {"enabled": False}
        )
        payload["backend"] = self.backend.utilization()
        return payload
