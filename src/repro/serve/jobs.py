"""The job table: content-addressed dedupe, coalescing, progress.

Every sweep point a job carries is identified by
:func:`repro.sweep.cache.cache_key` over ``(workload, config,
derived_seed)`` -- the same key the on-disk
:class:`~repro.sweep.cache.RunCache` uses.  Submission classifies each
point exactly once:

``cache_hit``
    The key is already on disk: the stored result is attached
    immediately, no simulation, O(1).
``coalesced``
    An identical point is *in flight* for another job (or earlier in
    this one): the point attaches to the existing future -- one
    simulation feeds every waiter.
``scheduled``
    Genuinely new work: a future is registered in the in-flight map and
    the point is dispatched to the backend; the result lands in the
    cache before waiters are woken, so later duplicates hit disk.

All bookkeeping runs on the event loop (single-threaded); only the
simulation itself leaves it through the backend.  Progress is an
append-only per-job event list; watchers (the ``/events`` stream)
follow it with an :class:`asyncio.Event` edge trigger.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.serve.errors import JobNotFoundError
from repro.serve.protocol import JobSpec, parse_job_spec, registry_resolver
from repro.sweep import RunCache, WorkloadEntry, cache_key, describe_config, sweep_seeds
from repro.util.errors import SweepPointError

#: Distinguishes "not in the cache" from a legitimately cached None.
_MISS = object()

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"

#: Point origins (how the submission classified the point).
CACHE_HIT, COALESCED, SCHEDULED = "cache_hit", "coalesced", "scheduled"


class Job:
    """One submitted job: n points, their origins, results, events."""

    def __init__(self, job_id: str, spec: JobSpec, keys: List[str]):
        self.id = job_id
        self.spec = spec
        self.keys = keys
        n = spec.points
        self.origins: List[str] = [""] * n
        self.results: List[Any] = [None] * n
        self.point_done: List[bool] = [False] * n
        self.errors: List[Optional[Dict[str, Any]]] = [None] * n
        self.settled = 0
        self.state = QUEUED
        self.created_at = time.time()
        self.finished_at: Optional[float] = None
        self.events: List[Dict[str, Any]] = []
        self._changed = asyncio.Event()

    @property
    def dedupe(self) -> Dict[str, int]:
        return {
            "cache_hits": self.origins.count(CACHE_HIT),
            "coalesced": self.origins.count(COALESCED),
            "scheduled": self.origins.count(SCHEDULED),
        }

    def summary(self) -> Dict[str, Any]:
        """The submit-response / job-list view."""
        return {
            "job_id": self.id,
            "workload": self.spec.workload,
            "state": self.state,
            "points": self.spec.points,
            "settled": self.settled,
            "dedupe": self.dedupe,
        }

    def to_payload(self) -> Dict[str, Any]:
        """The full ``GET /jobs/{id}`` view."""
        payload = self.summary()
        payload["seed"] = self.spec.seed
        payload["point_states"] = [
            {
                "origin": self.origins[i],
                "state": (
                    (FAILED if self.errors[i] else DONE)
                    if self.point_done[i]
                    else "pending"
                ),
            }
            for i in range(self.spec.points)
        ]
        payload["results"] = list(self.results)
        failures = [e for e in self.errors if e]
        if failures:
            payload["error"] = failures[0]
            payload["failures"] = failures
        if self.finished_at is not None:
            payload["elapsed_s"] = round(self.finished_at - self.created_at, 6)
        return payload

    def _emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)
        self._changed.set()

    async def stream_events(self):
        """Yield events as they land; returns once the job is terminal.

        Mutations happen on the same loop, so checking-then-waiting is
        race-free: nothing can append between our check and ``wait()``.
        """
        cursor = 0
        while True:
            while cursor < len(self.events):
                yield self.events[cursor]
                cursor += 1
            if self.state in (DONE, FAILED):
                return
            self._changed.clear()
            await self._changed.wait()

    async def wait(self) -> None:
        """Block until the job is terminal."""
        async for _ in self.stream_events():
            pass


class JobManager:
    """Owns the job table, the in-flight map, and the counters."""

    def __init__(
        self,
        backend,
        cache: Optional[RunCache] = None,
        registry: Optional[Mapping[str, WorkloadEntry]] = None,
    ):
        self.backend = backend
        self.cache = cache
        self.resolve: Callable[[str], WorkloadEntry] = registry_resolver(registry)
        self.jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self.counters: Dict[str, int] = {
            "jobs_submitted": 0,
            "jobs_done": 0,
            "jobs_failed": 0,
            "points_total": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "scheduled": 0,
            "points_done": 0,
            "points_failed": 0,
        }
        #: Wall seconds actually spent by this server's executed points
        #: (origin SCHEDULED only -- cache hits and coalesced points
        #: reuse another execution's work), split the way the engine
        #: reports it: machine bring-up vs the event loop.  Workload
        #: dicts carry ``setup_wall_s``/``execute_wall_s`` per point.
        self.point_wall: Dict[str, float] = {
            "setup_wall_s": 0.0,
            "execute_wall_s": 0.0,
        }

    # -- submission ---------------------------------------------------

    def submit_payload(self, payload: Any) -> Job:
        """Validate a decoded request body and submit it."""
        entry, spec = parse_job_spec(payload, resolve=self.resolve)
        return self.submit(entry, spec)

    def submit(self, entry: WorkloadEntry, spec: JobSpec) -> Job:
        """Classify and dispatch every point; returns the live job."""
        n = spec.points
        seeds = sweep_seeds(spec.seed, n)
        keys = [
            cache_key(entry.fn, config, s) for config, s in zip(spec.configs, seeds)
        ]
        job = Job(f"job-{next(self._ids)}", spec, keys)
        self.jobs[job.id] = job
        self.counters["jobs_submitted"] += 1
        self.counters["points_total"] += n
        job.state = RUNNING

        for i, (config, seed, key) in enumerate(zip(spec.configs, seeds, keys)):
            cached = self.cache.get(key, _MISS) if self.cache is not None else _MISS
            if cached is not _MISS:
                job.origins[i] = CACHE_HIT
                self.counters["cache_hits"] += 1
                self._settle_point(job, i, result=cached)
                continue
            fut = self._inflight.get(key)
            if fut is None:
                fut = asyncio.get_running_loop().create_future()
                self._inflight[key] = fut
                job.origins[i] = SCHEDULED
                self.counters["scheduled"] += 1
                asyncio.ensure_future(
                    self._run_point(entry, config, seed, i, key, fut)
                )
            else:
                job.origins[i] = COALESCED
                self.counters["coalesced"] += 1
            fut.add_done_callback(self._settle_callback(job, i, config))
        return job

    def get(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise JobNotFoundError(f"no such job: {job_id}") from None

    # -- execution ----------------------------------------------------

    async def _run_point(self, entry, config, seed, index, key, fut) -> None:
        """Drive one scheduled point through the backend; resolve its
        in-flight future, caching successes first so post-completion
        duplicates are cache hits."""
        try:
            result = await self.backend.run_point(entry.fn, config, seed, index)
        except Exception as exc:
            self._inflight.pop(key, None)
            if not fut.cancelled():
                fut.set_exception(exc)
        else:
            if self.cache is not None:
                self.cache.put(key, result)
            self._inflight.pop(key, None)
            if not fut.cancelled():
                fut.set_result(result)

    def _settle_callback(self, job: Job, index: int, config: Any):
        def on_done(fut: asyncio.Future) -> None:
            if fut.cancelled():
                self._settle_point(
                    job, index,
                    error={"type": "CancelledError", "message": "point cancelled",
                           "index": index, "config_token": describe_config(config)},
                )
                return
            exc = fut.exception()
            if exc is None:
                self._settle_point(job, index, result=fut.result())
            else:
                error = {
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "index": index,
                    "config_token": describe_config(config),
                }
                if isinstance(exc, SweepPointError) and exc.config_token:
                    error["config_token"] = exc.config_token
                self._settle_point(job, index, error=error)

        return on_done

    def _settle_point(
        self,
        job: Job,
        index: int,
        result: Any = None,
        error: Optional[Dict[str, Any]] = None,
    ) -> None:
        if job.point_done[index]:  # defensive: never settle twice
            return
        job.point_done[index] = True
        job.results[index] = result
        job.errors[index] = error
        job.settled += 1
        if error is None:
            self.counters["points_done"] += 1
            if job.origins[index] == SCHEDULED and isinstance(result, dict):
                self.point_wall["setup_wall_s"] += float(
                    result.get("setup_wall_s", 0.0)
                )
                self.point_wall["execute_wall_s"] += float(
                    result.get("execute_wall_s", 0.0)
                )
        else:
            self.counters["points_failed"] += 1
        job._emit(
            {
                "event": "point",
                "job_id": job.id,
                "index": index,
                "origin": job.origins[index],
                "state": FAILED if error else DONE,
                "settled": job.settled,
                "points": job.spec.points,
                **({"error": error} if error else {}),
            }
        )
        if job.settled == job.spec.points:
            job.state = FAILED if any(job.errors) else DONE
            job.finished_at = time.time()
            self.counters["jobs_failed" if job.state == FAILED else "jobs_done"] += 1
            job._emit(
                {
                    "event": "job",
                    "job_id": job.id,
                    "state": job.state,
                    "dedupe": job.dedupe,
                }
            )

    # -- introspection ------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Distinct points currently in flight (scheduled, unsettled)."""
        return len(self._inflight)

    def stats(self) -> Dict[str, Any]:
        active = sum(1 for j in self.jobs.values() if j.state in (QUEUED, RUNNING))
        payload: Dict[str, Any] = dict(self.counters)
        payload["jobs_active"] = active
        payload["queue_depth"] = self.queue_depth
        payload["point_wall"] = {
            k: round(v, 6) for k, v in self.point_wall.items()
        }
        payload["cache"] = (
            {"enabled": True, "dir": self.cache.root, **self.cache.stats()}
            if self.cache is not None
            else {"enabled": False}
        )
        payload["backend"] = self.backend.utilization()
        return payload
