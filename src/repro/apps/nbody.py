"""Direct-sum gravitational N-body: the space-sciences kernel.

NASA's space-science grand challenges (galactic dynamics, planetary
accretion) stressed machines very differently from grid codes: all-pairs
force evaluation is compute-dominated, O(N^2) flops against O(N) data,
so it scales almost perfectly -- the showcase workload for MPPs.

The distributed version uses the classic *ring pipeline*: each rank owns
a block of bodies; position blocks circulate around a ring for p-1
steps, and every rank accumulates partial forces against each visiting
block.  Integration is leapfrog (kick-drift-kick), which conserves
energy to second order; momentum conservation is exact up to round-off
because forces are antisymmetric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.linalg.decomp import block_range
from repro.simmpi.engine import Engine, SimResult
from repro.util.errors import ConfigurationError
from repro.util.rng import resolve_rng

#: Flops per pairwise interaction (distances, softening, accumulate).
FLOPS_PER_PAIR = 20.0


@dataclass
class Bodies:
    """Particle set: positions/velocities (n, 3), masses (n,)."""

    pos: np.ndarray
    vel: np.ndarray
    mass: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.mass)
        if self.pos.shape != (n, 3) or self.vel.shape != (n, 3):
            raise ConfigurationError(
                f"inconsistent shapes: pos {self.pos.shape}, vel {self.vel.shape}, "
                f"{n} masses"
            )

    @property
    def n(self) -> int:
        return len(self.mass)

    def copy(self) -> "Bodies":
        return Bodies(self.pos.copy(), self.vel.copy(), self.mass.copy())


def random_cluster(n: int, seed: int = 0, *, radius: float = 1.0) -> Bodies:
    """Plummer-ish random cluster with small virial velocities."""
    if n < 1:
        raise ConfigurationError(f"need at least one body, got {n}")
    rng = resolve_rng(seed)
    pos = rng.normal(scale=radius, size=(n, 3))
    vel = rng.normal(scale=0.1, size=(n, 3))
    mass = rng.uniform(0.5, 1.5, size=n) / n
    # Remove net momentum so the centre of mass stays put.
    vel -= (mass[:, None] * vel).sum(axis=0) / mass.sum()
    return Bodies(pos=pos, vel=vel, mass=mass)


def accelerations_on(
    targets_pos: np.ndarray,
    source_pos: np.ndarray,
    source_mass: np.ndarray,
    softening: float,
) -> np.ndarray:
    """Acceleration on each target from all sources (no self-exclusion
    term needed: softening keeps the self-interaction finite and the
    r=0 numerator zeroes it exactly)."""
    delta = source_pos[None, :, :] - targets_pos[:, None, :]
    dist2 = (delta**2).sum(axis=2) + softening**2
    inv3 = dist2 ** (-1.5)
    return (delta * (source_mass[None, :] * inv3)[:, :, None]).sum(axis=1)


def potential_energy(bodies: Bodies, softening: float) -> float:
    """Total softened potential energy (pairs counted once)."""
    delta = bodies.pos[None, :, :] - bodies.pos[:, None, :]
    dist = np.sqrt((delta**2).sum(axis=2) + softening**2)
    inv = bodies.mass[:, None] * bodies.mass[None, :] / dist
    return -0.5 * float(inv.sum() - np.trace(inv))


def kinetic_energy(bodies: Bodies) -> float:
    return 0.5 * float((bodies.mass[:, None] * bodies.vel**2).sum())


def total_momentum(bodies: Bodies) -> np.ndarray:
    return (bodies.mass[:, None] * bodies.vel).sum(axis=0)


def serial_step(bodies: Bodies, dt: float, softening: float) -> Bodies:
    """One leapfrog (kick-drift-kick) step, block-ordered accumulation.

    Forces are accumulated source-block by source-block in the same
    order as the p-rank ring pipeline with p=1 (i.e. all at once), so
    the distributed run agrees to round-off.
    """
    out = bodies.copy()
    acc = accelerations_on(out.pos, out.pos, out.mass, softening)
    out.vel += 0.5 * dt * acc
    out.pos += dt * out.vel
    acc = accelerations_on(out.pos, out.pos, out.mass, softening)
    out.vel += 0.5 * dt * acc
    return out


def serial_run(bodies: Bodies, dt: float, steps: int, softening: float = 0.05) -> Bodies:
    out = bodies.copy()
    for _ in range(steps):
        out = serial_step(out, dt, softening)
    return out


@dataclass
class NBodyRun:
    """Distributed run outcome."""

    bodies: Bodies
    sim: SimResult

    @property
    def virtual_time(self) -> float:
        return self.sim.time


def _ring_accelerations(comm, pos_local, mass_local, softening) -> Generator:
    """Accumulate accelerations on local bodies from every block via the
    ring pipeline; returns the (n_local, 3) acceleration array."""
    p = comm.size
    acc = accelerations_on(pos_local, pos_local, mass_local, softening)
    with comm.phase("forces"):
        yield from comm.compute(flops=FLOPS_PER_PAIR * len(pos_local) * len(pos_local))
    if p == 1:
        return acc

    right = (comm.rank + 1) % p
    left = (comm.rank - 1) % p
    visiting = (comm.rank, pos_local, mass_local)
    for step in range(p - 1):
        with comm.phase("ring-shift"):
            # Pre-post the receive: every rank blocking-sending around
            # the ring deadlocks above the eager threshold (W004/W009).
            handle = yield from comm.irecv(source=left, tag=step)
            yield from comm.send(visiting, right, tag=step)
            msg = yield from comm.wait(handle)
        visiting = msg.payload
        _, vpos, vmass = visiting
        acc += accelerations_on(pos_local, vpos, vmass, softening)
        with comm.phase("forces"):
            yield from comm.compute(flops=FLOPS_PER_PAIR * len(pos_local) * len(vpos))
    return acc


def nbody_program(
    comm, bodies0: Bodies, dt: float, steps: int, softening: float
) -> Generator:
    """Rank program: ring-pipeline leapfrog.  Returns (range, block)."""
    p = comm.size
    n = bodies0.n
    lo, hi = block_range(n, p, comm.rank)
    pos = np.array(bodies0.pos[lo:hi], copy=True)
    vel = np.array(bodies0.vel[lo:hi], copy=True)
    mass = np.array(bodies0.mass[lo:hi], copy=True)

    for _ in range(steps):
        acc = yield from _ring_accelerations(comm, pos, mass, softening)
        vel += 0.5 * dt * acc
        pos += dt * vel
        acc = yield from _ring_accelerations(comm, pos, mass, softening)
        vel += 0.5 * dt * acc
        with comm.phase("integrate"):
            yield from comm.compute(flops=12.0 * len(pos))

    return ((lo, hi), Bodies(pos, vel, mass))


def distributed_run(
    machine,
    n_ranks: int,
    bodies0: Bodies,
    *,
    dt: float = 0.01,
    steps: int = 1,
    softening: float = 0.05,
    seed: int = 0,
    trace: bool = False,
) -> NBodyRun:
    """Run the ring-pipeline integrator; reassemble the particle set."""
    if dt <= 0:
        raise ConfigurationError(f"dt must be positive, got {dt}")
    if softening <= 0:
        raise ConfigurationError(f"softening must be positive, got {softening}")
    if n_ranks > bodies0.n:
        raise ConfigurationError(
            f"{n_ranks} ranks for {bodies0.n} bodies leaves idle ranks"
        )
    engine = Engine(machine, n_ranks, seed=seed, trace=trace)
    sim = engine.run(nbody_program, bodies0, dt, steps, softening)
    out = bodies0.copy()
    for (lo, hi), block in sim.returns:
        out.pos[lo:hi] = block.pos
        out.vel[lo:hi] = block.vel
        out.mass[lo:hi] = block.mass
    return NBodyRun(bodies=out, sim=sim)
