"""Poisson solver: the implicit-physics grand-challenge proxy.

DOE's "energy grand challenge and computation research" line is, at
kernel level, elliptic solves: reservoir models, electrostatics, and
the pressure step of incompressible flow all reduce to

    laplacian(u) = f     on the unit square, u = 0 on the boundary.

Two classic relaxation schemes are implemented, serial and distributed:

* **Jacobi** -- embarrassingly parallel, one halo exchange per sweep;
* **red-black Gauss-Seidel** -- converges about twice as fast, but
  needs *two* halo exchanges per sweep (one per colour), the classic
  convergence-vs-communication trade this module's ablation measures.

Convergence is declared on the relative residual
``||f - A u|| / ||f||``, checked every ``check_every`` sweeps with an
allreduce (another latency cost the simulator makes visible).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from repro.linalg.decomp import block_range
from repro.simmpi.engine import Engine, SimResult
from repro.util.errors import ConfigurationError, ConvergenceError

#: Flops per interior cell per Jacobi update.
FLOPS_PER_CELL = 6.0


@dataclass(frozen=True)
class PoissonConfig:
    """Problem description: interior grid of ``ny x nx`` unknowns with
    spacing ``h`` (Dirichlet zero boundary all around)."""

    nx: int
    ny: int
    h: float = 1.0

    def __post_init__(self) -> None:
        if self.nx < 3 or self.ny < 3:
            raise ConfigurationError(
                f"grid must be at least 3x3, got {self.ny}x{self.nx}"
            )
        if self.h <= 0:
            raise ConfigurationError(f"spacing must be positive, got {self.h}")


def point_source(config: PoissonConfig, *, strength: float = 1.0) -> np.ndarray:
    """Forcing with a delta at the domain centre."""
    f = np.zeros((config.ny, config.nx))
    f[config.ny // 2, config.nx // 2] = strength / config.h**2
    return f


def smooth_source(config: PoissonConfig) -> np.ndarray:
    """Smooth product-of-sines forcing (has a closed-form solution)."""
    x = (np.arange(config.nx) + 1) / (config.nx + 1)
    y = (np.arange(config.ny) + 1) / (config.ny + 1)
    xx, yy = np.meshgrid(x, y)
    return np.sin(np.pi * xx) * np.sin(np.pi * yy)


def _pad(u: np.ndarray, up, down) -> np.ndarray:
    """Extend a row strip with ghost rows above/below and zero columns
    left/right (Dirichlet boundary in x)."""
    core = np.vstack([up, u, down])
    cols = np.zeros((core.shape[0], 1))
    return np.hstack([cols, core, cols])


def _jacobi_sweep(u, f, h, up, down) -> np.ndarray:
    """One Jacobi update of a row strip given ghost rows."""
    ext = _pad(u, up, down)
    return 0.25 * (
        ext[:-2, 1:-1] + ext[2:, 1:-1] + ext[1:-1, :-2] + ext[1:-1, 2:]
        - h * h * f
    )


def _redblack_sweep(u, f, h, fetch_ghosts, row_offset: int):
    """One red-black sweep of a row strip (two half-updates).

    ``fetch_ghosts(u)`` returns current (up, down) ghost rows;
    ``row_offset`` is the strip's global starting row, which fixes the
    colouring so distributed and serial sweeps colour identically.
    """
    ny, nx = u.shape
    rows = (np.arange(ny) + row_offset)[:, None]
    cols = np.arange(nx)[None, :]
    for colour in (0, 1):
        up, down = fetch_ghosts(u)
        ext = _pad(u, up, down)
        stencil = 0.25 * (
            ext[:-2, 1:-1] + ext[2:, 1:-1] + ext[1:-1, :-2] + ext[1:-1, 2:]
            - h * h * f
        )
        mask = ((rows + cols) % 2) == colour
        u = np.where(mask, stencil, u)
    return u


def residual_norm(u: np.ndarray, f: np.ndarray, h: float) -> float:
    """||f - A u||_2 with the 5-point operator and zero boundary."""
    ext = _pad(u, u[:1, :] * 0.0, u[:1, :] * 0.0)
    lap = (
        ext[:-2, 1:-1] + ext[2:, 1:-1] + ext[1:-1, :-2] + ext[1:-1, 2:]
        - 4.0 * u
    ) / (h * h)
    return float(np.linalg.norm(lap - f))


@dataclass
class PoissonResult:
    """Solver outcome."""

    u: np.ndarray
    sweeps: int
    residual: float
    sim: Optional[SimResult] = None

    @property
    def virtual_time(self) -> float:
        return self.sim.time if self.sim else 0.0


def serial_solve(
    f: np.ndarray,
    config: PoissonConfig,
    *,
    method: str = "jacobi",
    tol: float = 1e-6,
    max_sweeps: int = 20_000,
    check_every: int = 10,
) -> PoissonResult:
    """Reference relaxation solver on the full grid."""
    if method not in ("jacobi", "redblack"):
        raise ConfigurationError(f"unknown method {method!r}")
    u = np.zeros_like(f)
    fnorm = float(np.linalg.norm(f)) or 1.0
    for sweep in range(1, max_sweeps + 1):
        if method == "jacobi":
            u = _jacobi_sweep(u, f, config.h, np.zeros((1, config.nx)),
                              np.zeros((1, config.nx)))
        else:
            u = _redblack_sweep(
                u, f, config.h,
                lambda cur: (np.zeros((1, config.nx)), np.zeros((1, config.nx))),
                row_offset=0,
            )
        if sweep % check_every == 0:
            res = residual_norm(u, f, config.h) / fnorm
            if res < tol:
                return PoissonResult(u=u, sweeps=sweep, residual=res)
    raise ConvergenceError(
        f"{method} did not reach tol={tol} in {max_sweeps} sweeps"
    )


def poisson_program(
    comm,
    f_full: np.ndarray,
    config: PoissonConfig,
    method: str,
    tol: float,
    max_sweeps: int,
    check_every: int,
) -> Generator:
    """Rank program: strip-decomposed relaxation.

    Returns ``(row_range, local_u, sweeps, residual)``.
    """
    p = comm.size
    lo, hi = block_range(config.ny, p, comm.rank)
    f = np.array(f_full[lo:hi, :], copy=True)
    u = np.zeros_like(f)
    up_rank = (comm.rank - 1) % p
    down_rank = (comm.rank + 1) % p
    zero_row = np.zeros((1, config.nx))

    fnorm2 = yield from comm.allreduce(float((f_full[lo:hi, :] ** 2).sum()))
    fnorm = np.sqrt(fnorm2) or 1.0

    halo_counter = [0]

    def exchange(cur):
        """Trade boundary rows; Dirichlet zero at the domain edges."""
        halo_counter[0] += 1
        tag = halo_counter[0]
        with comm.phase("halo"):
            if comm.rank > 0:
                yield from comm.send(cur[:1, :], up_rank, tag=2 * tag)
            if comm.rank < p - 1:
                yield from comm.send(cur[-1:, :], down_rank, tag=2 * tag + 1)
            if comm.rank > 0:
                msg = yield from comm.recv(source=up_rank, tag=2 * tag + 1)
                up = msg.payload
            else:
                up = zero_row
            if comm.rank < p - 1:
                msg = yield from comm.recv(source=down_rank, tag=2 * tag)
                down = msg.payload
            else:
                down = zero_row
        return up, down

    for sweep in range(1, max_sweeps + 1):
        if method == "jacobi":
            up, down = yield from exchange(u)
            u = _jacobi_sweep(u, f, config.h, up, down)
            with comm.phase("sweep"):
                yield from comm.compute(flops=FLOPS_PER_CELL * u.size)
        else:
            # Red-black: a halo exchange before each colour.
            rows = (np.arange(hi - lo) + lo)[:, None]
            cols = np.arange(config.nx)[None, :]
            for colour in (0, 1):
                up, down = yield from exchange(u)
                ext = _pad(u, up, down)
                stencil = 0.25 * (
                    ext[:-2, 1:-1] + ext[2:, 1:-1]
                    + ext[1:-1, :-2] + ext[1:-1, 2:]
                    - config.h * config.h * f
                )
                mask = ((rows + cols) % 2) == colour
                u = np.where(mask, stencil, u)
                with comm.phase("sweep"):
                    yield from comm.compute(flops=FLOPS_PER_CELL * u.size / 2.0)

        if sweep % check_every == 0:
            up, down = yield from exchange(u)
            ext = _pad(u, up, down)
            lap = (
                ext[:-2, 1:-1] + ext[2:, 1:-1] + ext[1:-1, :-2] + ext[1:-1, 2:]
                - 4.0 * u
            ) / (config.h * config.h)
            local = float(((lap - f) ** 2).sum())
            with comm.phase("residual"):
                total = yield from comm.allreduce(local)
            res = np.sqrt(total) / fnorm
            if res < tol:
                return ((lo, hi), u, sweep, res)

    raise ConvergenceError(
        f"distributed {method} did not reach tol={tol} in {max_sweeps} sweeps"
    )


def distributed_solve(
    machine,
    n_ranks: int,
    f: np.ndarray,
    config: PoissonConfig,
    *,
    method: str = "jacobi",
    tol: float = 1e-6,
    max_sweeps: int = 20_000,
    check_every: int = 10,
    seed: int = 0,
    trace: bool = False,
) -> PoissonResult:
    """Solve on a simulated machine; reassemble the global field."""
    if method not in ("jacobi", "redblack"):
        raise ConfigurationError(f"unknown method {method!r}")
    if f.shape != (config.ny, config.nx):
        raise ConfigurationError(
            f"forcing shape {f.shape} does not match ({config.ny}, {config.nx})"
        )
    if n_ranks > config.ny:
        raise ConfigurationError(
            f"{n_ranks} ranks over {config.ny} rows leaves empty strips"
        )
    engine = Engine(machine, n_ranks, seed=seed, trace=trace)
    sim = engine.run(
        poisson_program, np.asarray(f, dtype=float), config, method,
        tol, max_sweeps, check_every,
    )
    u = np.zeros_like(f, dtype=float)
    sweeps, residual = 0, 0.0
    for (lo, hi), local, sw, res in sim.returns:
        u[lo:hi, :] = local
        sweeps, residual = sw, res
    return PoissonResult(u=u, sweeps=sweeps, residual=residual, sim=sim)
