"""Short-range molecular dynamics: the chemistry/materials kernel.

The Grand Challenge lists of 1992 always included materials science and
computational chemistry; their kernel is short-range MD -- here a 2-D
truncated Lennard-Jones fluid integrated with velocity Verlet in a
periodic box.

The distributed version uses *spatial (slab) decomposition*, the
pattern the era's MD codes pioneered, with two communication phases no
other kernel in this library has:

* **ghost exchange** -- particles within the cutoff of a slab edge are
  copied to the neighbour (coordinates wrapped across the global
  boundary) so forces can be computed locally;
* **migration** -- after the position update, particles that drifted
  out of the slab are handed to the owning neighbour.

Slabs must be at least one cutoff wide (validated), which bounds the
rank count; particles may not cross a whole slab in one step
(validated via a displacement check).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Tuple

import numpy as np

from repro.simmpi.engine import Engine, SimResult
from repro.util.errors import ConfigurationError, SimulationError
from repro.util.rng import resolve_rng

#: Flops per examined pair (distance, LJ kernel, accumulate).
FLOPS_PER_PAIR = 30.0


@dataclass(frozen=True)
class MDConfig:
    """Lennard-Jones fluid in a periodic square box."""

    box: float = 10.0        # side length L (sigma units)
    cutoff: float = 2.5      # interaction cutoff r_c
    dt: float = 0.005
    epsilon: float = 1.0
    sigma: float = 1.0

    def __post_init__(self) -> None:
        if self.box <= 0 or self.cutoff <= 0 or self.dt <= 0:
            raise ConfigurationError("box, cutoff, dt must be positive")
        if self.epsilon <= 0 or self.sigma <= 0:
            raise ConfigurationError("epsilon and sigma must be positive")
        if self.cutoff > self.box / 2:
            raise ConfigurationError(
                f"cutoff {self.cutoff} exceeds half the box {self.box / 2} "
                "(minimum-image breaks down)"
            )


@dataclass
class Particles:
    """Particle set: ids (n,), positions/velocities (n, 2)."""

    ids: np.ndarray
    pos: np.ndarray
    vel: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.ids)
        if self.pos.shape != (n, 2) or self.vel.shape != (n, 2):
            raise ConfigurationError(
                f"inconsistent shapes: {n} ids, pos {self.pos.shape}, "
                f"vel {self.vel.shape}"
            )

    @property
    def n(self) -> int:
        return len(self.ids)

    def copy(self) -> "Particles":
        return Particles(self.ids.copy(), self.pos.copy(), self.vel.copy())

    def sorted_by_id(self) -> "Particles":
        order = np.argsort(self.ids)
        return Particles(self.ids[order], self.pos[order], self.vel[order])


def lattice_fluid(
    n_side: int, config: MDConfig, *, seed: int = 0, temperature: float = 0.05
) -> Particles:
    """n_side^2 particles on a jittered lattice with thermal velocities."""
    if n_side < 1:
        raise ConfigurationError(f"n_side must be >= 1, got {n_side}")
    rng = resolve_rng(seed)
    spacing = config.box / n_side
    coords = (np.arange(n_side) + 0.5) * spacing
    xx, yy = np.meshgrid(coords, coords)
    pos = np.column_stack([xx.ravel(), yy.ravel()])
    pos += rng.normal(scale=0.05 * spacing, size=pos.shape)
    pos %= config.box
    vel = rng.normal(scale=np.sqrt(temperature), size=pos.shape)
    vel -= vel.mean(axis=0)  # zero net momentum
    n = n_side * n_side
    return Particles(ids=np.arange(n), pos=pos, vel=vel)


def _lj_forces_from(
    targets: np.ndarray,
    sources: np.ndarray,
    config: MDConfig,
    *,
    minimum_image_x: bool,
) -> np.ndarray:
    """Force on each target from all sources (self-pairs excluded by the
    r > 0 mask).  y is always minimum-imaged; x only when requested
    (the slab code pre-wraps ghosts instead)."""
    delta = sources[None, :, :] - targets[:, None, :]
    if minimum_image_x:
        delta[:, :, 0] -= config.box * np.round(delta[:, :, 0] / config.box)
    delta[:, :, 1] -= config.box * np.round(delta[:, :, 1] / config.box)
    r2 = (delta**2).sum(axis=2)
    mask = (r2 > 0.0) & (r2 < config.cutoff**2)
    r2 = np.where(mask, r2, 1.0)  # avoid divide-by-zero off-mask
    s2 = config.sigma**2 / r2
    s6 = s2**3
    # f(r)/r: positive = repulsive (directed from source toward target).
    f_over_r = 24.0 * config.epsilon * (2.0 * s6**2 - s6) / r2
    f_over_r = np.where(mask, f_over_r, 0.0)
    return -(delta * f_over_r[:, :, None]).sum(axis=1)


def potential_energy(particles: Particles, config: MDConfig) -> float:
    """Total truncated-LJ potential (pairs counted once)."""
    pos = particles.pos
    delta = pos[None, :, :] - pos[:, None, :]
    delta -= config.box * np.round(delta / config.box)
    r2 = (delta**2).sum(axis=2)
    iu = np.triu_indices(len(pos), k=1)
    r2 = r2[iu]
    mask = r2 < config.cutoff**2
    r2 = r2[mask]
    s6 = (config.sigma**2 / r2) ** 3
    return float((4.0 * config.epsilon * (s6**2 - s6)).sum())


def kinetic_energy(particles: Particles) -> float:
    return 0.5 * float((particles.vel**2).sum())


def total_momentum(particles: Particles) -> np.ndarray:
    return particles.vel.sum(axis=0)


def serial_step(particles: Particles, config: MDConfig) -> Particles:
    """One velocity-Verlet step with O(N^2) minimum-image forces."""
    out = particles.copy()
    acc = _lj_forces_from(out.pos, out.pos, config, minimum_image_x=True)
    out.vel += 0.5 * config.dt * acc
    out.pos = (out.pos + config.dt * out.vel) % config.box
    acc = _lj_forces_from(out.pos, out.pos, config, minimum_image_x=True)
    out.vel += 0.5 * config.dt * acc
    return out


def serial_run(particles: Particles, config: MDConfig, steps: int) -> Particles:
    out = particles.copy()
    for _ in range(steps):
        out = serial_step(out, config)
    return out


@dataclass
class MDRun:
    """Distributed run outcome."""

    particles: Particles
    sim: SimResult

    @property
    def virtual_time(self) -> float:
        return self.sim.time


def _pack(ids, pos, vel) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    return (np.ascontiguousarray(ids), np.ascontiguousarray(pos),
            np.ascontiguousarray(vel))


def md_program(comm, particles0: Particles, config: MDConfig, steps: int) -> Generator:
    """Rank program: slab decomposition along x.

    Returns this rank's final :class:`Particles` (ownership shifts as
    particles migrate, so reassembly sorts globally by id).
    """
    p = comm.size
    width = config.box / p
    if width < config.cutoff and p > 1:
        raise ConfigurationError(
            f"slab width {width:.3f} below cutoff {config.cutoff}: "
            f"at most {int(config.box / config.cutoff)} ranks for this box"
        )
    x_lo = comm.rank * width
    x_hi = x_lo + width
    own = (particles0.pos[:, 0] >= x_lo) & (particles0.pos[:, 0] < x_hi)
    ids = particles0.ids[own].copy()
    pos = particles0.pos[own].copy()
    vel = particles0.vel[own].copy()
    left = (comm.rank - 1) % p
    right = (comm.rank + 1) % p

    def exchange_ghosts(pos_now, tag0) -> Generator:
        """Send edge bands out; receive neighbour ghosts (wrapped)."""
        if p == 1:
            return np.empty((0, 2))
        send_left = pos_now[:, 0] < x_lo + config.cutoff
        send_right = pos_now[:, 0] >= x_hi - config.cutoff
        out_left = pos_now[send_left].copy()
        if comm.rank == 0:
            out_left[:, 0] += config.box
        out_right = pos_now[send_right].copy()
        if comm.rank == p - 1:
            out_right[:, 0] -= config.box
        with comm.phase("ghosts"):
            # Pre-post both receives before sending: symmetric blocking
            # sends deadlock above the eager threshold (W004/W009).
            r_right = yield from comm.irecv(source=right, tag=tag0)
            r_left = yield from comm.irecv(source=left, tag=tag0 + 1)
            yield from comm.send(out_left, left, tag=tag0)
            yield from comm.send(out_right, right, tag=tag0 + 1)
            from_right = yield from comm.wait(r_right)
            from_left = yield from comm.wait(r_left)
        return np.vstack([from_left.payload, from_right.payload])

    def forces(pos_now, ghosts) -> np.ndarray:
        if len(pos_now) == 0:
            return np.zeros((0, 2))
        sources = np.vstack([pos_now, ghosts]) if len(ghosts) else pos_now
        return _lj_forces_from(
            pos_now, sources, config,
            minimum_image_x=(p == 1),
        )

    for step in range(steps):
        base = 8 * step
        ghosts = yield from exchange_ghosts(pos, base)
        acc = forces(pos, ghosts)
        with comm.phase("forces"):
            yield from comm.compute(
                flops=FLOPS_PER_PAIR * len(pos) * (len(pos) + len(ghosts))
            )
        vel = vel + 0.5 * config.dt * acc
        new_pos = pos + config.dt * vel
        if len(new_pos) and np.abs(new_pos[:, 0] - pos[:, 0]).max() >= width:
            raise SimulationError(
                "a particle crossed a whole slab in one step; reduce dt"
            )
        pos = new_pos
        pos[:, 1] %= config.box
        pos[:, 0] %= config.box

        # Migrate particles that left the slab.  ``rel`` is the wrapped
        # offset from the slab start: [0, w) stays, [w, 2w) went right,
        # anything higher wrapped around to the left.
        if p > 1:
            rel = (pos[:, 0] - x_lo) % config.box
            going_right = rel >= width
            to_right = going_right & (rel < 2 * width)
            to_left = going_right & ~to_right
            keep = ~going_right
            with comm.phase("migrate"):
                r_right = yield from comm.irecv(source=right, tag=base + 2)
                r_left = yield from comm.irecv(source=left, tag=base + 3)
                yield from comm.send(
                    _pack(ids[to_left], pos[to_left], vel[to_left]), left,
                    tag=base + 2,
                )
                yield from comm.send(
                    _pack(ids[to_right], pos[to_right], vel[to_right]), right,
                    tag=base + 3,
                )
                from_right = yield from comm.wait(r_right)
                from_left = yield from comm.wait(r_left)
            ids = np.concatenate([ids[keep], from_right.payload[0], from_left.payload[0]])
            pos = np.vstack([pos[keep], from_right.payload[1], from_left.payload[1]])
            vel = np.vstack([vel[keep], from_right.payload[2], from_left.payload[2]])

        # Second half-kick with fresh ghosts at the new positions.
        ghosts = yield from exchange_ghosts(pos, base + 4)
        acc = forces(pos, ghosts)
        with comm.phase("forces"):
            yield from comm.compute(
                flops=FLOPS_PER_PAIR * len(pos) * (len(pos) + len(ghosts))
            )
        vel = vel + 0.5 * config.dt * acc

    return Particles(ids=ids, pos=pos, vel=vel)


def distributed_run(
    machine,
    n_ranks: int,
    particles0: Particles,
    config: MDConfig,
    steps: int,
    *,
    seed: int = 0,
    trace: bool = False,
) -> MDRun:
    """Run slab-decomposed MD; reassemble the global particle set
    (sorted by particle id)."""
    max_ranks = max(1, int(config.box / config.cutoff))
    if n_ranks > max_ranks:
        raise ConfigurationError(
            f"{n_ranks} ranks: slabs would be thinner than the cutoff "
            f"(max {max_ranks} for box {config.box}, cutoff {config.cutoff})"
        )
    engine = Engine(machine, n_ranks, seed=seed, trace=trace)
    sim = engine.run(md_program, particles0, config, steps)
    ids = np.concatenate([part.ids for part in sim.returns])
    pos = np.vstack([part.pos for part in sim.returns])
    vel = np.vstack([part.vel for part in sim.returns])
    if len(ids) != particles0.n:
        raise SimulationError(
            f"particle count changed: {particles0.n} -> {len(ids)}"
        )
    merged = Particles(ids=ids, pos=pos, vel=vel).sorted_by_id()
    return MDRun(particles=merged, sim=sim)
