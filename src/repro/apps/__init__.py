"""Grand-challenge application kernels (serial references + distributed
versions running on the simulator)."""

from repro.apps import cfd, md, nbody, ocean, poisson
from repro.apps.cfd import CFDConfig, CFDRun, gaussian_blob
from repro.apps.md import MDConfig, MDRun, Particles, lattice_fluid
from repro.apps.nbody import Bodies, NBodyRun, random_cluster
from repro.apps.ocean import OceanConfig, OceanRun, OceanState, gaussian_bump
from repro.apps.poisson import PoissonConfig, PoissonResult, point_source, smooth_source

__all__ = [
    "cfd",
    "md",
    "MDConfig",
    "MDRun",
    "Particles",
    "lattice_fluid",
    "nbody",
    "ocean",
    "poisson",
    "PoissonConfig",
    "PoissonResult",
    "point_source",
    "smooth_source",
    "CFDConfig",
    "CFDRun",
    "gaussian_blob",
    "Bodies",
    "NBodyRun",
    "random_cluster",
    "OceanConfig",
    "OceanRun",
    "OceanState",
    "gaussian_bump",
]
