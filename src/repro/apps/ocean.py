"""Linearised shallow-water equations: the ocean/atmosphere kernel.

NOAA's ocean and atmospheric computation research entry in the
responsibilities matrix is, at kernel level, a shallow-water solver:
free-surface height ``h`` and velocities ``(u, v)`` coupled through
gravity waves, with Coriolis rotation.  We integrate the linearised
system with the forward-backward scheme (velocities first, then height
from the *new* velocities), which is stable for gravity-wave CFL < 1:

    u' = u + dt * ( f*v - g * Dx(h) )
    v' = v + dt * (-f*u - g * Dy(h) )
    h' = h - dt * H * ( Dx(u') + Dy(v') )

with centred periodic differences.  Mass (the sum of ``h``) is
conserved to round-off, which the property tests pin down.

Decomposition mirrors the CFD kernel (row strips, ghost rows both
sides), but the halo is exchanged *twice* per step: once for ``h``
before the velocity update and once for the new ``v`` before the height
update -- double the latency sensitivity, visible in the benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.linalg.decomp import block_range
from repro.simmpi.engine import Engine, SimResult
from repro.simmpi.stencil import strip_halo
from repro.util.errors import ConfigurationError

#: Per-cell flop estimate for one full (u, v, h) update.
FLOPS_PER_CELL = 30.0


@dataclass(frozen=True)
class OceanConfig:
    """Shallow-water problem description (periodic basin)."""

    nx: int
    ny: int
    dx: float = 1.0e4       # 10 km cells
    dy: float = 1.0e4
    dt: float = 10.0        # seconds
    gravity: float = 9.81
    depth: float = 100.0    # resting depth H, metres
    coriolis: float = 1.0e-4

    def __post_init__(self) -> None:
        if self.nx < 3 or self.ny < 3:
            raise ConfigurationError(
                f"grid must be at least 3x3, got {self.ny}x{self.nx}"
            )
        if min(self.dx, self.dy, self.dt) <= 0:
            raise ConfigurationError("dx, dy, dt must be positive")
        if self.gravity <= 0 or self.depth <= 0:
            raise ConfigurationError("gravity and depth must be positive")
        wave_speed = np.sqrt(self.gravity * self.depth)
        cfl = wave_speed * self.dt * max(1.0 / self.dx, 1.0 / self.dy)
        if cfl > 1.0:
            raise ConfigurationError(
                f"gravity-wave CFL {cfl:.3f} > 1 (c = {wave_speed:.1f} m/s); reduce dt"
            )

    @property
    def cells(self) -> int:
        return self.nx * self.ny

    @property
    def wave_speed(self) -> float:
        return float(np.sqrt(self.gravity * self.depth))


@dataclass
class OceanState:
    """Prognostic fields (each (ny, nx))."""

    h: np.ndarray
    u: np.ndarray
    v: np.ndarray

    def copy(self) -> "OceanState":
        return OceanState(self.h.copy(), self.u.copy(), self.v.copy())


def gaussian_bump(config: OceanConfig, *, amplitude: float = 1.0, width: float = 0.1) -> OceanState:
    """Initial condition: height anomaly at rest (classic gravity-wave
    test; the bump collapses into expanding rings)."""
    x = (np.arange(config.nx) + 0.5) / config.nx
    y = (np.arange(config.ny) + 0.5) / config.ny
    xx, yy = np.meshgrid(x, y)
    h = amplitude * np.exp(-((xx - 0.5) ** 2 + (yy - 0.5) ** 2) / (2 * width**2))
    return OceanState(h=h, u=np.zeros_like(h), v=np.zeros_like(h))


def _dx(field: np.ndarray, dx: float) -> np.ndarray:
    """Centred periodic x derivative (axis 1)."""
    return (np.roll(field, -1, axis=1) - np.roll(field, 1, axis=1)) / (2.0 * dx)


def _dy_interior(ext: np.ndarray, dy: float) -> np.ndarray:
    """Centred y derivative of the interior rows of an extended array
    (one ghost row on each side)."""
    return (ext[2:, :] - ext[:-2, :]) / (2.0 * dy)


def _step(
    state: OceanState,
    config: OceanConfig,
    h_up: np.ndarray,
    h_down: np.ndarray,
    fetch_v_ghosts,
) -> OceanState:
    """Forward-backward update of a row strip.

    ``h_up``/``h_down`` are height ghost rows; ``fetch_v_ghosts`` is a
    callable invoked with the *new* v strip returning its ghost rows
    (serial passes periodic wraps; the rank program exchanges halos).
    """
    g, f, big_h, dt = config.gravity, config.coriolis, config.depth, config.dt
    h, u, v = state.h, state.u, state.v

    h_ext = np.vstack([h_up, h, h_down])
    u_new = u + dt * (f * v - g * _dx(h, config.dx))
    v_new = v + dt * (-f * u - g * _dy_interior(h_ext, config.dy))

    v_up, v_down = fetch_v_ghosts(v_new)
    v_ext = np.vstack([v_up, v_new, v_down])
    div = _dx(u_new, config.dx) + _dy_interior(v_ext, config.dy)
    h_new = h - dt * big_h * div
    return OceanState(h=h_new, u=u_new, v=v_new)


def serial_step(state: OceanState, config: OceanConfig) -> OceanState:
    """One step on the full periodic basin."""
    return _step(
        state,
        config,
        state.h[-1:, :],
        state.h[:1, :],
        lambda v_new: (v_new[-1:, :], v_new[:1, :]),
    )


def serial_run(state: OceanState, config: OceanConfig, steps: int) -> OceanState:
    out = state.copy()
    for _ in range(steps):
        out = serial_step(out, config)
    return out


def total_mass(state: OceanState, config: OceanConfig) -> float:
    """Basin-integrated height anomaly (conserved to round-off)."""
    return float(state.h.sum() * config.dx * config.dy)


def total_energy(state: OceanState, config: OceanConfig) -> float:
    """Linearised energy: H(u^2+v^2)/2 + g h^2 / 2, integrated."""
    kinetic = 0.5 * config.depth * (state.u**2 + state.v**2)
    potential = 0.5 * config.gravity * state.h**2
    return float((kinetic + potential).sum() * config.dx * config.dy)


@dataclass
class OceanRun:
    """Distributed run outcome."""

    state: OceanState
    sim: SimResult

    @property
    def virtual_time(self) -> float:
        return self.sim.time


def ocean_program(comm, state0: OceanState, config: OceanConfig, steps: int) -> Generator:
    """Rank program: strip decomposition, two halo exchanges per step."""
    p = comm.size
    lo, hi = block_range(config.ny, p, comm.rank)
    local = OceanState(
        h=np.array(state0.h[lo:hi, :], copy=True),
        u=np.array(state0.u[lo:hi, :], copy=True),
        v=np.array(state0.v[lo:hi, :], copy=True),
    )
    halo = strip_halo(p) if p > 1 else None

    for step in range(steps):
        if p == 1:
            h_up, h_down = local.h[-1:, :], local.h[:1, :]
        else:
            with comm.phase("halo-h"):
                h_up, h_down = yield from comm.exchange(
                    halo, [local.h[:1, :], local.h[-1:, :]]
                )

        # Same arithmetic as _step, split into two phases so the v halo
        # can be exchanged (a generator cannot yield from a closure).
        g, f, big_h, dt = config.gravity, config.coriolis, config.depth, config.dt
        h_ext = np.vstack([h_up, local.h, h_down])
        u_new = local.u + dt * (f * local.v - g * _dx(local.h, config.dx))
        v_new = local.v + dt * (-f * local.u - g * _dy_interior(h_ext, config.dy))

        if p == 1:
            v_up, v_down = v_new[-1:, :], v_new[:1, :]
        else:
            with comm.phase("halo-v"):
                v_up, v_down = yield from comm.exchange(
                    halo, [v_new[:1, :], v_new[-1:, :]]
                )

        v_ext = np.vstack([v_up, v_new, v_down])
        div = _dx(u_new, config.dx) + _dy_interior(v_ext, config.dy)
        local = OceanState(h=local.h - dt * big_h * div, u=u_new, v=v_new)
        with comm.phase("step"):
            yield from comm.compute(flops=FLOPS_PER_CELL * local.h.size)

    return ((lo, hi), local)


def distributed_run(
    machine,
    n_ranks: int,
    state0: OceanState,
    config: OceanConfig,
    steps: int,
    *,
    seed: int = 0,
    trace: bool = False,
    macro_ops: bool = True,
    columnar: bool = True,
    certificate=None,
) -> OceanRun:
    """Run the decomposed model; reassemble the global state.

    ``certificate`` passes a
    :class:`~repro.analyze.certify.MacroCertificate` for
    :func:`ocean_program` through to the engine, which then skips the
    per-member macro probe on every halo exchange.
    """
    if state0.h.shape != (config.ny, config.nx):
        raise ConfigurationError(
            f"state shape {state0.h.shape} does not match config "
            f"({config.ny}, {config.nx})"
        )
    if n_ranks > config.ny:
        raise ConfigurationError(
            f"{n_ranks} ranks over {config.ny} rows leaves empty strips"
        )
    engine = Engine(
        machine, n_ranks, seed=seed, trace=trace,
        macro_ops=macro_ops, columnar=columnar,
        certificate=certificate,
    )
    sim = engine.run(ocean_program, state0, config, steps)
    h = np.zeros_like(state0.h)
    u = np.zeros_like(state0.u)
    v = np.zeros_like(state0.v)
    for (lo, hi), local in sim.returns:
        h[lo:hi, :] = local.h
        u[lo:hi, :] = local.u
        v[lo:hi, :] = local.v
    return OceanRun(state=OceanState(h, u, v), sim=sim)
