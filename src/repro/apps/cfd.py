"""2-D advection-diffusion on a structured grid: the CAS kernel.

The Computational Aerosciences consortium's workloads were structured-
grid flow solvers; their communication signature is the *halo exchange*:
strip-decompose the grid, trade one ghost row with each neighbour per
time step, update locally.  This module implements that signature with
real numerics -- first-order upwind advection plus central diffusion,
periodic boundaries -- as both a serial reference and a rank program.

The distributed update applies exactly the same per-cell arithmetic as
the serial one, so the two are bit-identical (asserted in tests), while
the simulator accounts compute and halo time.  The surface-to-volume
ratio of the strips is what drives the scaling curves in the
grand-challenge benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Tuple

import numpy as np

from repro.linalg.decomp import block_range
from repro.simmpi.engine import Engine, SimResult
from repro.simmpi.stencil import grid_halo, strip_halo
from repro.util.errors import ConfigurationError

#: Per-cell flop estimate for one update (adds, mults of the stencil).
FLOPS_PER_CELL = 16.0


@dataclass(frozen=True)
class CFDConfig:
    """Problem description for the advection-diffusion solver.

    Velocities must be non-negative (upwind differences are written for
    flow toward +x/+y); the stability checks enforce CFL and the
    diffusive limit.
    """

    nx: int
    ny: int
    dx: float = 1.0
    dy: float = 1.0
    dt: float = 0.1
    vel_x: float = 1.0
    vel_y: float = 0.5
    diffusivity: float = 0.05

    def __post_init__(self) -> None:
        if self.nx < 3 or self.ny < 3:
            raise ConfigurationError(
                f"grid must be at least 3x3, got {self.ny}x{self.nx}"
            )
        if min(self.dx, self.dy, self.dt) <= 0:
            raise ConfigurationError("dx, dy, dt must be positive")
        if self.vel_x < 0 or self.vel_y < 0:
            raise ConfigurationError(
                "upwind scheme requires non-negative velocities"
            )
        if self.diffusivity < 0:
            raise ConfigurationError("diffusivity must be >= 0")
        cfl = self.dt * (self.vel_x / self.dx + self.vel_y / self.dy)
        if cfl > 1.0:
            raise ConfigurationError(f"advective CFL {cfl:.3f} > 1; reduce dt")
        if self.diffusivity > 0:
            dlim = self.dt * 2.0 * self.diffusivity * (self.dx**-2 + self.dy**-2)
            if dlim > 1.0:
                raise ConfigurationError(
                    f"diffusive stability number {dlim:.3f} > 1; reduce dt"
                )

    @property
    def cells(self) -> int:
        return self.nx * self.ny

    def flops_per_step(self) -> float:
        return FLOPS_PER_CELL * self.cells


def gaussian_blob(
    config: CFDConfig,
    *,
    center: Optional[Tuple[float, float]] = None,
    width: float = 0.1,
) -> np.ndarray:
    """Gaussian initial condition on the unit square (ny, nx array)."""
    cx, cy = center if center is not None else (0.25, 0.25)
    x = (np.arange(config.nx) + 0.5) / config.nx
    y = (np.arange(config.ny) + 0.5) / config.ny
    xx, yy = np.meshgrid(x, y)
    return np.exp(-((xx - cx) ** 2 + (yy - cy) ** 2) / (2 * width**2))


def _update(
    u: np.ndarray,
    up: np.ndarray,
    down: np.ndarray,
    config: CFDConfig,
) -> np.ndarray:
    """One explicit step for rows ``u`` given ghost rows above/below.

    ``up`` is the row preceding u[0]; ``down`` the row following u[-1].
    The x direction is periodic within the row (no ghost needed).
    """
    ext = np.vstack([up, u, down])
    c = ext[1:-1, :]
    north = ext[:-2, :]
    south = ext[2:, :]
    west = np.roll(c, 1, axis=1)
    east = np.roll(c, -1, axis=1)

    adv = (
        config.vel_x * (c - west) / config.dx
        + config.vel_y * (c - north) / config.dy
    )
    lap = (
        (east - 2.0 * c + west) / config.dx**2
        + (north - 2.0 * c + south) / config.dy**2
    )
    return c + config.dt * (config.diffusivity * lap - adv)


def serial_step(u: np.ndarray, config: CFDConfig) -> np.ndarray:
    """One step on the full periodic grid (reference implementation)."""
    return _update(u, u[-1:, :], u[:1, :], config)


def serial_run(u0: np.ndarray, config: CFDConfig, steps: int) -> np.ndarray:
    """Advance ``steps`` updates from ``u0``."""
    u = np.array(u0, dtype=float, copy=True)
    for _ in range(steps):
        u = serial_step(u, config)
    return u


@dataclass
class CFDRun:
    """Distributed run outcome."""

    field: np.ndarray
    sim: SimResult

    @property
    def virtual_time(self) -> float:
        return self.sim.time


def cfd_program(comm, u0: np.ndarray, config: CFDConfig, steps: int) -> Generator:
    """Rank program: strip-decomposed solver with periodic halo exchange.

    Returns ``(row_range, local_rows)``.
    """
    p = comm.size
    lo, hi = block_range(config.ny, p, comm.rank)
    local = np.array(u0[lo:hi, :], dtype=float, copy=True)
    halo = strip_halo(p) if p > 1 else None

    for step in range(steps):
        if p == 1:
            up_row, down_row = local[-1:, :], local[:1, :]
        else:
            # Send boundary rows, receive ghosts (periodic wrap).
            with comm.phase("halo"):
                up_row, down_row = yield from comm.exchange(
                    halo, [local[:1, :], local[-1:, :]]
                )
        local = _update(local, up_row, down_row, config)
        with comm.phase("step"):
            yield from comm.compute(flops=FLOPS_PER_CELL * local.size)

    return ((lo, hi), local)


def distributed_run(
    machine,
    n_ranks: int,
    u0: np.ndarray,
    config: CFDConfig,
    steps: int,
    *,
    seed: int = 0,
    trace: bool = False,
    macro_ops: bool = True,
    columnar: bool = True,
) -> CFDRun:
    """Run the strip-decomposed solver; reassemble the global field."""
    u0 = np.asarray(u0, dtype=float)
    if u0.shape != (config.ny, config.nx):
        raise ConfigurationError(
            f"initial field shape {u0.shape} does not match config "
            f"({config.ny}, {config.nx})"
        )
    if n_ranks > config.ny:
        raise ConfigurationError(
            f"{n_ranks} ranks over {config.ny} rows leaves empty strips"
        )
    engine = Engine(
        machine, n_ranks, seed=seed, trace=trace,
        macro_ops=macro_ops, columnar=columnar,
    )
    sim = engine.run(cfd_program, u0, config, steps)
    field = np.zeros_like(u0)
    for (lo, hi), rows in sim.returns:
        field[lo:hi, :] = rows
    return CFDRun(field=field, sim=sim)


def total_mass(u: np.ndarray, config: CFDConfig) -> float:
    """Domain integral of the scalar (conserved by the periodic scheme)."""
    return float(u.sum() * config.dx * config.dy)


# ---------------------------------------------------------------------------
# 2-D block decomposition (the strips-vs-blocks ablation)
# ---------------------------------------------------------------------------

def _update_block(
    u: np.ndarray,
    up: np.ndarray,
    down: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
    config: CFDConfig,
) -> np.ndarray:
    """One explicit step on a 2-D block given all four ghost edges.

    Identical per-cell arithmetic to :func:`_update`; with wraparound
    ghosts it reproduces the serial step bit for bit.
    """
    c = u
    north = np.vstack([up, c[:-1, :]])
    south = np.vstack([c[1:, :], down])
    west = np.hstack([left, c[:, :-1]])
    east = np.hstack([c[:, 1:], right])

    adv = (
        config.vel_x * (c - west) / config.dx
        + config.vel_y * (c - north) / config.dy
    )
    lap = (
        (east - 2.0 * c + west) / config.dx**2
        + (north - 2.0 * c + south) / config.dy**2
    )
    return c + config.dt * (config.diffusivity * lap - adv)


def cfd_program_2d(comm, grid, u0: np.ndarray, config: CFDConfig, steps: int) -> Generator:
    """Rank program: 2-D block decomposition on a process grid.

    Four ghost edges per step instead of the strip version's two ghost
    rows: twice the messages (latency) for less halo volume (bandwidth)
    -- the surface-to-volume trade the A-3 ablation measures.
    Returns ``(row_range, col_range, block)``.
    """
    pr, pc = grid.prows, grid.pcols
    my_r, my_c = grid.coords(comm.rank)
    r0, r1 = block_range(config.ny, pr, my_r)
    c0, c1 = block_range(config.nx, pc, my_c)
    local = np.array(u0[r0:r1, c0:c1], dtype=float, copy=True)

    # Ranks are laid out row-major on the process grid (rank_at), which
    # is exactly the StencilSpec convention, so the declared phases pair
    # the same neighbours as the explicit rank_at arithmetic did.
    halo_rows = grid_halo(pr, pc, axis=0) if pr > 1 else None
    halo_cols = grid_halo(pr, pc, axis=1) if pc > 1 else None

    for step in range(steps):
        if pr == 1:
            up_row, down_row = local[-1:, :], local[:1, :]
        else:
            with comm.phase("halo-rows"):
                up_row, down_row = yield from comm.exchange(
                    halo_rows, [local[:1, :], local[-1:, :]]
                )
        if pc == 1:
            left_col, right_col = local[:, -1:], local[:, :1]
        else:
            with comm.phase("halo-cols"):
                left_col, right_col = yield from comm.exchange(
                    halo_cols,
                    [
                        np.ascontiguousarray(local[:, :1]),
                        np.ascontiguousarray(local[:, -1:]),
                    ],
                )

        local = _update_block(local, up_row, down_row, left_col, right_col, config)
        with comm.phase("step"):
            yield from comm.compute(flops=FLOPS_PER_CELL * local.size)

    return ((r0, r1), (c0, c1), local)


def distributed_run_2d(
    machine,
    grid,
    u0: np.ndarray,
    config: CFDConfig,
    steps: int,
    *,
    seed: int = 0,
    trace: bool = False,
    macro_ops: bool = True,
    columnar: bool = True,
) -> CFDRun:
    """Run the 2-D block-decomposed solver; reassemble the field."""
    u0 = np.asarray(u0, dtype=float)
    if u0.shape != (config.ny, config.nx):
        raise ConfigurationError(
            f"initial field shape {u0.shape} does not match config "
            f"({config.ny}, {config.nx})"
        )
    if grid.size > machine.n_nodes:
        raise ConfigurationError(
            f"grid of {grid.size} ranks exceeds machine of {machine.n_nodes} nodes"
        )
    if grid.prows > config.ny or grid.pcols > config.nx:
        raise ConfigurationError(
            f"{grid.prows}x{grid.pcols} grid over a "
            f"{config.ny}x{config.nx} field leaves empty blocks"
        )
    engine = Engine(
        machine, grid.size, seed=seed, trace=trace,
        macro_ops=macro_ops, columnar=columnar,
    )
    sim = engine.run(cfd_program_2d, grid, u0, config, steps)
    field = np.zeros_like(u0)
    for (r0, r1), (c0, c1), block in sim.returns:
        field[r0:r1, c0:c1] = block
    return CFDRun(field=field, sim=sim)
