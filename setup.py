"""Setup shim.

The offline environment lacks the ``wheel`` package, so ``pip install
-e .`` cannot build a PEP 660 editable wheel.  ``python setup.py
develop`` installs an egg-link editable without needing wheel; metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
