"""Pytest bootstrap: make ``src/`` importable even without installation.

The benchmarks and tests import ``repro`` directly; inserting ``src``
keeps the suite runnable in environments where the editable install is
unavailable (e.g. offline images missing the ``wheel`` package).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
