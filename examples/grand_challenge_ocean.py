"""Grand Challenge scenario: an ocean-circulation study on the Delta.

NOAA's entry in the responsibilities matrix is "ocean and atmospheric
computation research".  This example runs the shallow-water kernel the
way an application team would: validate the physics (conservation,
wave propagation), then scale it, then check the distributed run is
*exactly* the serial one -- the reproducibility bar the simulator's
real-numerics design meets.

Run:  python examples/grand_challenge_ocean.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.apps.ocean import (
    OceanConfig,
    distributed_run,
    gaussian_bump,
    serial_run,
    total_energy,
    total_mass,
)
from repro.core import OceanWorkload, amdahl_summary, scaling_study, scaling_table
from repro.machine import touchstone_delta
from repro.util.units import format_time


def main() -> None:
    config = OceanConfig(nx=64, ny=64, dt=10.0)
    state0 = gaussian_bump(config)

    print("=" * 70)
    print("1. Physics validation (serial reference)")
    print("=" * 70)
    print(f"   basin: {config.ny}x{config.nx} cells of "
          f"{config.dx / 1e3:.0f} km, gravity-wave speed "
          f"{config.wave_speed:.1f} m/s, dt={config.dt:.0f} s")
    state = state0
    print(f"   {'step':>6} {'mass drift':>12} {'energy/E0':>10} {'peak h':>8}")
    e0 = total_energy(state0, config)
    m0 = total_mass(state0, config)
    for checkpoint in (0, 50, 100, 200):
        steps = checkpoint - (0 if state is state0 else checkpoint_prev)
        if checkpoint > 0:
            state = serial_run(state, config, steps)
        checkpoint_prev = checkpoint
        drift = total_mass(state, config) - m0
        print(f"   {checkpoint:>6} {drift:>12.2e} "
              f"{total_energy(state, config) / e0:>10.4f} "
              f"{state.h.max():>8.4f}")
    print("   mass conserved to round-off; the bump radiates as rings.")

    print()
    print("=" * 70)
    print("2. Distributed == serial, bit for bit")
    print("=" * 70)
    serial = serial_run(state0, config, 50)
    dist = distributed_run(touchstone_delta().subset(8), 8, state0, config, 50)
    print(f"   8-rank strip decomposition, 50 steps, two halo exchanges per step")
    print(f"   virtual time {format_time(dist.virtual_time)}, "
          f"{dist.sim.total_messages} messages")
    print(f"   h identical: {np.array_equal(dist.state.h, serial.h)}, "
          f"u identical: {np.array_equal(dist.state.u, serial.u)}, "
          f"v identical: {np.array_equal(dist.state.v, serial.v)}")

    print()
    print("=" * 70)
    print("3. Scaling the basin on the Delta model")
    print("=" * 70)
    study = scaling_study(
        OceanWorkload(nx=128, ny=128, steps=4), touchstone_delta(),
        [1, 2, 4, 8, 16, 32],
    )
    print(scaling_table(study))
    print()
    print("   " + amdahl_summary(study))
    print("   The double halo per step costs the ocean code more latency")
    print("   than the CFD kernel -- compare examples/aerosciences_testbed.py.")


if __name__ == "__main__":
    main()
