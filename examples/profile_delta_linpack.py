"""Where does the Delta's LINPACK time go?  A critical-path profile.

The paper's headline number is the Touchstone Delta's 13.9 GFLOPS
LINPACK run at n = 25,000 on a 512-node grid.  The HPL cost model gives
the macroscopic answer for that full-size run; to see the *mechanism* --
which broadcasts, wires and waits the makespan actually threads
through -- we trace a scaled-down 2-D LU factorisation on a sub-grid of
the same machine and walk its critical path.

Run:  python examples/profile_delta_linpack.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.linalg import delta_linpack, make_test_matrix
from repro.linalg.decomp import ProcessGrid2D
from repro.linalg.lu2d import lu2d
from repro.machine import touchstone_delta
from repro.obs import critical_path, span_timeline
from repro.util.units import format_time

#: HPL-class target from the paper (exhibit T4-4a).
HPL_ORDER = 25_000

#: Traced run: small enough to factor with real numerics in seconds.
TRACE_ORDER = 96
TRACE_GRID = (4, 4)


def main() -> None:
    machine = touchstone_delta()

    # -- the macroscopic model at full scale --------------------------------
    point = delta_linpack(HPL_ORDER)
    print(f"Touchstone Delta, n = {HPL_ORDER:,} (HPL cost model):")
    print(f"  peak    {point['peak_gflops']:6.1f} GFLOPS")
    print(f"  LINPACK {point['linpack_gflops']:6.2f} GFLOPS "
          f"({100 * point['fraction_of_peak']:.0f}% of peak)")
    print(f"  runtime {format_time(point['time_s'])}")
    print()

    # -- the mechanism, via a traced sub-grid factorisation -----------------
    grid = ProcessGrid2D(*TRACE_GRID)
    a = make_test_matrix(TRACE_ORDER, seed=0)
    result = lu2d(machine, grid, a, nb=8, trace=True)
    path = critical_path(result.sim)

    print(f"traced 2-D LU, n = {TRACE_ORDER} on a "
          f"{TRACE_GRID[0]}x{TRACE_GRID[1]} Delta sub-grid:")
    print(path.describe(top=5))
    print()
    print(span_timeline(result.sim, width=68, max_ranks=16))
    print()
    print("(category percentages transfer qualitatively to the full-size "
          "run: the")
    print(" broadcast chain along rows and columns is what the 2-D layout "
          "bounds.)")


if __name__ == "__main__":
    main()
